#!/usr/bin/env python
"""Human-resource brokering — skill matching via set containment.

The paper's third motivating scenario: "a human resource broker that
matches the skills of job seekers with the skills required by the
employers ... a set containment join on the skills attributes can be used
to match the qualifying employees and their potential employers."

Job requirements are the subset side (R): a candidate qualifies when the
job's required skills are a subset of the candidate's skills.  Skills are
strings, mapped onto the integer element domain by hashing — exactly the
paper's footnote: "non-integer domains can be mapped onto integers using
hashing".

Run:  python examples/job_matching.py
"""

import random

from repro import Relation, run_disk_join
from repro.core import DCJPartitioner, SetTuple, elements_from_values

SKILL_POOL = [
    "python", "java", "c++", "rust", "sql", "nosql", "spark", "kafka",
    "linux", "kubernetes", "terraform", "aws", "gcp", "react", "django",
    "pytorch", "statistics", "etl", "airflow", "grpc", "graphql", "go",
    "scala", "snowflake", "dbt", "ml-ops", "security", "networking",
]

JOBS = {
    0: ("backend engineer", {"python", "sql", "linux"}),
    1: ("data engineer", {"python", "sql", "spark", "airflow"}),
    2: ("platform engineer", {"kubernetes", "terraform", "aws", "linux"}),
    3: ("ml engineer", {"python", "pytorch", "statistics"}),
    4: ("fullstack developer", {"react", "graphql", "python"}),
    5: ("db specialist", {"sql", "snowflake", "dbt"}),
}

NUM_CANDIDATES = 500
SEED = 11


def main() -> None:
    rng = random.Random(SEED)

    jobs = Relation(name="Jobs")
    for job_id, (__, required) in JOBS.items():
        jobs.add(SetTuple(job_id, elements_from_values(required)))

    candidates = Relation(name="Candidates")
    skill_sets = {}
    for candidate_id in range(NUM_CANDIDATES):
        count = rng.randint(3, 12)
        skills = set(rng.sample(SKILL_POOL, count))
        skill_sets[candidate_id] = skills
        candidates.add(SetTuple(candidate_id, elements_from_values(skills)))

    partitioner = DCJPartitioner.for_cardinalities(
        16,
        theta_r=jobs.average_cardinality(),
        theta_s=candidates.average_cardinality(),
    )
    matches, metrics = run_disk_join(jobs, candidates, partitioner)

    print(f"{len(jobs)} open positions, {len(candidates)} candidates")
    print(f"{len(matches)} qualifying (job, candidate) pairs found in "
          f"{metrics.total_seconds:.3f}s "
          f"({metrics.signature_comparisons} signature comparisons, "
          f"comparison factor {metrics.comparison_factor:.3f})\n")

    for job_id, (title, required) in JOBS.items():
        qualified = sorted(c for j, c in matches if j == job_id)
        print(f"{title:22s} requires {sorted(required)}")
        print(f"{'':22s} {len(qualified)} qualified candidates, "
              f"e.g. {qualified[:6]}")
        # Spot-check the first match against the raw skill sets.
        if qualified:
            assert required <= skill_sets[qualified[0]]
    print("\nall matches verified against the raw skill sets ✓")


if __name__ == "__main__":
    main()
