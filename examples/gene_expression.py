#!/usr/bin/env python
"""Large-cardinality sets: the biochemical scenario that motivates DCJ.

The paper argues PSJ breaks down when sets are large: "biochemical
databases contain sets with many thousands [of] elements each ... the
fruit fly has around 14000 genes, 70-80% of which are active at any time.
A snapshot of active genes can thus be represented as a set of around
10000 elements."

This example builds gene-expression snapshots (scaled down so pure Python
stays quick), plus a relation of pathway gene-signatures (smaller sets),
and asks: which pathways are fully active in which snapshots?  That is a
set containment join with large supersets — DCJ's home regime.  The
script compares DCJ against PSJ on comparisons and replication, and shows
the optimizer picking DCJ.

Run:  python examples/gene_expression.py
"""

import random

from repro import PAPER_TIME_MODEL, Relation, choose_plan, run_disk_join
from repro.analysis.factors import comp_dcj, comp_psj, repl_dcj, repl_psj
from repro.analysis.simulate import make_partitioner
from repro.core.sets import SetTuple

NUM_GENES = 4_000          # scaled-down genome
PATHWAY_SIZE = (20, 60)    # genes per pathway signature
SNAPSHOT_ACTIVE = 0.75     # fraction of genes active per snapshot
NUM_PATHWAYS = 150
NUM_SNAPSHOTS = 60
SEED = 5


def main() -> None:
    rng = random.Random(SEED)

    pathways = Relation(name="Pathways")
    for pathway_id in range(NUM_PATHWAYS):
        size = rng.randint(*PATHWAY_SIZE)
        pathways.add(SetTuple(pathway_id, frozenset(rng.sample(range(NUM_GENES), size))))

    snapshots = Relation(name="Snapshots")
    for snapshot_id in range(NUM_SNAPSHOTS):
        active_count = int(NUM_GENES * rng.uniform(SNAPSHOT_ACTIVE - 0.05,
                                                   SNAPSHOT_ACTIVE + 0.05))
        snapshots.add(
            SetTuple(snapshot_id, frozenset(rng.sample(range(NUM_GENES), active_count)))
        )

    theta_r = pathways.average_cardinality()
    theta_s = snapshots.average_cardinality()
    print(f"{NUM_PATHWAYS} pathway signatures (θ_R ≈ {theta_r:.0f} genes), "
          f"{NUM_SNAPSHOTS} snapshots (θ_S ≈ {theta_s:.0f} active genes)")

    # What the analytical model says about this regime (k = 64):
    print("\nanalytical factors at k = 64:")
    print(f"  comp_DCJ = {comp_dcj(64, theta_r, theta_s):.4f}   "
          f"comp_PSJ = {comp_psj(64, theta_s):.4f}")
    print(f"  repl_DCJ = {repl_dcj(64, theta_r, theta_s):.1f}     "
          f"repl_PSJ = {repl_psj(64, theta_s):.1f}   <- PSJ replicates "
          f"every snapshot to ~every partition")

    plan = choose_plan(pathways, snapshots, PAPER_TIME_MODEL)
    print(f"\noptimizer: {plan.algorithm} with k = {plan.k}")

    results = {}
    for algorithm in ("DCJ", "PSJ"):
        partitioner = make_partitioner(algorithm, 64, theta_r, theta_s, seed=SEED)
        pairs, metrics = run_disk_join(pathways, snapshots, partitioner)
        results[algorithm] = pairs
        print(f"\n{algorithm}: {len(pairs)} fully-active (pathway, snapshot) pairs")
        print(f"  comparisons: {metrics.signature_comparisons:9d} "
              f"(factor {metrics.comparison_factor:.3f})")
        print(f"  replicated : {metrics.replicated_signatures:9d} "
              f"(factor {metrics.replication_factor:.1f})")
        print(f"  page I/O   : {metrics.total_page_reads} reads / "
              f"{metrics.total_page_writes} writes")
        print(f"  time       : {metrics.total_seconds:.2f}s")
    assert results["DCJ"] == results["PSJ"]
    print("\nboth algorithms agree on the result ✓")


if __name__ == "__main__":
    main()
