#!/usr/bin/env python
"""Vendors and construction projects — containment and intersection joins.

The paper's second motivating scenario: "if our first relation contained
sets of parts used in construction projects, and the second one contained
sets of parts offered by each equipment vendor, we could determine which
construction projects can be supplied by a single vendor using a set
containment join."

This example answers that question with the containment join, then uses
the intersection-join extension (the paper's Section 7 future work) for
the complementary sourcing question: which vendors can supply *at least
part* of a project (useful for multi-vendor procurement).

Run:  python examples/vendor_parts.py
"""

import random

from repro import Relation, run_disk_join
from repro.core import SetTuple, dcj_with_any_k, recommend_signature_bits
from repro.core.intersection import intersection_join

NUM_PARTS = 2_000
NUM_VENDORS = 120
NUM_PROJECTS = 200
SEED = 17


def main() -> None:
    rng = random.Random(SEED)

    # Vendors stock 50-400 parts each, specialized around a home range.
    vendors = Relation(name="Vendors")
    for vendor_id in range(NUM_VENDORS):
        base = rng.randrange(NUM_PARTS)
        count = rng.randint(50, 400)
        catalog = {
            (base + int(rng.gauss(0, NUM_PARTS // 6))) % NUM_PARTS
            for __ in range(count)
        }
        vendors.add(SetTuple(vendor_id, frozenset(catalog)))

    # Projects need 5-40 parts; some are built from a single vendor's
    # catalog so the containment join has non-trivial answers.
    projects = Relation(name="Projects")
    for project_id in range(NUM_PROJECTS):
        need = rng.randint(5, 40)
        if rng.random() < 0.4:
            source = sorted(vendors[rng.randrange(NUM_VENDORS)].elements)
            parts = frozenset(rng.sample(source, min(need, len(source))))
        else:
            parts = frozenset(rng.sample(range(NUM_PARTS), need))
        projects.add(SetTuple(project_id, parts))

    theta_r = projects.average_cardinality()
    theta_s = vendors.average_cardinality()
    print(f"{NUM_PROJECTS} projects (need ≈ {theta_r:.0f} parts each), "
          f"{NUM_VENDORS} vendors (stock ≈ {theta_s:.0f} parts each)\n")

    # Single-vendor sourcing: project parts ⊆ vendor catalog.  k = 48
    # exercises the modulo-folding extension (non-power-of-two k), and the
    # signature width comes from the advisor (with head-room, since the
    # clustered catalogs violate the uniform-elements estimate).
    bits = 2 * recommend_signature_bits(
        theta_r, theta_s, pairs_compared=len(projects) * len(vendors)
    )
    print(f"signature width: {bits} bits (advisor x2 head-room)\n")
    partitioner = dcj_with_any_k(48, theta_r, theta_s)
    single, metrics = run_disk_join(
        projects, vendors, partitioner, signature_bits=bits
    )
    suppliable = {project for project, __ in single}
    print(f"single-vendor sourcing (containment join, {partitioner.describe()}):")
    print(f"  {len(single)} (project, vendor) pairs; "
          f"{len(suppliable)}/{NUM_PROJECTS} projects fully suppliable")
    print(f"  {metrics.signature_comparisons} signature comparisons, "
          f"{metrics.false_positives} false positives, "
          f"{metrics.total_seconds:.2f}s\n")

    # Partial sourcing: vendors sharing >= 5 needed parts with a project.
    partial, overlap_metrics = intersection_join(
        projects, vendors, threshold=5, num_partitions=64
    )
    print("partial sourcing (intersection join, ≥5 shared parts):")
    print(f"  {len(partial)} (project, vendor) pairs; "
          f"{overlap_metrics.candidates} candidates after the "
          f"shared-bit filter, {overlap_metrics.total_seconds:.2f}s")

    # Single-vendor pairs must also appear as partial-sourcing pairs
    # whenever the project needs at least the threshold.
    for project, vendor in single:
        if projects[project].cardinality >= 5:
            assert (project, vendor) in partial
    print("\ncontainment ⇒ overlap cross-check passed ✓")


if __name__ == "__main__":
    main()
