#!/usr/bin/env python
"""Keyword search over documents-as-word-sets.

The paper's introduction: "Additional types of applications for
containment joins arise when text or XML documents are viewed as sets of
words or XML elements."  A batch of keyword queries against a corpus is a
set containment join: query Q matches document D iff every query word
appears in D, i.e. Q ⊆ D — queries on the subset side, documents on the
superset side.  Words map onto the integer element domain by hashing
(the paper's footnote 1).

The corpus here is synthesized with a Zipf word distribution (natural
language's hallmark), which also exercises the generator's skewed
element distributions.

Run:  python examples/document_search.py
"""

import random

from repro import Relation, run_disk_join
from repro.core import SetTuple, choose_plan, elements_from_values
from repro.analysis.timemodel import PAPER_TIME_MODEL

VOCABULARY_SIZE = 5_000
NUM_DOCUMENTS = 800
WORDS_PER_DOCUMENT = (40, 200)
NUM_QUERIES = 300
SEED = 41


def zipf_word(rng: random.Random) -> str:
    """Draw a word id with a Zipf-ish rank distribution."""
    # Pareto ranks truncated to the vocabulary (shape tuned so documents
    # keep a realistic number of distinct words).
    rank = int(rng.paretovariate(0.45))
    return f"w{min(rank, VOCABULARY_SIZE - 1)}"


def main() -> None:
    rng = random.Random(SEED)

    documents = Relation(name="Documents")
    raw_documents: dict[int, set[str]] = {}
    for document_id in range(NUM_DOCUMENTS):
        count = rng.randint(*WORDS_PER_DOCUMENT)
        words = {zipf_word(rng) for __ in range(count)}
        raw_documents[document_id] = words
        documents.add(SetTuple(document_id, elements_from_values(words)))

    queries = Relation(name="Queries")
    raw_queries: dict[int, set[str]] = {}
    for query_id in range(NUM_QUERIES):
        if rng.random() < 0.5:
            # Realistic query: words sampled from an actual document.
            source = sorted(raw_documents[rng.randrange(NUM_DOCUMENTS)])
            words = set(rng.sample(source, min(rng.randint(2, 5), len(source))))
        else:
            words = {zipf_word(rng) for __ in range(rng.randint(2, 5))}
        raw_queries[query_id] = words
        queries.add(SetTuple(query_id, elements_from_values(words)))

    print(f"{NUM_DOCUMENTS} documents "
          f"(≈{documents.average_cardinality():.0f} distinct words each), "
          f"{NUM_QUERIES} keyword queries "
          f"(≈{queries.average_cardinality():.1f} words each)")

    plan = choose_plan(queries, documents, PAPER_TIME_MODEL)
    print(f"optimizer: {plan.algorithm} with k = {plan.k} "
          f"(λ = {plan.theta_s / plan.theta_r:.0f} — strongly DCJ territory)")

    matches, metrics = run_disk_join(
        queries, documents, plan.build_partitioner(seed=SEED)
    )
    print(f"\n{len(matches)} (query, document) matches "
          f"[{metrics.signature_comparisons} signature comparisons, "
          f"comparison factor {metrics.comparison_factor:.3f}, "
          f"{metrics.false_positives} false positives, "
          f"{metrics.total_seconds:.2f}s]")

    # Show one query's results, verified against the raw words.
    answered = sorted({query for query, __ in matches})
    if answered:
        query_id = answered[0]
        hits = sorted(doc for q, doc in matches if q == query_id)
        print(f"\nquery {query_id} {sorted(raw_queries[query_id])} "
              f"matches {len(hits)} documents, e.g. {hits[:8]}")
        for document_id in hits:
            assert raw_queries[query_id] <= raw_documents[document_id]
        print("all its matches verified against the raw word sets ✓")


if __name__ == "__main__":
    main()
