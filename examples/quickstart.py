#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Builds the two relations of Table 1, runs the set containment join with
each algorithm (DCJ, PSJ, LSJ on the disk testbed; SHJ in memory), and
prints the result together with the metrics the paper's analysis is
about: signature comparisons, replicated signatures, false positives.

Run:  python examples/quickstart.py
"""

from repro import (
    DCJPartitioner,
    LSJPartitioner,
    PSJPartitioner,
    Relation,
    paper_example_family,
    run_disk_join,
    shj_join,
)

SET_NAMES = {
    "R": ["a", "b", "c", "d"],
    "S": ["A", "B", "C", "D"],
}


def main() -> None:
    # Table 1: two relations with one set-valued attribute each.
    r = Relation.from_sets([{1, 5}, {10, 13}, {1, 3}, {8, 19}], name="R")
    s = Relation.from_sets(
        [{1, 5, 7}, {8, 10, 13}, {1, 3, 13}, {2, 3, 4}], name="S"
    )

    print("Relation R:", {SET_NAMES['R'][t.tid]: sorted(t.elements) for t in r})
    print("Relation S:", {SET_NAMES['S'][t.tid]: sorted(t.elements) for t in s})
    print()

    partitioners = [
        DCJPartitioner(paper_example_family()),   # k = 8, Table 3's hashes
        PSJPartitioner(8, seed=1),                # k = 8, random elements
        LSJPartitioner(paper_example_family()),   # k = 8, lattice layout
    ]
    for partitioner in partitioners:
        result, metrics = run_disk_join(r, s, partitioner, signature_bits=4)
        named = sorted(
            (SET_NAMES["R"][r_tid], SET_NAMES["S"][s_tid])
            for r_tid, s_tid in result
        )
        print(f"{partitioner.describe()}")
        print(f"  result               : {named}")
        print(f"  signature comparisons: {metrics.signature_comparisons}"
              f"  (factor {metrics.comparison_factor:.3f})")
        print(f"  replicated signatures: {metrics.replicated_signatures}"
              f"  (factor {metrics.replication_factor:.3f})")
        print(f"  false positives      : {metrics.false_positives}")
        print()

    # The main-memory baseline the disk algorithms replace.
    result, metrics = shj_join(r, s, signature_bits=4)
    named = sorted(
        (SET_NAMES["R"][r_tid], SET_NAMES["S"][s_tid]) for r_tid, s_tid in result
    )
    print(f"SHJ (main memory): {named}, "
          f"{metrics.set_comparisons} set comparisons")


if __name__ == "__main__":
    main()
