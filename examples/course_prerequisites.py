#!/usr/bin/env python
"""Course eligibility — the paper's introductory scenario.

Table ``Attended(studentID, {courseID})`` holds the courses each student
has taken; ``Prereq(courseID, {reqCourseID})`` holds each course's
prerequisites.  The eligible (student, course) pairs are exactly the
set containment join

    SELECT Attended.studentID, Prereq.courseID
    WHERE  Prereq.{reqCourseID} ⊆ Attended.{courseID}

with Prereq on the subset side (R) and Attended on the superset side (S).

The script generates a synthetic university, plans the join with the
analytical optimizer, runs it on the disk testbed, and prints a few
recommendations.

Run:  python examples/course_prerequisites.py
"""

import random

from repro import PAPER_TIME_MODEL, Relation, choose_plan, run_disk_join

NUM_COURSES = 300
NUM_STUDENTS = 400
SEED = 2026


def build_catalog(rng: random.Random) -> Relation:
    """Prereq: course -> set of required course ids (subset side)."""
    prereq = {}
    for course in range(NUM_COURSES):
        # Courses build on earlier courses; intro courses have none.
        depth = course // 30
        required = rng.sample(range(max(0, course - 60), course),
                              min(depth, max(0, course))) if course else []
        prereq[course] = set(required)
    return Relation.from_mapping(prereq, name="Prereq")


def build_transcripts(rng: random.Random, catalog: Relation) -> Relation:
    """Attended: student -> set of completed course ids (superset side)."""
    transcripts = {}
    for student in range(NUM_STUDENTS):
        taken: set[int] = set()
        # Simulate a few semesters of taking courses whose prerequisites
        # are already satisfied.
        for __ in range(rng.randint(4, 24)):
            candidates = [
                course.tid for course in catalog
                if course.tid not in taken and course.elements <= taken
            ]
            if not candidates:
                break
            taken.add(rng.choice(candidates[: rng.randint(1, 20)]))
        transcripts[student] = taken
    return Relation.from_mapping(transcripts, name="Attended")


def main() -> None:
    rng = random.Random(SEED)
    prereq = build_catalog(rng)
    attended = build_transcripts(rng, prereq)
    print(f"{len(prereq)} courses, {len(attended)} students")
    print(f"average prerequisites per course: {prereq.average_cardinality():.1f}")
    print(f"average courses per transcript  : {attended.average_cardinality():.1f}")

    # Step 1-5 of the paper's selection procedure.
    plan = choose_plan(prereq, attended, PAPER_TIME_MODEL)
    print(f"\noptimizer chose {plan.algorithm} with k = {plan.k} "
          f"(predicted {plan.predicted_seconds:.2f}s on the paper's hardware)")

    eligible, metrics = run_disk_join(
        prereq, attended, plan.build_partitioner(seed=SEED)
    )
    print(f"\n{len(eligible)} eligible (course, student) pairs "
          f"[{metrics.signature_comparisons} signature comparisons, "
          f"{metrics.false_positives} false positives, "
          f"{metrics.total_seconds:.2f}s]")

    # Recommend courses a student can take but has not taken yet.
    student = 7
    taken = attended[student].elements
    recommended = sorted(
        course for course, who in eligible if who == student and course not in taken
    )
    print(f"\nstudent {student} has taken {len(taken)} courses; "
          f"eligible for {len(recommended)} new ones, e.g. {recommended[:10]}")


if __name__ == "__main__":
    main()
