"""Legacy setup shim.

Allows ``pip install -e . --no-build-isolation`` (and ``python setup.py
develop``) to work in offline environments that lack the ``wheel``
package required by PEP 660 editable builds.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
