# Reproduction workflow shortcuts.

PYTHON ?= python

.PHONY: install test bench experiments ablations scorecard paper-scale \
	examples profile-baseline clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
	$(PYTHON) benchmarks/baseline.py --out BENCH_joins.json \
		--check benchmarks/BENCH_seed.json --counters-only \
		--history BENCH_history.jsonl

# Regenerate the checked-in sampling-profiler baseline from the
# canonical bench suite.  Refresh it (and eyeball the diff) whenever a
# change is expected to move the hot-path ranking — new phases, engine
# rewrites, storage-layer changes — so later "did the profile shift?"
# comparisons start from the current code, not an ancestor's.
profile-baseline:
	mkdir -p results
	$(PYTHON) benchmarks/baseline.py --out results/profile_run.json \
		--profile results/profile_baseline.txt

experiments:
	$(PYTHON) -m repro.experiments --all --out results/

# Regenerate the committed ablation artifacts: the per-question
# experiment tables (results/ablation-*.tsv/.txt — seeded, so their
# deterministic columns reproduce bit-identically) and the declarative
# harness's importance report (results/ablation_importance.tsv/.jsonl;
# checked against itself so regeneration also proves the tripwire
# passes).  Wall-time columns vary per machine; x/y/pages do not.
ablations:
	mkdir -p results
	for id in ablation-alternation ablation-buffer ablation-firing \
		ablation-hash-family ablation-hybrid ablation-modulo \
		ablation-options ablation-portions ablation-skew; do \
		$(PYTHON) -m repro.experiments $$id --out results/ || exit 1; \
	done
	$(PYTHON) -m repro.cli ablate --scale 0.5 --out results/ \
		--history BENCH_history.jsonl

scorecard:
	$(PYTHON) -m repro.experiments scorecard

# Paper-scale runs are guarded behind SETJOINS_PAPER_SCALE so CI (which
# never sets it) stays at toy scale.  The final step records how far the
# paper's published c1/c2/c3 constants drift on this machine at the
# paper's |R|=|S|=10000 operating point: it EXPLAIN-ANALYZEs the join,
# appends the drift record to results/paper_drift.jsonl, and lets the
# recalibrator refit into results/paper_models.json once enough history
# accumulates.
paper-scale:
	SETJOINS_PAPER_SCALE=1 $(PYTHON) -m pytest tests/test_paper_scale.py -s
	$(PYTHON) -m repro.experiments fig8 --scale 1.0
	$(PYTHON) -m repro.experiments fig9 --scale 1.0
	mkdir -p results
	SETJOINS_PAPER_SCALE=1 $(PYTHON) -m repro.cli generate \
		results/paper_r.txt --size 10000 --theta 6 --domain 10000 --seed 8
	SETJOINS_PAPER_SCALE=1 $(PYTHON) -m repro.cli generate \
		results/paper_s.txt --size 10000 --theta 12 --domain 10000 --seed 9
	SETJOINS_PAPER_SCALE=1 $(PYTHON) -m repro.cli join \
		results/paper_r.txt results/paper_s.txt --analyze \
		--drift results/paper_drift.jsonl --recalibrate \
		--model-store results/paper_models.json

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf results/ build/ *.egg-info src/*.egg-info .pytest_cache \
		.hypothesis __pycache__ BENCH_joins.json BENCH_history.jsonl
