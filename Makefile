# Reproduction workflow shortcuts.

PYTHON ?= python

.PHONY: install test bench experiments scorecard paper-scale examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
	$(PYTHON) benchmarks/baseline.py --out BENCH_joins.json \
		--check benchmarks/BENCH_seed.json --counters-only

experiments:
	$(PYTHON) -m repro.experiments --all --out results/

scorecard:
	$(PYTHON) -m repro.experiments scorecard

paper-scale:
	SETJOINS_PAPER_SCALE=1 $(PYTHON) -m pytest tests/test_paper_scale.py -s
	$(PYTHON) -m repro.experiments fig8 --scale 1.0
	$(PYTHON) -m repro.experiments fig9 --scale 1.0

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf results/ build/ *.egg-info src/*.egg-info .pytest_cache \
		.hypothesis __pycache__ BENCH_joins.json
