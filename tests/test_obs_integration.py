"""End-to-end observability tests: instrumented joins, metric merging,
and cross-process span stitching.

Also home to the metric-merging edge cases: ``PhaseMetrics.__add__``
against foreign types, ``JoinMetrics.merge`` on empty/singleton input,
and the per-shard timing list the parallel merge must preserve.
"""

import pytest

from repro.core.metrics import JoinMetrics, PhaseMetrics
from repro.core.operator import run_disk_join
from repro.core.psj import PSJPartitioner
from repro.errors import ConfigurationError
from repro.obs.export import validate_trace_records
from repro.obs.trace import Tracer


@pytest.fixture(scope="module")
def workload():
    from repro.data.workloads import uniform_workload

    return uniform_workload(
        100, 120, 8, 16, domain_size=4_000, seed=7, planted_pairs=5
    ).materialize()


class TestPhaseMetricsAdd:
    def test_sums_componentwise(self):
        total = PhaseMetrics(1.0, 10, 5) + PhaseMetrics(0.5, 3, 2)
        assert total == PhaseMetrics(1.5, 13, 7)

    def test_add_foreign_type_returns_notimplemented(self):
        phase = PhaseMetrics(1.0, 10, 5)
        assert phase.__add__(42) is NotImplemented
        assert phase.__add__("x") is NotImplemented

    def test_add_foreign_type_raises_typeerror(self):
        with pytest.raises(TypeError):
            PhaseMetrics() + 42


class TestJoinMetricsMerge:
    def header(self):
        return dict(algorithm="PSJ", num_partitions=8, r_size=10, s_size=20,
                    signature_bits=64)

    def test_empty_input_is_an_error(self):
        with pytest.raises(ConfigurationError):
            JoinMetrics.merge([])

    def test_singleton_merge_copies_everything(self):
        part = JoinMetrics(**self.header())
        part.signature_comparisons = 123
        part.replicated_signatures = 45
        part.candidates = 6
        part.buffer_hits = 9
        part.buffer_misses = 1
        part.joining = PhaseMetrics(2.0, 7, 3)
        part.shard_joining = [PhaseMetrics(2.0, 7, 3)]
        merged = JoinMetrics.merge([part])
        assert merged.algorithm == "PSJ"
        assert merged.signature_comparisons == 123
        assert merged.replicated_signatures == 45
        assert merged.candidates == 6
        assert merged.buffer_hits == 9
        assert merged.buffer_misses == 1
        assert merged.joining == PhaseMetrics(2.0, 7, 3)
        assert merged.shard_joining == [PhaseMetrics(2.0, 7, 3)]
        assert merged is not part

    def test_merge_sums_buffer_stats(self):
        a = JoinMetrics(**self.header())
        b = JoinMetrics(**self.header())
        a.buffer_hits, a.buffer_misses = 30, 10
        b.buffer_hits, b.buffer_misses = 10, 10
        merged = JoinMetrics.merge([a, b])
        assert merged.buffer_hits == 40
        assert merged.buffer_misses == 20
        assert merged.buffer_hit_rate == pytest.approx(40 / 60)

    def test_hit_rate_with_no_fetches_is_zero(self):
        assert JoinMetrics().buffer_hit_rate == 0.0

    def test_as_row_includes_buffer_hit_rate(self):
        metrics = JoinMetrics(**self.header())
        metrics.buffer_hits, metrics.buffer_misses = 3, 1
        assert metrics.as_row()["buffer_hit_rate"] == 0.75


class TestSerialInstrumentation:
    def test_buffer_stats_surface_in_join_metrics(self, workload):
        lhs, rhs = workload
        __, metrics = run_disk_join(lhs, rhs, PSJPartitioner(8, seed=1))
        assert metrics.buffer_misses > 0  # cold pool: first reads miss
        assert 0.0 <= metrics.buffer_hit_rate <= 1.0

    def test_trace_covers_phases_and_partitions(self, workload):
        lhs, rhs = workload
        tracer = Tracer()
        run_disk_join(lhs, rhs, PSJPartitioner(8, seed=1), tracer=tracer)
        records = tracer.export()
        validate_trace_records(records)
        names = [record["name"] for record in records]
        assert names.count("join") == 1
        assert "phase.partition" in names
        assert "phase.join" in names
        assert "phase.verify" in names
        assert names.count("join.partition") == 8
        root = tracer.roots[0]
        assert root.attrs["signature_comparisons"] > 0
        assert root.attrs["buffer_misses"] > 0

    def test_tracing_does_not_change_results_or_accounting(self, workload):
        lhs, rhs = workload
        plain_pairs, plain = run_disk_join(lhs, rhs, PSJPartitioner(8, seed=1))
        traced_pairs, traced = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1), tracer=Tracer()
        )
        assert traced_pairs == plain_pairs
        assert traced.signature_comparisons == plain.signature_comparisons
        assert traced.replicated_signatures == plain.replicated_signatures
        assert traced.candidates == plain.candidates
        assert traced.false_positives == plain.false_positives


class TestWalInstrumentation:
    def test_commit_spans_and_fsync_counter(self, tmp_path):
        from repro.database import SetJoinDatabase
        from repro.core.sets import Relation, SetTuple
        from repro.obs.registry import get_registry
        from repro.obs.trace import use_tracer

        registry = get_registry()
        fsyncs_before = registry.counter("setjoin_wal_fsyncs_total").value
        relation = Relation(name="r")
        for tid in range(20):
            relation.add(SetTuple(tid, {tid, tid + 1, tid + 2}))
        tracer = Tracer()
        with use_tracer(tracer):
            with SetJoinDatabase.open(str(tmp_path / "wal.db")) as db:
                db.create_relation("r", relation)
        names = [record["name"] for record in tracer.export()]
        assert "wal.commit" in names
        assert "wal.log" in names
        assert "wal.checkpoint" in names
        assert (registry.counter("setjoin_wal_fsyncs_total").value
                > fsyncs_before)


class TestParallelStitching:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_one_stitched_tree_with_a_span_per_shard(self, workload, backend):
        lhs, rhs = workload
        tracer = Tracer()
        workers = 3
        __, metrics = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            workers=workers, backend=backend, tracer=tracer,
        )
        records = tracer.export()
        validate_trace_records(records)  # no dangling edges: one tree
        assert len(tracer.roots) == 1
        shard_spans = [span for span in tracer.roots[0].walk()
                       if span.name == "shard"]
        assert len(shard_spans) == workers
        assert sorted(span.attrs["index"] for span in shard_spans) == [0, 1, 2]
        # Every shard span hangs under the joining phase and carried its
        # partition-level children across the process boundary.
        phase_names = {span.name for span in tracer.roots[0].children}
        assert "phase.join" in phase_names
        for span in shard_spans:
            assert span.duration > 0
            assert any(child.name == "join.partition"
                       for child in span.children)
        total_partitions = sum(
            sum(1 for child in span.children
                if child.name == "join.partition")
            for span in shard_spans
        )
        assert total_partitions == 8

    def test_merged_metrics_keep_per_shard_timings(self, workload):
        lhs, rhs = workload
        workers = 3
        __, metrics = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            workers=workers, backend="thread",
        )
        assert len(metrics.shard_joining) == workers
        for share in metrics.shard_joining:
            assert isinstance(share, PhaseMetrics)
            assert share.seconds >= 0
        # The aggregate joining phase holds the parent's wall clock, not
        # the sum of the shares; the shares preserve what merge used to
        # discard.
        assert metrics.joining.seconds <= sum(
            share.seconds for share in metrics.shard_joining
        ) + metrics.joining.seconds

    def test_parallel_buffer_stats_include_worker_pools(self, workload):
        lhs, rhs = workload
        __, serial = run_disk_join(lhs, rhs, PSJPartitioner(8, seed=1))
        __, parallel = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            workers=2, backend="process",
        )
        assert parallel.buffer_misses > 0
        # Workers re-read partition data in their own pools, so the
        # parallel run can only see as many or more fetches overall.
        assert (parallel.buffer_hits + parallel.buffer_misses
                >= serial.buffer_hits + serial.buffer_misses)

    def test_parallel_tracing_keeps_results_identical(self, workload):
        lhs, rhs = workload
        plain_pairs, plain = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            workers=3, backend="process",
        )
        traced_pairs, traced = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            workers=3, backend="process", tracer=Tracer(),
        )
        assert traced_pairs == plain_pairs
        assert traced.signature_comparisons == plain.signature_comparisons
        assert traced.replicated_signatures == plain.replicated_signatures
