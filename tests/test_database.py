"""Tests for the persistent multi-relation database shell."""

import pytest

from repro.core.sets import Relation, containment_pairs_nested_loop
from repro.database import SetJoinDatabase
from repro.data.workloads import uniform_workload
from repro.errors import ConfigurationError
from repro.storage.catalog import Catalog
from repro.storage.buffer import BufferPool
from repro.storage.pager import InMemoryDiskManager


@pytest.fixture()
def relations():
    return uniform_workload(
        80, 100, 6, 12, domain_size=2_000, seed=9, planted_pairs=4
    ).materialize()


class TestCatalog:
    def test_register_lookup_unregister(self):
        pool = BufferPool(InMemoryDiskManager(512), capacity=16)
        catalog = Catalog(pool)
        catalog.register("students", meta_page_id=7, size=100)
        assert catalog.lookup("students") == (7, 100)
        assert "students" in catalog
        assert list(catalog.names()) == ["students"]
        assert catalog.unregister("students")
        assert not catalog.unregister("students")
        assert len(catalog) == 0

    def test_empty_name_rejected(self):
        pool = BufferPool(InMemoryDiskManager(512), capacity=16)
        with pytest.raises(ConfigurationError):
            Catalog(pool).register("", 1, 1)

    def test_reopen_existing_store(self):
        disk = InMemoryDiskManager(512)
        pool = BufferPool(disk, capacity=16)
        catalog = Catalog(pool)
        catalog.register("r", 3, 5)
        pool.flush_all()
        again = Catalog(pool)  # same store, no re-create
        assert again.lookup("r") == (3, 5)


class TestDatabase:
    def test_create_read_roundtrip(self, relations):
        lhs, __ = relations
        with SetJoinDatabase.open() as db:
            assert db.create_relation("r", lhs) == len(lhs)
            assert db.relation_names() == ["r"]
            assert db.relation_size("r") == len(lhs)
            loaded = db.read_relation("r")
            assert loaded.tids() == lhs.tids()
            for row in lhs:
                assert loaded[row.tid].elements == row.elements

    def test_duplicate_name_rejected(self, relations):
        lhs, __ = relations
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            with pytest.raises(ConfigurationError):
                db.create_relation("r", lhs)

    def test_missing_relation_rejected(self):
        with SetJoinDatabase.open() as db:
            with pytest.raises(ConfigurationError):
                db.get_store("ghost")
            with pytest.raises(ConfigurationError):
                db.drop_relation("ghost")

    def test_streamed_rows(self):
        with SetJoinDatabase.open() as db:
            db.create_relation("s", ((tid, {tid, tid + 1}) for tid in range(30)))
            assert db.relation_size("s") == 30
            assert db.read_relation("s")[7].elements == frozenset({7, 8})

    def test_join_over_stored_relations(self, relations):
        lhs, rhs = relations
        expected = containment_pairs_nested_loop(lhs, rhs)
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            for algorithm in ("auto", "DCJ", "PSJ", "LSJ"):
                pairs, metrics = db.join("r", "s", algorithm=algorithm)
                assert pairs == expected, algorithm

    def test_join_non_power_of_two(self, relations):
        lhs, rhs = relations
        expected = containment_pairs_nested_loop(lhs, rhs)
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            pairs, metrics = db.join("r", "s", algorithm="DCJ",
                                     num_partitions=12)
            assert pairs == expected
            assert metrics.num_partitions == 12

    def test_plan_and_explain(self, relations):
        lhs, rhs = relations
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            plan = db.plan("r", "s")
            assert plan.algorithm in ("DCJ", "PSJ")
            text = db.explain("r", "s")
            assert "chosen:" in text
            assert "best DCJ" in text and "best PSJ" in text

    def test_explain_plan_renders_the_predicted_tree(self, relations):
        lhs, rhs = relations
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            report = db.explain_plan("r", "s", algorithm="DCJ",
                                     num_partitions=8)
            text = report.render()
            assert report.mode == "explain"
            assert "α(h1)" in text  # the DCJ operator tree
            assert "phase.partition" in text and "phase.verify" in text
            # Built from catalog statistics alone — nothing executed, so
            # EXPLAIN must not grow the database.
            pages_before = db.disk.num_pages
            db.explain_plan("r", "s")
            assert db.disk.num_pages == pages_before

    def test_explain_plan_auto_matches_the_optimizer(self, relations):
        lhs, rhs = relations
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            plan = db.plan("r", "s")
            report = db.explain_plan("r", "s")
            assert report.root.detail == f"{plan.algorithm} k={plan.k}"

    def test_stats_report_join_latency_percentiles(self, relations):
        lhs, rhs = relations
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            db.join("r", "s", algorithm="PSJ")
            stats = db.stats()
        # The latency series lives in the process-wide registry, so
        # other tests' joins may have contributed too — at least ours
        # must be there, with ordered quantiles.
        assert stats["joins_recorded"] >= 1
        p50, p95, p99 = (stats["join_latency_p50"],
                         stats["join_latency_p95"],
                         stats["join_latency_p99"])
        assert p50 is not None
        assert p50 <= p95 <= p99

    def test_drop_returns_pages(self, relations):
        lhs, __ = relations
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            live_with_relation = db.disk.num_live_pages
            db.drop_relation("r")
            assert db.relation_names() == []
            assert db.disk.num_live_pages < live_with_relation

    def test_repeated_joins_bounded_growth(self, relations):
        lhs, rhs = relations
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            db.join("r", "s", algorithm="PSJ")
            pages_after_first = db.disk.num_pages
            for __ in range(3):
                db.join("r", "s", algorithm="PSJ")
            assert db.disk.num_pages <= pages_after_first + 2

    def test_closed_database_rejects_operations(self, relations):
        lhs, __ = relations
        db = SetJoinDatabase.open()
        db.create_relation("r", lhs)
        db.close()
        with pytest.raises(ConfigurationError):
            db.relation_names()


class TestFilePersistence:
    def test_database_survives_reopen(self, tmp_path, relations):
        lhs, rhs = relations
        expected = containment_pairs_nested_loop(lhs, rhs)
        path = str(tmp_path / "sets.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        with SetJoinDatabase.open(path) as db:
            assert sorted(db.relation_names()) == ["r", "s"]
            assert db.relation_size("r") == len(lhs)
            pairs, __ = db.join("r", "s")
            assert pairs == expected

    def test_two_reopens_with_drops(self, tmp_path, relations):
        lhs, rhs = relations
        path = str(tmp_path / "sets.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            db.drop_relation("r")
        with SetJoinDatabase.open(path) as db:
            assert db.relation_names() == ["s"]
            db.create_relation("r2", lhs)
        with SetJoinDatabase.open(path) as db:
            assert sorted(db.relation_names()) == ["r2", "s"]


class TestAdaptivePlanning:
    def test_model_store_supplies_the_planning_model(self, relations):
        from repro.analysis.timemodel import PAPER_TIME_MODEL, TimeModel
        from repro.obs.adaptive import ModelStore

        lhs, rhs = relations
        store = ModelStore()
        store.add_version(
            TimeModel(2 * PAPER_TIME_MODEL.c1, 2 * PAPER_TIME_MODEL.c2,
                      PAPER_TIME_MODEL.c3),
            records=24, window=200,
            mean_abs_error_before=0.5, mean_abs_error_after=0.0,
            wall=lambda: 1.0,
        )
        with SetJoinDatabase.open(model_store=store) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            assert db.model == store.active
            plan = db.plan("r", "s")
            # Doubling both linear coefficients doubles every candidate's
            # predicted time but cannot change the argmin.
            baseline = db.plan("r", "s")
            assert plan.algorithm == baseline.algorithm

    def test_refresh_model_follows_external_recalibration(
        self, relations, tmp_path
    ):
        from repro.analysis.timemodel import PAPER_TIME_MODEL, TimeModel
        from repro.obs.adaptive import ModelStore

        lhs, rhs = relations
        store_path = str(tmp_path / "models.json")
        with SetJoinDatabase.open(model_store=store_path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            assert db.model == PAPER_TIME_MODEL  # nothing refitted yet
            # An external process (e.g. `repro join --recalibrate`)
            # writes a new version into the same store file.
            external = ModelStore(store_path)
            fitted = TimeModel(1e-6, 2e-6, 0.7)
            external.add_version(
                fitted, records=24, window=200,
                mean_abs_error_before=0.5, mean_abs_error_after=0.01,
                wall=lambda: 1.0,
            )
            db.model_store._load(store_path)  # long-lived session re-reads
            assert db.refresh_model() == fitted
            # plan() re-adopts automatically on every call.
            assert db.plan("r", "s") is not None
            assert db.model == fitted

    def test_plan_accepts_drift_history(self, relations):
        lhs, rhs = relations
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            baseline = db.plan("r", "s")
            loser = "PSJ" if baseline.algorithm == "DCJ" else "DCJ"
            flipped = db.plan(
                "r", "s",
                drift_history={baseline.algorithm: 50.0, loser: 1.0},
            )
            assert flipped.algorithm == loser
