"""Local mirrors of the CI source lints.

The observability CI job enforces two AST lints over ``src/repro``:
no bare ``print()`` outside the CLI/experiments, and no direct
``time.time()``/``time.monotonic()`` calls anywhere in library code
(*including* ``src/repro/experiments`` — every latency measurement must
flow through an injected clock seam; storing the function as a default
reference, ``clock=time.monotonic``, is the sanctioned idiom).  Running
the same walks in the tier-1 suite catches violations before a push
instead of in CI.
"""

from __future__ import annotations

import ast
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
LIBRARY_ROOT = REPO_ROOT / "src" / "repro"

#: Modules allowed to read clocks directly: the process-pool executor
#: computes cross-process deadlines from the real monotonic clock.
CLOCK_ALLOWED = {LIBRARY_ROOT / "parallel" / "executor.py"}

FORBIDDEN_CLOCKS = ("time", "monotonic")


def _walk_library():
    for path in sorted(LIBRARY_ROOT.rglob("*.py")):
        yield path, ast.parse(path.read_text(), filename=str(path))


def test_no_direct_clock_reads_in_library_code():
    bad = []
    for path, tree in _walk_library():
        if path in CLOCK_ALLOWED:
            continue
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "time"
                    and node.func.attr in FORBIDDEN_CLOCKS):
                bad.append(f"{path.relative_to(REPO_ROOT)}:{node.lineno}")
    assert not bad, (
        "direct clock reads in library code (inject the clock instead):\n"
        + "\n".join(bad)
    )


def test_no_bare_print_in_library_code():
    bad = []
    for path, tree in _walk_library():
        # The CLI and the experiment harness print by design.
        if (path == LIBRARY_ROOT / "cli.py"
                or (LIBRARY_ROOT / "experiments") in path.parents):
            continue
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                bad.append(f"{path.relative_to(REPO_ROOT)}:{node.lineno}")
    assert not bad, (
        "bare print() in library code (report via repro.obs instead):\n"
        + "\n".join(bad)
    )
