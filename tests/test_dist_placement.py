"""Placement math: rendezvous assignment, deterministic PSJ routing,
and the replication planner's exactness/pruning accounting."""

import pytest

from repro.core.psj import PSJPartitioner, _mix
from repro.core.signatures import signature_of
from repro.dist.placement import (
    PlacementReport,
    ReplicationPlanner,
    ShardSummary,
    assign_shard,
    deterministic_choice,
    deterministic_partitioner,
    summarize_rows,
)
from repro.errors import ConfigurationError


class TestAssignShard:
    def test_deterministic_and_order_independent(self):
        for tid in range(200):
            a = assign_shard(tid, [0, 1, 2, 3])
            b = assign_shard(tid, [3, 1, 0, 2])
            assert a == b

    def test_spread_is_roughly_uniform(self):
        counts = {sid: 0 for sid in range(4)}
        for tid in range(2000):
            counts[assign_shard(tid, list(range(4)))] += 1
        for count in counts.values():
            assert 350 < count < 650  # 500 expected

    def test_growing_only_moves_rows_to_the_new_shard(self):
        old = [0, 1, 2]
        new = [0, 1, 2, 3]
        moved = 0
        for tid in range(1000):
            before = assign_shard(tid, old)
            after = assign_shard(tid, new)
            if before != after:
                assert after == 3  # rendezvous guarantee
                moved += 1
        assert 150 < moved < 350  # expected 1/4

    def test_shrinking_only_moves_the_removed_shards_rows(self):
        old = [0, 1, 2, 3]
        new = [0, 1, 2]
        for tid in range(1000):
            before = assign_shard(tid, old)
            after = assign_shard(tid, new)
            if before != 3:
                assert after == before

    def test_zero_shards_is_an_error(self):
        with pytest.raises(ConfigurationError):
            assign_shard(1, [])


class TestDeterministicPSJ:
    def test_choice_is_a_pure_function_of_the_set(self):
        elements = frozenset({3, 17, 99, 4096})
        assert deterministic_choice(elements) == min(elements, key=_mix)
        assert deterministic_choice(elements) == deterministic_choice(
            frozenset(sorted(elements))
        )

    def test_sanitized_psj_routes_identically_across_instances(self):
        rows = [frozenset({i, i + 7, i * 3 % 100}) for i in range(1, 60)]
        a = deterministic_partitioner(PSJPartitioner(8, seed=1))
        b = deterministic_partitioner(PSJPartitioner(8, seed=99))
        for elements in rows:
            assert a.assign_r(elements) == b.assign_r(elements)
            # repeated calls agree too (no RNG state consumed)
            assert a.assign_r(elements) == a.assign_r(elements)

    def test_sanitizing_is_idempotent(self):
        sanitized = deterministic_partitioner(PSJPartitioner(8))
        assert deterministic_partitioner(sanitized) is sanitized

    def test_dcj_passes_through_unchanged(self):
        from repro.core.modulo import dcj_with_any_k

        partitioner = dcj_with_any_k(8, 10.0, 20.0)
        assert deterministic_partitioner(partitioner) is partitioner


def _summaries(partitioner, slices, signature_bits=160):
    return [
        summarize_rows(sid, rows, partitioner,
                       signature_bits=signature_bits)
        for sid, rows in slices.items()
    ]


class TestReplicationPlanner:
    def test_occupancy_mode_ships_to_every_occupied_shard(self):
        partitioner = deterministic_partitioner(PSJPartitioner(4))
        slices = {
            0: [(1, frozenset({0, 4}))],      # partitions of its S rows
            1: [(2, frozenset({1, 5, 9}))],
            2: [],                            # empty shard: never a target
        }
        planner = ReplicationPlanner(_summaries(partitioner, slices))
        r = frozenset({0, 1, 2})
        targets = planner.targets(r, partitioner.assign_r(r))
        assert 2 not in targets

    def test_exact_accounting(self):
        partitioner = deterministic_partitioner(PSJPartitioner(4))
        slices = {
            0: [(1, frozenset({0, 1})), (2, frozenset({2, 3}))],
            1: [(3, frozenset({1, 2}))],
        }
        planner = ReplicationPlanner(_summaries(partitioner, slices))
        r_rows = [frozenset({i}) for i in range(8)]
        for elements in r_rows:
            planner.targets(elements, partitioner.assign_r(elements))
        report = planner.report()
        assert report.r_rows == len(r_rows)
        assert report.s_rows == 3
        # every R row contributed exactly its |partitions| to logical y
        assert report.logical_r_entries == sum(
            len(partitioner.assign_r(e)) for e in r_rows
        )
        assert report.logical_s_entries == sum(
            len(partitioner.assign_s(e))
            for rows in slices.values() for __, e in rows
        )
        assert 1.0 <= report.replication_factor <= 2.0
        # physical + pruned visits account for every (row, shard) pair
        assert (report.physical_r_rows + report.pruned_occupancy
                + report.pruned_signature) == len(r_rows) * len(slices)

    def test_signature_mode_is_sound(self):
        """Signature pruning must never skip a shard holding a superset."""
        partitioner = deterministic_partitioner(PSJPartitioner(4))
        s_sets = {
            0: [(1, frozenset({1, 2, 3, 4})), (2, frozenset({10, 11}))],
            1: [(3, frozenset({5, 6, 7, 8, 9}))],
        }
        planner = ReplicationPlanner(
            _summaries(partitioner, s_sets), mode="signature"
        )
        for r in (frozenset({1, 2}), frozenset({5, 9}), frozenset({10}),
                  frozenset({2, 3, 4}), frozenset({999})):
            targets = planner.targets(r, partitioner.assign_r(r))
            for sid, rows in s_sets.items():
                if any(r <= s for __, s in rows):
                    assert sid in targets, (r, sid)

    def test_signature_mode_prunes_by_cardinality(self):
        partitioner = deterministic_partitioner(PSJPartitioner(2))
        slices = {0: [(1, frozenset({1, 2}))]}
        planner = ReplicationPlanner(
            _summaries(partitioner, slices), mode="signature"
        )
        big = frozenset(range(1, 10))  # |r| > max |s| on the shard
        assert planner.targets(big, partitioner.assign_r(big)) == []
        assert planner.report().pruned_signature == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationPlanner([], mode="bogus")


class TestShardSummary:
    def test_summary_digest_matches_rows(self):
        partitioner = deterministic_partitioner(PSJPartitioner(4))
        rows = [(1, frozenset({1, 2, 3})), (2, frozenset({4, 5}))]
        summary = summarize_rows(7, rows, partitioner)
        assert summary.shard_id == 7
        assert summary.rows == 2
        assert summary.entries == sum(
            len(partitioner.assign_s(e)) for __, e in rows
        )
        assert summary.max_cardinality == 3
        mask = (1 << 64) - 1
        expected_prefix = 0
        for __, e in rows:
            expected_prefix |= signature_of(e, 160) & mask
        assert summary.signature_prefix == expected_prefix


class TestPlacementReport:
    def test_explain_lines_report_the_replication_factor(self):
        report = PlacementReport(
            shards=3, mode="partitions", r_rows=100, s_rows=50,
            logical_r_entries=150, logical_s_entries=90,
            physical_r_rows=220, physical_r_entries=330,
            pruned_occupancy=80, pruned_signature=0,
        )
        text = "\n".join(report.explain_lines())
        assert "factor 2.200" in text
        assert "3 shards" in text
        assert report.logical_entries == 240
        assert report.as_dict()["replication_factor"] == 2.2
