"""Tests for relation text-file persistence."""

import pytest

from repro.core.sets import Relation, SetTuple
from repro.data.io import load_relation, save_relation
from repro.errors import ConfigurationError


class TestRoundTrip:
    def test_explicit_tids(self, tmp_path):
        relation = Relation(name="R")
        relation.add(SetTuple(5, frozenset({1, 2})))
        relation.add(SetTuple(9, frozenset()))
        path = str(tmp_path / "r.txt")
        assert save_relation(relation, path) == 2
        loaded = load_relation(path)
        assert loaded.tids() == [5, 9]
        assert loaded[5].elements == frozenset({1, 2})
        assert loaded[9].elements == frozenset()

    def test_implicit_tids(self, tmp_path):
        relation = Relation.from_sets([{1}, {2, 3}])
        path = str(tmp_path / "r.txt")
        save_relation(relation, path, explicit_tids=False)
        loaded = load_relation(path)
        # The leading comment line shifts line numbers; tids differ but
        # the sets round-trip.
        assert sorted(row.elements for row in loaded) == sorted(
            row.elements for row in relation
        )

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("# header\n\n0: 1 2\n# middle\n1: 3\n")
        loaded = load_relation(str(path))
        assert len(loaded) == 2

    def test_generated_relation_roundtrip(self, tmp_path, small_workload):
        lhs, __ = small_workload
        path = str(tmp_path / "gen.txt")
        save_relation(lhs, path)
        loaded = load_relation(path)
        assert loaded.tids() == lhs.tids()
        for row in lhs:
            assert loaded[row.tid].elements == row.elements


class TestErrors:
    def test_bad_tid(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("abc: 1 2\n")
        with pytest.raises(ConfigurationError):
            load_relation(str(path))

    def test_bad_element(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0: 1 x 3\n")
        with pytest.raises(ConfigurationError):
            load_relation(str(path))

    def test_name_defaults_to_filename(self, tmp_path):
        path = tmp_path / "things.txt"
        path.write_text("0: 1\n")
        assert load_relation(str(path)).name == "things.txt"
