"""Automatic rollback of regressing time-model refits.

A refit is accepted on the window that triggered it; this suite covers
the *forward* check — once enough drift accumulates under the refitted
model, it must beat the paper constants on that fresh data or be
reverted (with the counter bumped and the alert gauge raised)."""

import pytest

from repro.analysis.timemodel import PAPER_TIME_MODEL, TimeModel
from repro.errors import ConfigurationError
from repro.obs.adaptive import ModelStore, Recalibrator
from repro.obs.drift import DriftRecord
from repro.obs.registry import MetricsRegistry

FITTED_AT = 1_000.0


def _record(timestamp, seconds, comparisons=10_000, replicated=500, k=32):
    return DriftRecord(
        timestamp=timestamp, algorithm="DCJ", k=k,
        r_size=100, s_size=200,
        observed={"seconds": seconds, "comparisons": comparisons,
                  "replicated": replicated},
    )


def _history(count, start, model, noise=1.0):
    """Drift records whose observed seconds are exactly what ``model``
    predicts (scaled by ``noise``) — so that model's error on them is 0
    (or the chosen offset) by construction."""
    records = []
    for i in range(count):
        comparisons = 10_000 + 17 * i
        replicated = 500 + 3 * i
        seconds = model.predict(comparisons, replicated, 32) * noise
        records.append(_record(start + 1 + i, seconds,
                               comparisons=comparisons,
                               replicated=replicated))
    return records


def _store_with_refit(path=None, scale=10.0):
    """A store whose active refit mispredicts by ``scale``×."""
    store = ModelStore(path)
    bad = TimeModel(c1=PAPER_TIME_MODEL.c1 * scale,
                    c2=PAPER_TIME_MODEL.c2 * scale,
                    c3=PAPER_TIME_MODEL.c3)
    store.add_version(bad, records=30, window=200,
                      mean_abs_error_before=0.4, mean_abs_error_after=0.1,
                      wall=lambda: FITTED_AT)
    return store


class TestModelStoreRollback:
    def test_rollback_restores_the_previous_model(self, tmp_path):
        path = str(tmp_path / "models.json")
        store = _store_with_refit(path)
        assert store.active_version == 1
        removed = store.rollback()
        assert removed.version == 1
        assert store.active_version == 0
        assert store.active is PAPER_TIME_MODEL
        # the pop persisted: a fresh load agrees
        assert ModelStore(path).active_version == 0

    def test_rollback_on_empty_store_is_an_error(self):
        with pytest.raises(ConfigurationError, match="roll back"):
            ModelStore().rollback()


class TestMaybeRollback:
    def test_regression_reverts_and_alerts(self):
        registry = MetricsRegistry()
        store = _store_with_refit()
        recalibrator = Recalibrator(store=store, registry=registry)
        history = _history(25, FITTED_AT, PAPER_TIME_MODEL)
        outcome = recalibrator.maybe_rollback(history)
        assert outcome.reverted
        assert outcome.active_error > outcome.base_error
        assert outcome.removed.version == 1
        assert store.active_version == 0
        assert registry.counter(
            "setjoin_model_rollback_total", ""
        ).value == 1
        assert registry.gauge(
            "setjoin_model_rollback_alert", ""
        ).value == 1
        # published model gauges now show the paper constants again
        assert registry.gauge(
            "setjoin_model_c1", ""
        ).value == PAPER_TIME_MODEL.c1
        assert registry.gauge("setjoin_model_version", "").value == 0

    def test_healthy_refit_survives_and_clears_the_alert(self):
        registry = MetricsRegistry()
        store = _store_with_refit(scale=1.0)  # refit == paper constants
        recalibrator = Recalibrator(store=store, registry=registry)
        history = _history(25, FITTED_AT, PAPER_TIME_MODEL)
        outcome = recalibrator.maybe_rollback(history)
        assert not outcome.reverted
        assert "holding up" in outcome.reason
        assert store.active_version == 1
        assert registry.gauge(
            "setjoin_model_rollback_alert", ""
        ).value == 0

    def test_thin_post_refit_history_is_left_alone(self):
        store = _store_with_refit()
        recalibrator = Recalibrator(store=store,
                                    registry=MetricsRegistry())
        history = _history(5, FITTED_AT, PAPER_TIME_MODEL)
        outcome = recalibrator.maybe_rollback(history)
        assert not outcome.reverted
        assert "5 drift records" in outcome.reason
        assert store.active_version == 1

    def test_pre_refit_records_do_not_count(self):
        store = _store_with_refit()
        recalibrator = Recalibrator(store=store,
                                    registry=MetricsRegistry())
        # plenty of records, but all observed *before* the refit
        history = _history(40, FITTED_AT - 500, PAPER_TIME_MODEL)
        outcome = recalibrator.maybe_rollback(history)
        assert not outcome.reverted
        assert store.active_version == 1

    def test_unrefitted_store_is_a_noop(self):
        recalibrator = Recalibrator(registry=MetricsRegistry())
        outcome = recalibrator.maybe_rollback([])
        assert not outcome.reverted
        assert "nothing to roll back" in outcome.reason

    def test_unusable_samples_do_not_judge(self):
        store = _store_with_refit()
        recalibrator = Recalibrator(store=store,
                                    registry=MetricsRegistry())
        # enough records, but none carry usable observations
        history = [
            DriftRecord(timestamp=FITTED_AT + 1 + i, algorithm="DCJ",
                        k=32, r_size=1, s_size=1)
            for i in range(25)
        ]
        outcome = recalibrator.maybe_rollback(history)
        assert not outcome.reverted
        assert "usable samples" in outcome.reason

    def test_min_rollback_records_is_validated(self):
        with pytest.raises(ConfigurationError):
            Recalibrator(min_rollback_records=0,
                         registry=MetricsRegistry())

    def test_rollback_persists_across_reload(self, tmp_path):
        path = str(tmp_path / "models.json")
        store = _store_with_refit(path)
        recalibrator = Recalibrator(store=store,
                                    registry=MetricsRegistry())
        history = _history(25, FITTED_AT, PAPER_TIME_MODEL)
        assert recalibrator.maybe_rollback(history).reverted
        reloaded = ModelStore(path)
        assert reloaded.active_version == 0
        assert reloaded.active is reloaded.base_model
