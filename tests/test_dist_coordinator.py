"""Shard-count invariance and coordinator behaviour.

The acceptance bar for the dist layer: at every shard count and every
per-shard execution backend, a distributed join returns pairs *and*
paper x/y accounting bit-identical to single-shard execution; EXPLAIN
reports the replication factor; resharding preserves answers while
moving only the minimally required rows.
"""

import os

import pytest

from repro.core.psj import PSJPartitioner
from repro.database import SetJoinDatabase
from repro.dist import ShardedDatabase, deterministic_partitioner
from repro.errors import ConfigurationError
from repro.parallel.executor import ProcessBackend

SHARD_COUNTS = (1, 2, 3, 8)

process_available = ProcessBackend(2).available()


def _rows(relation):
    return [(row.tid, row.elements) for row in relation]


@pytest.fixture(scope="module")
def workload(small_workload):
    lhs, rhs = small_workload
    return _rows(lhs), _rows(rhs)


@pytest.fixture(scope="module")
def single_answer(workload):
    """The plain single-database answer plus the deterministic-PSJ
    baseline accounting the sharded runs must reproduce exactly."""
    r_rows, s_rows = workload
    with SetJoinDatabase.open() as db:
        db.create_relation("r", r_rows)
        db.create_relation("s", s_rows)
        pairs, __ = db.join("r", "s", algorithm="PSJ", num_partitions=8)
    partitioner = deterministic_partitioner(PSJPartitioner(8))
    with ShardedDatabase.open(None, shards=1) as db:
        db.create_relation("r", r_rows)
        db.create_relation("s", s_rows)
        base_pairs, metrics = db.join("r", "s", partitioner=partitioner)
    assert base_pairs == pairs  # dist layer agrees with the plain engine
    return pairs, metrics


class TestShardCountInvariance:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_pairs_and_xy_identical(self, tmp_path, workload,
                                    single_answer, shards, backend):
        if backend == "process" and not process_available:
            pytest.skip("process backend unavailable in this sandbox")
        r_rows, s_rows = workload
        expected_pairs, expected = single_answer
        partitioner = deterministic_partitioner(PSJPartitioner(8))
        path = str(tmp_path / "dist.db") if backend == "process" else None
        workers = 1 if backend == "serial" else 2
        with ShardedDatabase.open(path, shards=shards) as db:
            db.create_relation("r", r_rows)
            db.create_relation("s", s_rows)
            pairs, metrics = db.join(
                "r", "s", partitioner=partitioner,
                workers=workers, backend=backend,
            )
        assert pairs == expected_pairs
        assert metrics.signature_comparisons == expected.signature_comparisons
        assert metrics.replicated_signatures == expected.replicated_signatures
        assert metrics.candidates == expected.candidates
        assert metrics.false_positives == expected.false_positives
        assert metrics.result_size == expected.result_size
        assert metrics.r_size == expected.r_size
        assert metrics.s_size == expected.s_size

    def test_auto_plan_is_shard_count_invariant(self, workload):
        """Exact statistics make the optimizer pick the same plan (and
        produce the same answer) at every shard count."""
        r_rows, s_rows = workload
        outcomes = []
        for shards in (1, 3):
            with ShardedDatabase.open(None, shards=shards) as db:
                db.create_relation("r", r_rows)
                db.create_relation("s", s_rows)
                plan = db.plan("r", "s")
                pairs, metrics = db.join("r", "s")
                outcomes.append((plan.algorithm, plan.k, pairs,
                                 metrics.signature_comparisons,
                                 metrics.replicated_signatures))
        assert outcomes[0] == outcomes[1]

    def test_signature_prune_keeps_pairs_exact(self, workload,
                                               single_answer):
        r_rows, s_rows = workload
        expected_pairs, __ = single_answer
        partitioner = deterministic_partitioner(PSJPartitioner(8))
        with ShardedDatabase.open(None, shards=4,
                                  prune="signature") as db:
            db.create_relation("r", r_rows)
            db.create_relation("s", s_rows)
            pairs, __m = db.join("r", "s", partitioner=partitioner)
            report = db.last_placement
        assert pairs == expected_pairs
        assert report.mode == "signature"


class TestCoordinatorSurface:
    def test_explain_reports_the_replication_factor(self, workload):
        r_rows, s_rows = workload
        with ShardedDatabase.open(None, shards=3) as db:
            db.create_relation("r", r_rows)
            db.create_relation("s", s_rows)
            text = db.explain("r", "s")
        assert "replication" in text and "factor" in text
        assert "3 shards" in text

    def test_probe_and_scan_match_single_database(self, workload):
        r_rows, s_rows = workload
        query = sorted(s_rows[0][1])[:2]
        with SetJoinDatabase.open() as db:
            db.create_relation("s", s_rows)
            expected_probe = db.probe("s", query)
            expected_scan = [(t, e) for t, e, __ in db.get_store("s").scan()]
        with ShardedDatabase.open(None, shards=3) as db:
            db.create_relation("s", s_rows)
            assert db.probe("s", query) == sorted(expected_probe)
            assert list(db.scan_relation("s")) == expected_scan
            assert db.relation_size("s") == len(s_rows)
            assert len(db.get_store("s")) == len(s_rows)

    def test_manifest_reopen_and_conflict(self, tmp_path, workload):
        r_rows, __ = workload
        path = str(tmp_path / "layout.db")
        with ShardedDatabase.open(path, shards=3) as db:
            db.create_relation("r", r_rows)
        assert os.path.exists(path + ".shards.json")
        with ShardedDatabase.open(path) as db:  # shards= from manifest
            assert db.shard_ids == [0, 1, 2]
            assert db.relation_size("r") == len(r_rows)
        with pytest.raises(ConfigurationError):
            ShardedDatabase.open(path, shards=5)

    def test_open_sharded_entrypoint(self):
        with SetJoinDatabase.open_sharded(None, shards=2) as db:
            assert isinstance(db, ShardedDatabase)
            assert db.shard_ids == [0, 1]

    def test_shards_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ShardedDatabase.open(None, shards=0)
        with pytest.raises(ConfigurationError):
            ShardedDatabase.open(None)  # creating needs a count

    def test_verify_integrity_covers_every_shard(self, workload):
        r_rows, s_rows = workload
        with ShardedDatabase.open(None, shards=3) as db:
            db.create_relation("r", r_rows)
            db.create_relation("s", s_rows)
            report = db.verify_integrity()
        assert report["shards"] == 3
        assert report["tuples"] == len(r_rows) + len(s_rows)


class TestReshard:
    def test_reshard_preserves_answers_and_moves_minimally(
        self, tmp_path, workload, single_answer
    ):
        r_rows, s_rows = workload
        expected_pairs, expected = single_answer
        partitioner = deterministic_partitioner(PSJPartitioner(8))
        path = str(tmp_path / "grow.db")
        with ShardedDatabase.open(path, shards=2) as db:
            db.create_relation("r", r_rows)
            db.create_relation("s", s_rows)
            report = db.reshard(4)
            assert report.new_shard_ids == [0, 1, 2, 3]
            total = len(r_rows) + len(s_rows)
            assert report.total_rows == total
            # growing 2 → 4 moves an expected half; never everything
            assert 0 < report.moved_rows < total
            pairs, metrics = db.join("r", "s", partitioner=partitioner)
            assert pairs == expected_pairs
            assert (metrics.signature_comparisons
                    == expected.signature_comparisons)
            shrink = db.reshard(1)
            assert shrink.new_shard_ids == [0]
            pairs, __ = db.join("r", "s", partitioner=partitioner)
            assert pairs == expected_pairs
        # the manifest reflects the final layout
        with ShardedDatabase.open(path) as db:
            assert db.shard_ids == [0]
            assert db.relation_size("r") == len(r_rows)

    def test_reshard_drops_removed_shard_files(self, tmp_path, workload):
        r_rows, __ = workload
        path = str(tmp_path / "shrink.db")
        with ShardedDatabase.open(path, shards=3) as db:
            db.create_relation("r", r_rows)
            db.reshard(2)
            assert not os.path.exists(path + ".shard2")

    def test_noop_reshard(self, workload):
        r_rows, __ = workload
        with ShardedDatabase.open(None, shards=2) as db:
            db.create_relation("r", r_rows)
            report = db.reshard(2)
            assert report.moved_rows == 0
            assert db.shard_ids == [0, 1]


class TestRunDiskJoinShards:
    def test_run_disk_join_shards_parameter(self, small_workload):
        from repro.core.operator import run_disk_join

        lhs, rhs = small_workload
        base_pairs, base = run_disk_join(
            lhs, rhs, deterministic_partitioner(PSJPartitioner(8))
        )
        pairs, metrics = run_disk_join(
            lhs, rhs, deterministic_partitioner(PSJPartitioner(8)),
            shards=3,
        )
        assert pairs == base_pairs
        assert metrics.signature_comparisons == base.signature_comparisons
        assert metrics.replicated_signatures == base.replicated_signatures
