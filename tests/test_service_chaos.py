"""Chaos-driven load harness: zero wrong answers, clean shutdown, WAL
replay after SIGKILL.

The acceptance bar for the service layer: under injected worker kills,
shard delays and I/O faults, every admitted query is either answered
bit-identically to a clean run or cleanly rejected with a typed error —
never answered wrongly, never lost.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.database import SetJoinDatabase
from repro.obs.registry import MetricsRegistry
from repro.parallel.executor import ProcessBackend
from repro.service import (
    ChaosConfig,
    ChaosInjector,
    LoadGenerator,
    QueryService,
    WorkloadMix,
)

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


@pytest.fixture()
def loaded_db(small_workload):
    lhs, rhs = small_workload
    with SetJoinDatabase.open() as db:
        db.create_relation("r", lhs)
        db.create_relation("s", rhs)
        yield db


def make_service(db, chaos=None, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return QueryService(db, workers=2, backend="thread", chaos=chaos,
                        **kwargs)


class TestChaosInjector:
    def test_disarmed_injector_is_inert(self):
        chaos = ChaosInjector(
            ChaosConfig(worker_kill_rate=1.0), registry=MetricsRegistry()
        )

        class Spec:
            chaos_kill = False
            chaos_delay = 0.0
            file_source = None
            fail_after = None

        spec = Spec()
        chaos(spec)
        assert not spec.chaos_kill and chaos.injected == 0

    def test_same_seed_arms_the_same_faults(self):
        def run(seed):
            chaos = ChaosInjector(
                ChaosConfig(worker_kill_rate=0.3, shard_delay_rate=0.3),
                seed=seed, registry=MetricsRegistry(),
            ).arm()
            outcomes = []
            for _ in range(50):
                spec = type("Spec", (), {
                    "chaos_kill": False, "chaos_delay": 0.0,
                    "file_source": None, "fail_after": None,
                })()
                chaos(spec)
                outcomes.append((spec.chaos_kill, spec.chaos_delay > 0))
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_io_faults_only_on_file_backed_shards(self):
        chaos = ChaosInjector(
            ChaosConfig(io_fault_rate=1.0, io_fault_after=0),
            registry=MetricsRegistry(),
        ).arm()
        inline = type("Spec", (), {
            "chaos_kill": False, "chaos_delay": 0.0,
            "file_source": None, "fail_after": None,
        })()
        chaos(inline)
        assert inline.fail_after is None
        filed = type("Spec", (), {
            "chaos_kill": False, "chaos_delay": 0.0,
            "file_source": object(), "fail_after": None,
        })()
        chaos(filed)
        assert filed.fail_after == 0
        assert chaos.io_faults == 1


class TestLoadHarness:
    def test_zero_wrong_answers_under_chaos(self, loaded_db):
        chaos = ChaosInjector(
            ChaosConfig(worker_kill_rate=0.25, shard_delay_rate=0.25,
                        delay_seconds=0.01),
            seed=3, registry=MetricsRegistry(),
        )
        with make_service(loaded_db, chaos=chaos, queue_depth=64) as service:
            generator = LoadGenerator(
                service, "r", "s", qps=1000, seed=11,
                mix=WorkloadMix(join=0.3, probe=0.5, churn=0.2),
                sleep=lambda seconds: None,
            ).prepare()
            chaos.arm()
            report = generator.run(50)
            chaos.disarm()
        report.assert_no_wrong_answers()
        assert report.submitted == 50
        assert report.ok > 0
        assert chaos.injected > 0  # the run actually saw faults
        assert report.accounted == report.submitted

    def test_harness_requires_prepare(self, loaded_db):
        from repro.errors import ConfigurationError

        with make_service(loaded_db) as service:
            generator = LoadGenerator(service, "r", "s",
                                      sleep=lambda seconds: None)
            with pytest.raises(ConfigurationError, match="prepare"):
                generator.run(1)

    def test_report_accounting_flags_leaks(self):
        from repro.service import LoadReport

        report = LoadReport(submitted=3, ok=1, shed=1)
        with pytest.raises(AssertionError, match="accounting leak"):
            report.assert_no_wrong_answers()
        report.failed = 1
        report.assert_no_wrong_answers()

    def test_report_flags_wrong_answers(self):
        from repro.service import LoadReport

        report = LoadReport(submitted=1, wrong=1,
                            wrong_details=[{"kind": "join"}])
        with pytest.raises(AssertionError, match="wrong answer"):
            report.assert_no_wrong_answers()

    def test_graceful_drain_under_load(self, loaded_db):
        with make_service(loaded_db, queue_depth=32) as service:
            tickets = [
                service.submit("probe", name="s", elements=[i % 7])
                for i in range(12)
            ]
            service.stop(drain=True)
            for ticket in tickets:
                assert ticket.done()
                assert ticket.error is None  # drained means answered


@pytest.mark.skipif(not ProcessBackend(2).available(),
                    reason="process backend unavailable in this sandbox")
class TestRealWorkerKills:
    """Chaos on the process backend: real os._exit, real broken pools."""

    def test_killed_workers_retry_to_the_right_answer(self, tmp_path,
                                                      small_workload):
        lhs, rhs = small_workload
        path = str(tmp_path / "chaos.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            expected, __ = db.join("r", "s")
        chaos = ChaosInjector(
            ChaosConfig(worker_kill_rate=0.4), seed=5,
            registry=MetricsRegistry(),
        )
        service = QueryService(path, workers=2, backend="process",
                               chaos=chaos, registry=MetricsRegistry())
        service.start()
        try:
            chaos.arm()
            answered = 0
            from repro.errors import SetJoinError

            for __ in range(6):
                try:
                    pairs, __metrics = service.join("r", "s")
                except SetJoinError:
                    continue  # cleanly rejected: acceptable under chaos
                answered += 1
                assert pairs == expected  # never wrong
            chaos.disarm()
            assert answered > 0
        finally:
            service.stop()
        import multiprocessing

        for child in multiprocessing.active_children():
            child.join(timeout=5.0)
        assert multiprocessing.active_children() == []


class TestWALReplayAfterSIGKILL:
    """SIGKILL mid-service must leave the database recoverable."""

    def test_committed_work_survives_a_hard_kill(self, tmp_path,
                                                 small_workload):
        path = str(tmp_path / "killed.db")
        lhs, rhs = small_workload
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            expected, __ = db.join("r", "s")

        # The child runs the service, commits a relation through the
        # lane, prints a marker, then spins until SIGKILLed mid-flight.
        script = textwrap.dedent("""
            import sys, time
            from repro.service import QueryService
            service = QueryService(sys.argv[1], workers=2, backend="thread")
            service.start()
            service.create_relation("committed", [(1, [1, 2]), (2, [2, 3])])
            print("COMMITTED", flush=True)
            while True:  # keep joining so the kill lands mid-query
                service.submit("join", r="r", s="s")
                time.sleep(0.01)
        """)
        env = {**os.environ, "PYTHONPATH": SRC}
        child = subprocess.Popen(
            [sys.executable, "-c", script, path],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            marker = child.stdout.readline().strip()
            assert marker == "COMMITTED"
        finally:
            child.kill()  # SIGKILL: no drain, no close, no flush
            child.wait(timeout=30.0)
        assert child.returncode == -signal.SIGKILL

        # Recovery: the WAL replays, committed state is intact, and the
        # database still answers the join bit-identically.
        with SetJoinDatabase.open(path) as db:
            names = sorted(db.relation_names())
            assert "r" in names and "s" in names and "committed" in names
            assert db.probe("committed", [2]) == [1, 2]
            pairs, __ = db.join("r", "s")
            assert pairs == expected

    def test_kill_during_catalog_churn_never_corrupts(self, tmp_path):
        path = str(tmp_path / "churn.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("base", [(1, [1])])

        script = textwrap.dedent("""
            import sys
            from repro.service import QueryService
            service = QueryService(sys.argv[1], workers=1, backend="serial")
            service.start()
            print("READY", flush=True)
            n = 0
            while True:  # hammer the WAL with create/drop transactions
                n += 1
                service.create_relation(f"churn_{n}", [(1, [n])])
                service.drop_relation(f"churn_{n}")
        """)
        env = {**os.environ, "PYTHONPATH": SRC}
        child = subprocess.Popen(
            [sys.executable, "-c", script, path],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            assert child.stdout.readline().strip() == "READY"
            import time

            time.sleep(0.3)  # let some churn transactions through
        finally:
            child.kill()
            child.wait(timeout=30.0)

        # Either the last transaction committed or it rolled back —
        # both leave a consistent catalog with "base" present.
        with SetJoinDatabase.open(path) as db:
            assert "base" in db.relation_names()
            assert db.probe("base", [1]) == [1]
