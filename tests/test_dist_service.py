"""The query service in front of a sharded database: correct answers
under load and chaos, resharding through the admission lane."""

import pytest

from repro.database import SetJoinDatabase
from repro.dist import ShardedDatabase
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.service import LoadGenerator, QueryService, WorkloadMix


@pytest.fixture()
def expected(small_workload):
    lhs, rhs = small_workload
    with SetJoinDatabase.open() as db:
        db.create_relation("r", lhs)
        db.create_relation("s", rhs)
        pairs, __ = db.join("r", "s")
    return pairs


def sharded_service(shards=3, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backend", "thread")
    return QueryService(None, shards=shards, **kwargs)


class KillOnce:
    """A shard hook that kills exactly one worker, once — the smallest
    possible chaos schedule, so the retry ladder must fire exactly once
    and the answer must still come back right."""

    def __init__(self):
        self.armed = False
        self.kills = 0

    def arm(self):
        self.armed = True
        return self

    def __call__(self, spec):
        if self.armed:
            spec.chaos_kill = True
            self.armed = False
            self.kills += 1


class TestShardedService:
    def test_join_matches_single_database(self, small_workload, expected):
        lhs, rhs = small_workload
        with sharded_service() as service:
            service.create_relation("r", [(t.tid, t.elements) for t in lhs])
            service.create_relation("s", [(t.tid, t.elements) for t in rhs])
            pairs, metrics = service.join("r", "s")
            assert pairs == expected
            assert metrics.result_size == len(expected)
            stats = service.stats()
            assert stats["shards"] == 3

    def test_load_generator_with_reshard_mix(self, small_workload,
                                             expected):
        lhs, rhs = small_workload
        with sharded_service(queue_depth=64) as service:
            service.create_relation("r", [(t.tid, t.elements) for t in lhs])
            service.create_relation("s", [(t.tid, t.elements) for t in rhs])
            generator = LoadGenerator(
                service, "r", "s", qps=1000, seed=17,
                mix=WorkloadMix(join=0.4, probe=0.3, churn=0.15,
                                reshard=0.15),
                sleep=lambda seconds: None,
            ).prepare()
            report = generator.run(60)
        report.assert_no_wrong_answers()
        assert report.submitted == 60
        assert report.ok > 0

    def test_reshard_mix_requires_a_sharded_database(self, small_workload):
        lhs, rhs = small_workload
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            with QueryService(db, workers=1, backend="serial",
                              registry=MetricsRegistry()) as service:
                with pytest.raises(ConfigurationError, match="reshard"):
                    LoadGenerator(service, "r", "s",
                                  mix=WorkloadMix(reshard=0.5),
                                  sleep=lambda seconds: None)

    def test_reshard_through_the_lane(self, small_workload, expected):
        lhs, rhs = small_workload
        with sharded_service(shards=2) as service:
            service.create_relation("r", [(t.tid, t.elements) for t in lhs])
            service.create_relation("s", [(t.tid, t.elements) for t in rhs])
            assert service.reshard(5) == 5
            assert service.db.shard_ids == [0, 1, 2, 3, 4]
            pairs, __ = service.join("r", "s")
            assert pairs == expected

    def test_reshard_rejected_on_plain_database(self, small_workload):
        lhs, rhs = small_workload
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            with QueryService(db, workers=1, backend="serial",
                              registry=MetricsRegistry()) as service:
                with pytest.raises(ConfigurationError, match="sharded"):
                    service.reshard(3)

    def test_shards_conflicts_with_borrowed_database(self, small_workload):
        lhs, rhs = small_workload
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            with pytest.raises(ConfigurationError):
                QueryService(db, shards=2, registry=MetricsRegistry())


class TestKillOneShardWorker:
    def test_killed_worker_retries_to_the_right_answer(
        self, small_workload, expected
    ):
        lhs, rhs = small_workload
        chaos = KillOnce()
        with sharded_service(chaos=chaos, workers=2,
                             backend="thread") as service:
            service.create_relation("r", [(t.tid, t.elements) for t in lhs])
            service.create_relation("s", [(t.tid, t.elements) for t in rhs])
            chaos.arm()
            ticket = service.submit("join", r="r", s="s")
            pairs, __ = ticket.result(timeout=60.0)
        assert chaos.kills == 1  # the fault really landed on a shard
        assert ticket.attempts > 1  # the ladder retried past it
        assert pairs == expected  # and the answer is still exact

    def test_sharded_database_directly_with_kill(self, small_workload,
                                                 expected):
        """Same fault injected below the service: the coordinator
        surfaces the shard failure instead of returning partial pairs."""
        from repro.errors import SetJoinError

        lhs, rhs = small_workload
        chaos = KillOnce().arm()
        with ShardedDatabase.open(None, shards=3) as db:
            db.create_relation("r", [(t.tid, t.elements) for t in lhs])
            db.create_relation("s", [(t.tid, t.elements) for t in rhs])
            with pytest.raises(SetJoinError):
                db.join("r", "s", workers=2, backend="thread",
                        shard_hook=chaos)
            # the fault is one-shot, so the plain retry succeeds
            pairs, __ = db.join("r", "s", workers=2, backend="thread",
                                shard_hook=chaos)
        assert chaos.kills == 1
        assert pairs == expected
