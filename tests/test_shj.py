"""Tests for the main-memory Signature-Hash Join (SHJ)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sets import Relation, containment_pairs_nested_loop
from repro.core.shj import estimate_memory_bytes, shj_join
from repro.errors import ConfigurationError, MemoryLimitExceeded


class TestSHJ:
    def test_paper_example(self, paper_r, paper_s, paper_truth):
        result, metrics = shj_join(paper_r, paper_s, signature_bits=4)
        assert result == paper_truth
        assert metrics.algorithm == "SHJ"
        assert metrics.result_size == 3

    def test_probe_count_bounded_by_filter(self, small_workload):
        lhs, rhs = small_workload
        result, metrics = shj_join(lhs, rhs, signature_bits=10)
        assert result == containment_pairs_nested_loop(lhs, rhs)
        # Every probe hit is a signature-filter candidate; they can be far
        # fewer than the |R|x|S| comparisons a nested loop would do.
        assert metrics.candidates < len(lhs) * len(rhs)

    def test_signature_width_validation(self):
        relation = Relation.from_sets([{1}])
        with pytest.raises(ConfigurationError):
            shj_join(relation, relation, signature_bits=0)
        with pytest.raises(ConfigurationError):
            shj_join(relation, relation, signature_bits=30)

    def test_memory_budget_enforced(self, small_workload):
        """SHJ is main-memory only — the limitation motivating LSJ/DCJ."""
        lhs, rhs = small_workload
        with pytest.raises(MemoryLimitExceeded):
            shj_join(lhs, rhs, memory_budget_bytes=1_000)
        # A generous budget works.
        result, __ = shj_join(lhs, rhs, memory_budget_bytes=10**9)
        assert result == containment_pairs_nested_loop(lhs, rhs)

    def test_memory_estimate_scales_with_elements(self):
        small = Relation.from_sets([{1}] * 10)
        large = Relation.from_sets([set(range(100))] * 10)
        assert estimate_memory_bytes(large, large) > estimate_memory_bytes(small, small)

    def test_empty_relations(self):
        empty = Relation()
        other = Relation.from_sets([{1, 2}])
        assert shj_join(empty, other)[0] == set()
        assert shj_join(other, empty)[0] == set()


@settings(max_examples=40, deadline=None)
@given(
    r_sets=st.lists(st.frozensets(st.integers(0, 200), max_size=8), max_size=15),
    s_sets=st.lists(st.frozensets(st.integers(0, 200), max_size=12), max_size=15),
    bits=st.integers(min_value=4, max_value=12),
)
def test_shj_equals_brute_force(r_sets, s_sets, bits):
    """Property: SHJ computes exactly the containment join."""
    lhs = Relation.from_sets(r_sets)
    rhs = Relation.from_sets(s_sets)
    result, __ = shj_join(lhs, rhs, signature_bits=bits)
    assert result == containment_pairs_nested_loop(lhs, rhs)
