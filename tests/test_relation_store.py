"""Tests for the tid-keyed relation store."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.pager import InMemoryDiskManager
from repro.storage.relation_store import RelationStore


@pytest.fixture()
def pool():
    return BufferPool(InMemoryDiskManager(1024), capacity=64)


@pytest.fixture()
def store(pool):
    return RelationStore.create(pool, name="R")


class TestRelationStore:
    def test_insert_and_fetch(self, store):
        store.insert(7, {1, 2, 3}, b"payload")
        assert store.fetch(7) == (frozenset({1, 2, 3}), b"payload")
        assert store.fetch_set(7) == frozenset({1, 2, 3})

    def test_fetch_missing(self, store):
        assert store.fetch(1) is None
        assert store.fetch_set(1) is None

    def test_len_and_contains(self, store):
        store.insert(1, {1})
        store.insert(2, {2})
        store.insert(1, {9})  # overwrite, not a new tuple
        assert len(store) == 2
        assert 1 in store
        assert 3 not in store
        assert store.fetch_set(1) == frozenset({9})

    def test_bulk_load_with_payload_size(self, store):
        count = store.bulk_load([(i, {i, i + 1}) for i in range(40)], payload_size=16)
        assert count == 40
        assert len(store) == 40
        __, payload = store.fetch(5)
        assert payload == bytes(16)

    def test_scan_in_tid_order(self, store):
        for tid in (30, 10, 20):
            store.insert(tid, {tid})
        assert [tid for tid, __, __ in store.scan()] == [10, 20, 30]
        assert list(store.tids()) == [10, 20, 30]

    def test_fetch_many_ignores_missing_and_dedups(self, store):
        store.insert(1, {1})
        store.insert(2, {2})
        result = store.fetch_many([2, 1, 2, 99])
        assert result == {1: frozenset({1}), 2: frozenset({2})}

    def test_reopen_by_meta_page(self, pool):
        store = RelationStore.create(pool, name="R")
        store.bulk_load([(i, {i}) for i in range(20)])
        pool.flush_all()
        reopened = RelationStore(pool, store.meta_page_id, name="R2")
        assert len(reopened) == 20
        assert reopened.fetch_set(11) == frozenset({11})

    def test_create_sorted_bulk_load(self, pool):
        rows = [(tid, {tid, tid * 3}) for tid in range(200)]
        store = RelationStore.create_sorted(pool, rows, payload_size=8,
                                            name="bulk")
        assert len(store) == 200
        assert store.fetch_set(77) == frozenset({77, 231})
        assert list(store.tids()) == list(range(200))
        __, payload = store.fetch(5)
        assert payload == bytes(8)

    def test_create_sorted_large_sets_chunked(self, pool):
        rows = [(0, set(range(0, 4000, 2))), (1, {9})]
        store = RelationStore.create_sorted(pool, rows)
        assert store.fetch_set(0) == frozenset(range(0, 4000, 2))
        assert store.fetch_set(1) == frozenset({9})

    def test_create_sorted_rejects_unsorted(self, pool):
        from repro.errors import BTreeError

        with pytest.raises(BTreeError):
            RelationStore.create_sorted(pool, [(5, {1}), (2, {1})])

    def test_large_sets_roundtrip(self, store):
        elements = set(range(0, 5000, 7))
        store.insert(1, elements, b"p" * 100)
        assert store.fetch_set(1) == frozenset(elements)
