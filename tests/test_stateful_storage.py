"""Stateful property tests (hypothesis rule-based machines) for storage.

These drive the B-tree and the buffer pool through arbitrary interleaved
operation sequences, checking after every step that observable behaviour
matches a trivial in-memory model — the strongest correctness net we have
over the storage engine.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.pager import InMemoryDiskManager

KEYS = st.integers(min_value=0, max_value=120).map(
    lambda value: value.to_bytes(4, "big")
)
VALUES = st.binary(max_size=48)


class BTreeMachine(RuleBasedStateMachine):
    """The B-tree must behave exactly like a sorted dict, always."""

    def __init__(self):
        super().__init__()
        disk = InMemoryDiskManager(256)
        self.pool = BufferPool(disk, capacity=8)
        self.tree = BTree.create(self.pool)
        self.model: dict[bytes, bytes] = {}

    @rule(key=KEYS, value=VALUES)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def lookup(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @rule(lo=KEYS, hi=KEYS)
    def range_scan(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        got = list(self.tree.scan(lo, hi))
        expected = sorted(
            (key, value) for key, value in self.model.items() if lo <= key < hi
        )
        assert got == expected

    @rule()
    def reopen(self):
        """Flushing and reopening from the meta page must lose nothing."""
        self.pool.flush_all()
        self.tree = BTree(self.pool, self.tree.meta_page_id)

    @invariant()
    def full_scan_matches_model(self):
        assert list(self.tree.items()) == sorted(self.model.items())


class BufferPoolMachine(RuleBasedStateMachine):
    """The pool must never lose a committed write, whatever the sequence."""

    pages = Bundle("pages")

    def __init__(self):
        super().__init__()
        self.disk = InMemoryDiskManager(64)
        self.pool = BufferPool(self.disk, capacity=3)
        self.model: dict[int, int] = {}

    @rule(target=pages)
    def new_page(self):
        frame = self.pool.new_page()
        self.pool.unpin(frame.page_id, dirty=True)
        self.model[frame.page_id] = 0
        return frame.page_id

    @rule(page_id=pages, value=st.integers(0, 255))
    def write(self, page_id, value):
        frame = self.pool.fetch(page_id)
        frame.data[0] = value
        self.pool.unpin(page_id, dirty=True)
        self.model[page_id] = value

    @rule(page_id=pages)
    def read(self, page_id):
        frame = self.pool.fetch(page_id)
        try:
            assert frame.data[0] == self.model[page_id]
        finally:
            self.pool.unpin(page_id)

    @rule()
    def flush(self):
        self.pool.flush_all()

    @rule()
    def cold_restart(self):
        """Flush + drop simulates a restart: disk must hold everything."""
        self.pool.flush_all()
        self.pool.drop_all()
        for page_id, value in self.model.items():
            assert self.disk.read_page(page_id)[0] == value


TestBTreeMachine = BTreeMachine.TestCase
TestBTreeMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestBufferPoolMachine = BufferPoolMachine.TestCase
TestBufferPoolMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
