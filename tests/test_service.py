"""Query service lifecycle, deadlines, drift, and HTTP front end."""

import json
import urllib.error
import urllib.request

import pytest

from repro.database import SetJoinDatabase
from repro.errors import (
    AdmissionRejected,
    ConfigurationError,
    DeadlineExceeded,
    ServiceUnavailable,
)
from repro.obs.registry import MetricsRegistry
from repro.service import (
    ChaosConfig,
    ChaosInjector,
    QueryService,
    ServiceServer,
    ServiceState,
)


@pytest.fixture()
def loaded_db(small_workload):
    lhs, rhs = small_workload
    with SetJoinDatabase.open() as db:
        db.create_relation("r", lhs)
        db.create_relation("s", rhs)
        yield db


def make_service(db, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backend", "thread")
    return QueryService(db, **kwargs)


class TestLifecycle:
    def test_submit_before_start_is_unavailable(self, loaded_db):
        service = make_service(loaded_db)
        with pytest.raises(ServiceUnavailable, match="starting"):
            service.submit("probe", name="s", elements=[1])

    def test_start_stop_states(self, loaded_db):
        service = make_service(loaded_db)
        assert service.state == ServiceState.STARTING
        service.start()
        assert service.ready
        service.stop()
        assert service.state == ServiceState.STOPPED
        with pytest.raises(ServiceUnavailable):
            service.submit("probe", name="s", elements=[1])

    def test_stop_is_idempotent(self, loaded_db):
        service = make_service(loaded_db).start()
        service.stop()
        service.stop()

    def test_double_start_rejected(self, loaded_db):
        service = make_service(loaded_db).start()
        try:
            with pytest.raises(ConfigurationError, match="cannot start"):
                service.start()
        finally:
            service.stop()

    def test_borrowed_db_stays_open_after_stop(self, loaded_db):
        service = make_service(loaded_db).start()
        service.stop()
        assert sorted(loaded_db.relation_names()) == ["r", "s"]

    def test_owned_db_closed_on_stop(self, tmp_path, small_workload):
        lhs, rhs = small_workload
        path = str(tmp_path / "owned.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        service = make_service(path).start()
        try:
            assert len(service.probe("s", [1, 2])) >= 0
        finally:
            service.stop()
        # Reopenable: the service closed its database cleanly.
        with SetJoinDatabase.open(path) as db:
            assert sorted(db.relation_names()) == ["r", "s"]

    def test_context_manager(self, loaded_db):
        with make_service(loaded_db) as service:
            assert service.ready
        assert service.state == ServiceState.STOPPED

    def test_wait_wakes_on_stop(self, loaded_db):
        import threading

        service = make_service(loaded_db).start()
        woke = []
        waiter = threading.Thread(
            target=lambda: woke.append(service.wait(timeout=10.0))
        )
        waiter.start()
        service.stop()
        waiter.join(timeout=10.0)
        assert woke == [True]


class TestQueries:
    def test_join_matches_direct_database_join(self, loaded_db):
        expected, __ = loaded_db.join("r", "s")
        with make_service(loaded_db) as service:
            pairs, metrics = service.join("r", "s")
        assert pairs == expected
        assert metrics.algorithm in ("DCJ", "PSJ", "LSJ", "SHJ")

    def test_probe_matches_direct_probe(self, loaded_db):
        with make_service(loaded_db) as service:
            pairs, __ = service.join("r", "s")
            # Probe with a stored R set: its join partners must show up.
            r_sets = {tid: elements for tid, elements, __ in
                      loaded_db.get_store("r").scan()}
            some_r, partner = next(iter(sorted(pairs)))
            tids = service.probe("s", r_sets[some_r])
        assert partner in tids

    def test_create_and_drop_through_the_lane(self, loaded_db):
        with make_service(loaded_db) as service:
            count = service.create_relation(
                "scratch", [(1, [1, 2]), (2, [3])]
            )
            assert count == 2
            assert service.probe("scratch", [3]) == [2]
            service.drop_relation("scratch")
        assert "scratch" not in loaded_db.relation_names()

    def test_unknown_kind_is_rejected_typed(self, loaded_db):
        with make_service(loaded_db) as service:
            ticket = service.submit("vacuum")
            with pytest.raises(ConfigurationError, match="unknown query"):
                ticket.result(timeout=10.0)

    def test_bad_relation_name_is_rejected_typed(self, loaded_db):
        with make_service(loaded_db) as service:
            with pytest.raises(ConfigurationError, match="no relation"):
                service.probe("nope", [1])

    def test_lane_survives_a_failed_query(self, loaded_db):
        with make_service(loaded_db) as service:
            with pytest.raises(ConfigurationError):
                service.probe("nope", [1])
            assert service.probe("s", [1]) is not None  # still alive

    def test_completed_counter_advances(self, loaded_db):
        registry = MetricsRegistry()
        with make_service(loaded_db, registry=registry) as service:
            service.probe("s", [1])
            service.probe("s", [2])
        snapshot = registry.snapshot()
        assert snapshot["setjoin_service_completed_total"]["value"] == 2
        assert snapshot["setjoin_service_query_seconds"]["count"] == 2


class TestDeadlinesAndShedding:
    def test_deadline_expired_while_queued(self, loaded_db):
        # No execution lane: set READY by hand so submissions park in
        # the queue, then let the deadline lapse before executing.
        service = make_service(loaded_db, default_deadline=0.005)
        service._set_state(ServiceState.READY)
        ticket = service.submit("probe", name="s", elements=[1])
        import time

        time.sleep(0.02)
        taken = service._queue.take(timeout=0.1)
        assert taken is ticket
        with pytest.raises(DeadlineExceeded, match="deadline elapsed"):
            service._execute(taken)

    def test_nonpositive_deadline_rejected_at_submit(self, loaded_db):
        with make_service(loaded_db) as service:
            with pytest.raises(ConfigurationError, match="deadline"):
                service.submit("probe", deadline=-1.0, name="s", elements=[])

    def test_full_queue_sheds_with_429_class_error(self, loaded_db):
        service = make_service(loaded_db, queue_depth=2)
        service._set_state(ServiceState.READY)  # no lane: nothing drains
        service.submit("probe", name="s", elements=[1])
        service.submit("probe", name="s", elements=[2])
        with pytest.raises(AdmissionRejected, match="queue full"):
            service.submit("probe", name="s", elements=[3])

    def test_nondraining_stop_rejects_queued_queries(self, loaded_db):
        service = make_service(loaded_db, queue_depth=8)
        service._set_state(ServiceState.READY)
        tickets = [service.submit("probe", name="s", elements=[i])
                   for i in range(3)]
        service.stop(drain=False)
        for ticket in tickets:
            assert ticket.done()
            with pytest.raises(ServiceUnavailable, match="draining"):
                ticket.result(timeout=0.1)

    def test_draining_stop_answers_everything_admitted(self, loaded_db):
        service = make_service(loaded_db).start()
        tickets = [service.submit("probe", name="s", elements=[i])
                   for i in range(5)]
        service.stop(drain=True)
        for ticket in tickets:
            assert ticket.result(timeout=10.0) is not None


class TestDriftUnderTraffic:
    def test_joins_append_drift_records(self, tmp_path, loaded_db):
        drift = str(tmp_path / "drift.jsonl")
        with make_service(loaded_db, drift_path=drift) as service:
            service.join("r", "s")
            service.join("r", "s")
        from repro.obs.drift import read_drift_jsonl

        records = read_drift_jsonl(drift)
        assert len(records) == 2
        assert records[0].predicted["seconds"] is not None
        assert records[0].observed["comparisons"] > 0

    def test_startup_rotation_writes_fingerprint_meta(self, tmp_path,
                                                      loaded_db):
        import os

        drift = str(tmp_path / "drift.jsonl")
        with make_service(loaded_db, drift_path=drift) as service:
            assert service.drift_rotation == {
                "archived": False, "rotated": False, "kept": 0, "dropped": 0,
            }
        assert os.path.exists(drift + ".meta.json")

    def test_explicit_algorithm_skips_drift(self, tmp_path, loaded_db):
        import os

        drift = str(tmp_path / "drift.jsonl")
        with make_service(loaded_db, drift_path=drift) as service:
            service.join("r", "s", algorithm="PSJ", num_partitions=8)
        # Only auto-planned joins have a prediction to compare against.
        assert not os.path.exists(drift)


class TestChaosHookWiring:
    def test_chaos_kill_is_retried_transparently(self, loaded_db):
        chaos = ChaosInjector(
            ChaosConfig(worker_kill_rate=1.0), seed=1,
            registry=MetricsRegistry(),
        )
        expected, __ = loaded_db.join("r", "s")
        with make_service(loaded_db, chaos=chaos) as service:
            # Rate 1.0 kills every attempt: exhausts retries and fails.
            chaos.arm()
            from repro.errors import SetJoinError

            with pytest.raises(SetJoinError):
                service.join("r", "s")
            chaos.disarm()
            pairs, __ = service.join("r", "s")
        assert pairs == expected
        assert chaos.kills >= 3  # one per retry attempt


class TestHTTPFrontEnd:
    @pytest.fixture()
    def served(self, loaded_db):
        registry = MetricsRegistry()
        service = make_service(loaded_db, registry=registry).start()
        server = ServiceServer(service, port=0, registry=registry).start()
        yield service, server
        server.stop()
        if service.state != ServiceState.STOPPED:
            service.stop()

    def post(self, url, payload):
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read())

    def get(self, url):
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, json.loads(response.read())

    def test_join_over_http(self, served, loaded_db):
        service, server = served
        expected, __ = loaded_db.join("r", "s")
        status, body = self.post(server.url + "/join", {"r": "r", "s": "s"})
        assert status == 200
        assert {tuple(pair) for pair in body["pairs"]} == expected
        assert body["metrics"]["signature_comparisons"] > 0

    def test_probe_over_http(self, served):
        service, server = served
        status, body = self.post(
            server.url + "/probe", {"name": "s", "elements": [1]}
        )
        assert status == 200
        assert body["tids"] == service.probe("s", [1])

    def test_readyz_follows_lifecycle(self, served):
        service, server = served
        status, body = self.get(server.url + "/readyz")
        assert status == 200 and body["state"] == "ready"
        service.stop()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(server.url + "/readyz")
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["state"] == "stopped"

    def test_healthz_stays_alive_while_draining(self, served):
        service, server = served
        service.stop()
        status, body = self.get(server.url + "/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_missing_field_is_400(self, served):
        __, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server.url + "/join", {"r": "r"})
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"] == \
            "ConfigurationError"

    def test_unknown_relation_is_400(self, served):
        __, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server.url + "/probe", {"name": "ghost",
                                              "elements": [1]})
        assert excinfo.value.code == 400

    def test_invalid_json_is_400(self, served):
        __, server = served
        request = urllib.request.Request(
            server.url + "/join", data=b"not json",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400

    def test_unknown_post_route_is_404(self, served):
        __, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server.url + "/vacuum", {})
        assert excinfo.value.code == 404

    def test_stopped_service_maps_to_503(self, served):
        service, server = served
        service.stop()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server.url + "/probe", {"name": "s", "elements": [1]})
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["error"] == \
            "ServiceUnavailable"

    def test_shed_maps_to_429(self, loaded_db):
        registry = MetricsRegistry()
        service = make_service(loaded_db, queue_depth=1, registry=registry)
        service._set_state(ServiceState.READY)  # no lane: queue stays full
        service.submit("probe", name="s", elements=[1])
        server = ServiceServer(service, port=0, registry=registry).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.post(server.url + "/probe",
                          {"name": "s", "elements": [2]})
            assert excinfo.value.code == 429
            assert json.loads(excinfo.value.read())["error"] == \
                "AdmissionRejected"
        finally:
            server.stop()
            service.stop(drain=False)

    def test_metrics_endpoint_inherited(self, served):
        service, server = served
        service.probe("s", [1])
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=10.0) as response:
            body = response.read().decode()
        assert "setjoin_service_completed_total" in body
        assert "setjoin_service_queue_depth" in body


class TestHTTPDebugEndpoints:
    @pytest.fixture()
    def served(self, loaded_db):
        registry = MetricsRegistry()
        service = make_service(
            loaded_db, registry=registry, flight_recorder=8,
            profile_hz=200.0,
        ).start()
        server = ServiceServer(service, port=0, registry=registry).start()
        yield service, server
        server.stop()
        if service.state != ServiceState.STOPPED:
            service.stop()

    def get(self, url):
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, json.loads(response.read())

    def post_join(self, server, r="r", s="s"):
        request = urllib.request.Request(
            server.url + "/join",
            data=json.dumps({"r": r, "s": s}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read())

    def test_debug_queries_lists_recent(self, served):
        __, server = served
        self.post_join(server)
        status, body = self.get(server.url + "/debug/queries")
        assert status == 200
        entry = body["queries"][0]
        assert entry["kind"] == "join"
        assert entry["status"] == "ok"
        assert entry["postmortem"] is False

    def test_debug_query_returns_full_evidence(self, served):
        __, server = served
        self.post_join(server)
        __, listing = self.get(server.url + "/debug/queries")
        query_id = listing["queries"][0]["query_id"]
        status, entry = self.get(server.url + f"/debug/query/{query_id}")
        assert status == 200
        assert entry["query_id"] == query_id
        assert entry["plan"]["algorithm"]
        assert [e["event"] for e in entry["timeline"]].count("attempt") >= 1
        assert any(span["name"] == "query" for span in entry["spans"])

    def test_failed_query_postmortem_over_http(self, served):
        __, server = served
        with pytest.raises(urllib.error.HTTPError):
            self.post_join(server, r="ghost")
        __, listing = self.get(server.url + "/debug/queries")
        entry = listing["queries"][0]
        assert entry["status"] != "ok"
        assert entry["postmortem"] is True
        __, postmortem = self.get(
            server.url + f"/debug/query/{entry['query_id']}"
        )
        assert postmortem["postmortem_reason"] == entry["status"]
        assert postmortem["error"]["type"]
        assert postmortem["environment"]["platform"]

    def test_debug_profile_reports_attribution(self, served):
        __, server = served
        self.post_join(server)
        status, report = self.get(server.url + "/debug/profile")
        assert status == 200
        assert report["hz"] == 200.0
        assert report["samples"] >= 0
        assert "phases" in report and "overhead" in report

    def test_disabled_layers_are_404(self, loaded_db):
        registry = MetricsRegistry()
        service = make_service(loaded_db, registry=registry).start()
        server = ServiceServer(service, port=0, registry=registry).start()
        try:
            for route in ("/debug/queries", "/debug/query/1",
                          "/debug/profile"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    self.get(server.url + route)
                assert excinfo.value.code == 404
        finally:
            server.stop()
            service.stop()

    def test_bad_query_id_is_400(self, served):
        __, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(server.url + "/debug/query/nope")
        assert excinfo.value.code == 400

    def test_unrecorded_query_id_is_404(self, served):
        __, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(server.url + "/debug/query/999999")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"] == \
            "query 999999 not recorded"

    def test_debug_routes_honor_bearer_token(self, loaded_db):
        registry = MetricsRegistry()
        service = make_service(
            loaded_db, registry=registry, flight_recorder=8,
        ).start()
        server = ServiceServer(
            service, port=0, registry=registry, token="hunter2",
        ).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.get(server.url + "/debug/queries")
            assert excinfo.value.code == 401
            request = urllib.request.Request(
                server.url + "/debug/queries",
                headers={"Authorization": "Bearer hunter2"},
            )
            with urllib.request.urlopen(request, timeout=10.0) as response:
                assert response.status == 200
        finally:
            server.stop()
            service.stop()

    def test_debug_workload_reports_heavy_hitters(self, served):
        __, server = served
        self.post_join(server)
        self.post_join(server)
        status, report = self.get(server.url + "/debug/workload")
        assert status == 200
        assert report["queries"] == 2
        assert report["fingerprints"] == 1
        (group,) = report["top"]["wall"]
        assert group["kind"] == "join" and group["queries"] == 2
        assert report["reconciliation"]["exact"] is True

    def test_debug_workload_honors_top_parameter(self, served):
        service, server = served
        self.post_join(server)
        service.probe("s", [1])
        __, wide = self.get(server.url + "/debug/workload?top=2")
        __, narrow = self.get(server.url + "/debug/workload?top=1")
        assert len(wide["top"]["wall"]) == 2
        assert len(narrow["top"]["wall"]) == 1

    def test_debug_workload_bad_top_is_400(self, served):
        __, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(server.url + "/debug/workload?top=banana")
        assert excinfo.value.code == 400

    def test_debug_workload_disabled_is_404(self, loaded_db):
        registry = MetricsRegistry()
        service = make_service(
            loaded_db, registry=registry, ledger=False,
        ).start()
        server = ServiceServer(service, port=0, registry=registry).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.get(server.url + "/debug/workload")
            assert excinfo.value.code == 404
        finally:
            server.stop()
            service.stop()

    def test_debug_slo_reports_windows_and_burn(self, loaded_db):
        registry = MetricsRegistry()
        service = make_service(
            loaded_db, registry=registry, slo={"join": 30.0},
        ).start()
        server = ServiceServer(service, port=0, registry=registry).start()
        try:
            self.post_join(server)
            status, report = self.get(server.url + "/debug/slo")
            assert status == 200
            assert report["join"]["latency_objective"] == 30.0
            assert "windows" in report["join"]
            assert "alerting" in report["join"]
        finally:
            server.stop()
            service.stop()

    def test_debug_slo_disabled_is_404(self, served):
        __, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(server.url + "/debug/slo")
        assert excinfo.value.code == 404
