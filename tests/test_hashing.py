"""Tests for the monotone boolean hash families."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (
    BitstringHashFamily,
    ExplicitHashFamily,
    PrimeHashFamily,
    make_family,
    optimal_bitstring_length,
    optimal_firing_probability,
    optimal_no_fire_probability,
    paper_example_family,
    paper_table4_family,
    primes,
    step_comparison_factor,
)
from repro.errors import ConfigurationError

subset_pairs = st.tuples(
    st.frozensets(st.integers(0, 100_000), max_size=30),
    st.frozensets(st.integers(0, 100_000), max_size=10),
).map(lambda pair: (pair[0], pair[0] | pair[1]))


class TestOptimalValues:
    def test_no_fire_probability(self):
        assert optimal_no_fire_probability(1.0) == 0.5
        assert optimal_no_fire_probability(2.0) == pytest.approx(2 / 3)
        with pytest.raises(ConfigurationError):
            optimal_no_fire_probability(0)

    def test_firing_probability_complementary(self):
        assert optimal_firing_probability(1.0) == 0.5
        assert optimal_firing_probability(3.0) == pytest.approx(0.25)

    def test_paper_b_value(self):
        # θ_R=50, θ_S=100 -> b ≈ 124 (Section 3)
        assert optimal_bitstring_length(50, 100) == pytest.approx(124, abs=1)

    def test_step_factor_minimized_at_q_star(self):
        for lam in (0.5, 1.0, 2.0, 5.0):
            q_star = optimal_no_fire_probability(lam)
            best = step_comparison_factor(q_star, lam)
            for q in (0.05, 0.25, 0.5, 0.75, 0.95):
                assert best <= step_comparison_factor(q, lam) + 1e-12

    def test_step_factor_edges(self):
        # q=0: every function fires for R -> factor 1 (no pruning).
        assert step_comparison_factor(0.0, 1.0) == 1.0
        assert step_comparison_factor(1.0, 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            step_comparison_factor(1.5, 1.0)


class TestBitstringFamily:
    def test_firing_probability_formula(self):
        family = BitstringHashFamily(200, num_functions=8)
        assert family.firing_probability(100) == pytest.approx(0.394, abs=0.01)

    def test_mask_width(self):
        family = BitstringHashFamily(64, num_functions=6)
        assert family.num_functions == 6
        mask = family.evaluate(range(1000))
        assert mask == (1 << 6) - 1  # dense set fires everything

    def test_empty_set_never_fires(self):
        family = BitstringHashFamily(64, num_functions=6)
        assert family.evaluate(frozenset()) == 0

    def test_evaluate_one(self):
        family = BitstringHashFamily(8)  # one function per bit position
        assert family.evaluate_one(3, {3}) is True
        assert family.evaluate_one(2, {3}) is False
        with pytest.raises(ConfigurationError):
            family.evaluate_one(99, {1})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BitstringHashFamily(0)
        with pytest.raises(ConfigurationError):
            BitstringHashFamily(4, num_functions=10)
        with pytest.raises(ConfigurationError):
            BitstringHashFamily(8, indices=[1, 1])
        with pytest.raises(ConfigurationError):
            BitstringHashFamily(8, indices=[9])

    def test_optimal_constructor(self):
        family = BitstringHashFamily.optimal(50, 100, num_functions=7)
        assert family.num_functions == 7
        assert family.bitstring_length == pytest.approx(124, abs=1)

    @settings(max_examples=60)
    @given(subset_pairs)
    def test_monotone(self, pair):
        subset, superset = pair
        family = BitstringHashFamily(37, num_functions=5)
        assert family.evaluate(subset) & ~family.evaluate(superset) == 0


class TestPrimeFamily:
    def test_paper_table3_values(self, paper_r, paper_s):
        """Table 3's family evaluated on the running example.

        Table 4 prints h3(b)=0, but b={10,13} contains 10 (divisible by 5),
        so the definition fires — the known typo in the paper.
        """
        family = paper_example_family()
        values_r = [family.evaluate(row.elements) for row in paper_r]
        values_s = [family.evaluate(row.elements) for row in paper_s]
        assert values_r == [0b100, 0b101, 0b010, 0b001]  # b differs from Table 4
        assert values_s == [0b100, 0b101, 0b010, 0b011]

    def test_disjointness_enforced(self):
        with pytest.raises(ConfigurationError):
            PrimeHashFamily([(2, 3), (3, 5)])
        with pytest.raises(ConfigurationError):
            PrimeHashFamily([()])
        with pytest.raises(ConfigurationError):
            PrimeHashFamily([(1,)])
        with pytest.raises(ConfigurationError):
            PrimeHashFamily([])

    def test_target_probability_construction(self):
        family = PrimeHashFamily.with_target_probability(
            theta_r=25, num_functions=5, firing_probability=1 / 3
        )
        assert family.num_functions == 5
        for index in range(5):
            estimated = family.firing_probability(index, 25)
            assert estimated == pytest.approx(1 / 3, abs=0.12)
        with pytest.raises(ConfigurationError):
            PrimeHashFamily.with_target_probability(10, 2, 1.5)

    @settings(max_examples=60)
    @given(subset_pairs)
    def test_monotone(self, pair):
        subset, superset = pair
        family = paper_example_family()
        assert family.evaluate(subset) & ~family.evaluate(superset) == 0


class TestExplicitFamily:
    def test_table4_masks(self):
        family = paper_table4_family()
        assert family.evaluate({10, 13}) == 0b001  # the paper's printed value
        with pytest.raises(ConfigurationError):
            family.evaluate({999})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExplicitHashFamily({}, num_functions=0)


class TestFactoryAndPrimes:
    def test_make_family_kinds(self):
        bitstring = make_family("bitstring", 5, 50, 100)
        assert isinstance(bitstring, BitstringHashFamily)
        prime = make_family("primes", 3, 50, 100)
        assert isinstance(prime, PrimeHashFamily)
        with pytest.raises(ConfigurationError):
            make_family("md5", 3, 50, 100)
        with pytest.raises(ConfigurationError):
            make_family("bitstring", 0, 50, 100)

    def test_primes_stream(self):
        stream = primes()
        assert [next(stream) for __ in range(10)] == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
