"""Matrix generation and content-hashed run-ID stability."""

import os
import subprocess
import sys

from repro.ablate import BASELINE_KNOBS, all_components, build_matrix, run_id_for


class TestMatrixShape:
    def test_baseline_plus_one_variant_per_run(self):
        specs = build_matrix(scale=0.5)
        variants = sum(
            len(component.variants) for component in all_components())
        assert len(specs) == 1 + variants
        assert specs[0].component is None
        assert specs[0].name == "baseline"
        for spec in specs[1:]:
            overrides = {
                knob for knob, value in spec.knobs.items()
                if BASELINE_KNOBS[knob] != value
            }
            component = next(
                c for c in all_components() if c.name == spec.component)
            assert overrides == set(component.variants[spec.variant]), (
                f"{spec.name} is not a clean one-component diff"
            )

    def test_component_filter_keeps_baseline(self):
        specs = build_matrix(components=["wal"], scale=0.5)
        assert [spec.name for spec in specs] == ["baseline", "wal:off"]

    def test_run_ids_unique(self):
        specs = build_matrix(scale=0.5)
        ids = [spec.run_id for spec in specs]
        assert len(set(ids)) == len(ids)


class TestRunIdStability:
    def test_same_config_same_id(self):
        knobs = dict(BASELINE_KNOBS)
        assert run_id_for(knobs, 0.5, 11) == run_id_for(knobs, 0.5, 11)

    def test_key_order_does_not_matter(self):
        knobs = dict(BASELINE_KNOBS)
        reordered = dict(reversed(list(knobs.items())))
        assert run_id_for(knobs, 0.5, 11) == run_id_for(reordered, 0.5, 11)

    def test_any_knob_change_changes_id(self):
        base = run_id_for(dict(BASELINE_KNOBS), 0.5, 11)
        for knob, value in BASELINE_KNOBS.items():
            changed = dict(BASELINE_KNOBS)
            if isinstance(value, bool):
                changed[knob] = not value
            elif isinstance(value, (int, float)):
                changed[knob] = value + 1
            else:
                changed[knob] = value + "-x"
            assert run_id_for(changed, 0.5, 11) != base, knob

    def test_scale_seed_and_suite_feed_the_id(self):
        knobs = dict(BASELINE_KNOBS)
        base = run_id_for(knobs, 0.5, 11)
        assert run_id_for(knobs, 0.25, 11) != base
        assert run_id_for(knobs, 0.5, 12) != base
        assert run_id_for(knobs, 0.5, 11, suite="other") != base

    def test_stable_across_processes(self):
        """The committed report's IDs must mean the same thing on CI."""
        specs = build_matrix(scale=0.5, seed=11)
        expected = ",".join(spec.run_id for spec in specs)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # PYTHONHASHSEED unset → a fresh interpreter uses a different
        # hash seed, which is exactly what the content hash must survive.
        env.pop("PYTHONHASHSEED", None)
        result = subprocess.run(
            [sys.executable, "-c",
             "from repro.ablate import build_matrix;"
             "print(','.join(s.run_id for s in"
             " build_matrix(scale=0.5, seed=11)))"],
            env=env, capture_output=True, text=True, check=True,
        )
        assert result.stdout.strip() == expected
