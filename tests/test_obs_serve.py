"""Tests for the live /metrics endpoint (repro.obs.serve).

Every server binds port 0 (ephemeral) so tests never collide with a
real scrape target or with each other.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.serve import MetricsServer, serve_metrics


def fetch(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode()


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("setjoin_joins_total", "Completed joins").inc(3)
    registry.gauge("setjoin_last_buffer_hit_rate", "Hit rate").set(0.75)
    return registry


class TestMetricsServer:
    def test_metrics_endpoint_serves_prometheus_text(self, registry):
        with MetricsServer(port=0, registry=registry) as server:
            status, headers, body = fetch(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "setjoin_joins_total 3" in body
        assert "setjoin_last_buffer_hit_rate 0.75" in body

    def test_scrape_sees_updates_without_restart(self, registry):
        with MetricsServer(port=0, registry=registry) as server:
            __, __, before = fetch(server.url + "/metrics")
            registry.counter("setjoin_joins_total", "Completed joins").inc()
            __, __, after = fetch(server.url + "/metrics")
        assert "setjoin_joins_total 3" in before
        assert "setjoin_joins_total 4" in after

    def test_healthz(self, registry):
        with MetricsServer(port=0, registry=registry) as server:
            status, __, body = fetch(server.url + "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok", "service": "setjoin"}

    def test_unknown_path_is_404_with_endpoint_list(self, registry):
        with MetricsServer(port=0, registry=registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url + "/nope")
            document = json.loads(excinfo.value.read().decode())
        assert excinfo.value.code == 404
        assert document["endpoints"] == ["/metrics", "/healthz"]

    def test_port_zero_resolves_after_start(self, registry):
        server = MetricsServer(port=0, registry=registry)
        assert server.port == 0
        try:
            server.start()
            assert server.port != 0
            assert str(server.port) in server.url
            assert server.running
        finally:
            server.stop()
        assert not server.running

    def test_stop_is_idempotent_and_releases_the_port(self, registry):
        server = MetricsServer(port=0, registry=registry).start()
        server.stop()
        server.stop()  # second stop is a no-op
        # The instance can be started again after a full stop.
        server.start()
        try:
            status, __, __ = fetch(server.url + "/healthz")
            assert status == 200
        finally:
            server.stop()

    def test_double_start_rejected(self, registry):
        server = MetricsServer(port=0, registry=registry).start()
        try:
            with pytest.raises(ConfigurationError, match="already running"):
                server.start()
        finally:
            server.stop()

    def test_invalid_port_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid port"):
            MetricsServer(port=-1)
        with pytest.raises(ConfigurationError, match="invalid port"):
            MetricsServer(port=70_000)

    def test_serve_metrics_helper_starts_immediately(self, registry):
        server = serve_metrics(port=0, registry=registry)
        try:
            assert server.running
            __, __, body = fetch(server.url + "/metrics")
            assert "setjoin_joins_total" in body
        finally:
            server.stop()


class TestDriftOnMetrics:
    def test_analyzed_join_drift_shows_up_on_the_endpoint(self):
        from repro.data.workloads import uniform_workload
        from repro.obs.explain import analyze_join

        registry = MetricsRegistry()
        lhs, rhs = uniform_workload(
            r_size=40, s_size=60, theta_r=6, theta_s=12,
            domain_size=200, seed=3,
        ).materialize()
        analyze_join(
            lhs, rhs, algorithm="DCJ", num_partitions=8, registry=registry
        )
        with MetricsServer(port=0, registry=registry) as server:
            __, __, body = fetch(server.url + "/metrics")
        assert "setjoin_drift_records_total 1" in body
        assert "setjoin_drift_last_seconds_relative_error" in body
        assert "setjoin_drift_seconds_abs_error_bucket" in body


class TestBearerTokenAuth:
    def fetch_with_header(self, url, header=None):
        request = urllib.request.Request(url)
        if header is not None:
            request.add_header("Authorization", header)
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return response.status, response.read().decode()

    def test_metrics_requires_the_token(self, registry):
        with MetricsServer(port=0, registry=registry, token="s3cret") as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url + "/metrics")
        assert excinfo.value.code == 401
        assert excinfo.value.headers["WWW-Authenticate"] == "Bearer"
        assert json.loads(excinfo.value.read().decode()) == {
            "error": "unauthorized"
        }

    def test_correct_bearer_token_passes(self, registry):
        with MetricsServer(port=0, registry=registry, token="s3cret") as server:
            status, body = self.fetch_with_header(
                server.url + "/metrics", "Bearer s3cret"
            )
        assert status == 200
        assert "setjoin_joins_total 3" in body

    def test_wrong_token_rejected(self, registry):
        with MetricsServer(port=0, registry=registry, token="s3cret") as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.fetch_with_header(server.url + "/metrics", "Bearer nope")
        assert excinfo.value.code == 401

    def test_healthz_stays_open_for_liveness_probes(self, registry):
        with MetricsServer(port=0, registry=registry, token="s3cret") as server:
            status, __, body = fetch(server.url + "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_no_token_keeps_the_endpoint_open(self, registry):
        with MetricsServer(port=0, registry=registry) as server:
            status, __, __ = fetch(server.url + "/metrics")
        assert status == 200

    def test_malformed_tokens_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="token"):
            MetricsServer(port=0, token="")
        with pytest.raises(ConfigurationError, match="token"):
            MetricsServer(port=0, token="two\nlines")

    def test_serve_metrics_helper_threads_the_token(self, registry):
        server = serve_metrics(port=0, registry=registry, token="t0k3n")
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url + "/metrics")
            assert excinfo.value.code == 401
            status, __ = self.fetch_with_header(
                server.url + "/metrics", "Bearer t0k3n"
            )
            assert status == 200
        finally:
            server.stop()


class TestLifecycleRaces:
    def test_concurrent_stops_do_not_race(self, registry):
        import threading

        server = MetricsServer(port=0, registry=registry).start()
        errors = []

        def stopper():
            try:
                server.stop()
            except Exception as error:  # noqa: BLE001 — the race under test
                errors.append(error)

        threads = [threading.Thread(target=stopper) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert errors == []
        assert not server.running

    def test_fixed_port_rebinds_immediately_after_stop(self, registry):
        # SO_REUSEADDR: the restarted server reclaims the same port even
        # though the previous socket may linger in TIME_WAIT.
        first = MetricsServer(port=0, registry=registry).start()
        port = first.port
        first.stop()
        second = MetricsServer(port=port, registry=registry).start()
        try:
            status, __, __ = fetch(second.url + "/healthz")
            assert status == 200
            assert second.port == port
        finally:
            second.stop()
