"""Tests for the expected-selectivity formula (Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.selectivity import expected_result_size, expected_selectivity
from repro.analysis.simulate import monte_carlo_selectivity
from repro.errors import ConfigurationError


class TestPaperValues:
    def test_small_example(self):
        # θ_R=2, θ_S=3, D=10 -> ≈ 0.066
        assert expected_selectivity(2, 3, 10) == pytest.approx(0.0667, abs=1e-3)

    def test_expected_result_for_4x4_relations(self):
        # "the expected number of joining tuples for relations having 4
        # tuples each is 0.066 · 4² ≈ 1"
        assert expected_result_size(4, 4, 2, 3, 10) == pytest.approx(1.07, abs=0.05)

    def test_large_domain_near_zero(self):
        # θ_R=10, θ_S=20, D=1000 -> below 1e-18
        assert expected_selectivity(10, 20, 1000) < 1e-18

    def test_billion_tuple_joke(self):
        # "a join between R and S with a billion tuples each is expected
        # to return just one tuple"
        expected = expected_result_size(10**9, 10**9, 10, 20, 1000)
        assert 0.1 < expected < 10


class TestEdgeCases:
    def test_theta_r_greater_than_theta_s_is_zero(self):
        assert expected_selectivity(5, 3, 100) == 0.0

    def test_empty_r_always_joins(self):
        assert expected_selectivity(0, 5, 100) == 1.0

    def test_equal_cardinalities(self):
        # Only the identical set joins: 1 / C(D, θ)
        assert expected_selectivity(2, 2, 4) == pytest.approx(1 / 6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_selectivity(2, 3, 2)
        with pytest.raises(ConfigurationError):
            expected_selectivity(-1, 3, 10)


class TestMonteCarloAgreement:
    @pytest.mark.parametrize(
        "theta_r,theta_s,domain", [(2, 3, 10), (2, 5, 12), (1, 6, 8)]
    )
    def test_formula_matches_sampling(self, theta_r, theta_s, domain):
        analytical = expected_selectivity(theta_r, theta_s, domain)
        empirical = monte_carlo_selectivity(
            theta_r, theta_s, domain, trials=20_000, seed=1
        )
        assert empirical == pytest.approx(analytical, rel=0.15)

    def test_monte_carlo_validation(self):
        with pytest.raises(ConfigurationError):
            monte_carlo_selectivity(2, 20, 10)


@settings(max_examples=50)
@given(
    theta_r=st.integers(min_value=0, max_value=30),
    extra=st.integers(min_value=0, max_value=30),
    slack=st.integers(min_value=0, max_value=100),
)
def test_selectivity_is_probability(theta_r, extra, slack):
    theta_s = theta_r + extra
    domain = theta_s + slack
    if domain == 0:
        domain = 1
    value = expected_selectivity(theta_r, theta_s, domain)
    assert 0.0 <= value <= 1.0
