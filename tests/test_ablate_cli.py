"""The ``repro ablate`` CLI: listing, artifacts, history, tripwire exit codes."""

import json

import pytest

from repro.cli import main

SCALE = 0.1


@pytest.fixture(scope="module")
def full_run(tmp_path_factory):
    """One full-matrix CLI run shared by the artifact/check tests."""
    out = tmp_path_factory.mktemp("ablation-out")
    history = out / "history.jsonl"
    code = main([
        "ablate", "--scale", str(SCALE), "--repeats", "1",
        "--out", str(out), "--history", str(history),
    ])
    return {"code": code, "out": out, "history": history}


def test_list_prints_registry(capsys):
    assert main(["ablate", "--list"]) == 0
    captured = capsys.readouterr().out
    for name in ("checksums", "wal", "alternation", "plan-cache"):
        assert name in captured
    assert "answer-exact" in captured
    assert "answer-affecting" in captured


def test_full_run_succeeds_and_writes_artifacts(full_run):
    assert full_run["code"] == 0
    tsv = full_run["out"] / "ablation_importance.tsv"
    jsonl = full_run["out"] / "ablation_importance.jsonl"
    assert tsv.exists() and jsonl.exists()
    lines = tsv.read_text().splitlines()
    comments = [line for line in lines if line.startswith("# ")]
    assert any("baseline" in line for line in comments)
    header = next(line for line in lines if not line.startswith("# "))
    assert header.split("\t")[0] == "rank"
    data = [line for line in lines
            if line and not line.startswith(("# ", "rank\t"))]
    assert len(data) >= 8                         # >= 8 ranked components


def test_jsonl_has_meta_line_then_run_rows(full_run):
    rows = [json.loads(line) for line in
            (full_run["out"] / "ablation_importance.jsonl")
            .read_text().splitlines()]
    assert rows[0]["reconciliation"]["exact"]
    assert rows[0]["scale"] == SCALE
    runs = rows[1:]
    assert runs[0]["name"] == "baseline"
    assert all("run_id" in row and "fingerprint" in row for row in runs)


def test_history_row_appended(full_run):
    records = [json.loads(line) for line in
               full_run["history"].read_text().splitlines()]
    assert len(records) == 1
    record = records[0]
    # String schema so benchmarks/baseline.py's integer-schema history
    # filter ignores ablation rows.
    assert record["schema"] == "ablation-1"
    assert "baseline" in record["runs"]
    assert record["runs"]["baseline"]["x"] > 0


def test_check_against_own_report_passes(full_run, capsys):
    code = main([
        "ablate", "--scale", str(SCALE), "--repeats", "1", "--out", "",
        "--check", str(full_run["out"] / "ablation_importance.tsv"),
    ])
    captured = capsys.readouterr().out
    assert code == 0, captured
    assert "TRIPWIRE" not in captured


def test_check_against_tampered_report_fails(full_run, tmp_path, capsys):
    committed = (full_run["out"] / "ablation_importance.tsv").read_text()
    tampered_lines = []
    for line in committed.splitlines():
        fields = line.split("\t")
        if len(fields) > 5 and fields[1] == "checksums":
            fields[5] = "0.9000"      # importance_det a fresh run can't reach
            line = "\t".join(fields)
        tampered_lines.append(line)
    tampered = tmp_path / "tampered.tsv"
    tampered.write_text("\n".join(tampered_lines) + "\n")
    code = main([
        "ablate", "--scale", str(SCALE), "--repeats", "1", "--out", "",
        "--check", str(tampered),
    ])
    captured = capsys.readouterr().out
    assert code == 1
    assert "importance collapsed" in captured


def test_single_component_run_writes_partial_artifacts(tmp_path, capsys):
    code = main([
        "ablate", "--component", "wal", "--scale", str(SCALE),
        "--repeats", "1", "--out", str(tmp_path), "--json",
    ])
    assert code == 0
    assert (tmp_path / "ablation_importance_partial.tsv").exists()
    assert not (tmp_path / "ablation_importance.tsv").exists()
    payload = json.loads(capsys.readouterr().out)
    assert payload["failures"] == []
    assert payload["reconciliation"]["exact"]
    components = {c["component"] for c in payload["report"]["components"]}
    assert components == {"wal"}


def test_single_component_check_skips_missing_components(full_run, capsys):
    """A reduced matrix checked against the full committed report must not
    fail just because the other components were not re-run."""
    code = main([
        "ablate", "--component", "wal", "--scale", str(SCALE),
        "--repeats", "1", "--out", "",
        "--check", str(full_run["out"] / "ablation_importance.tsv"),
    ])
    captured = capsys.readouterr().out
    assert code == 0, captured
