"""Tests for the partitioning interfaces and assignments."""

import pytest

from repro.core.partitioning import PartitionAssignment, Partitioner
from repro.core.psj import PSJPartitioner
from repro.core.sets import Relation
from repro.errors import ConfigurationError


class TestPartitionerBase:
    def test_partition_count_validated(self):
        with pytest.raises(ConfigurationError):
            Partitioner(0)

    def test_abstract_methods(self):
        partitioner = Partitioner(4)
        with pytest.raises(NotImplementedError):
            partitioner.assign_r(frozenset())
        with pytest.raises(NotImplementedError):
            partitioner.assign_s(frozenset())
        assert "k=4" in partitioner.describe()


class TestPartitionAssignment:
    def make(self):
        # Hand-built assignment: R0={0,1}, R1={2}; S0={10}, S1={11,12}.
        return PartitionAssignment(
            num_partitions=2,
            r_partitions=[[0, 1], [2]],
            s_partitions=[[10], [11, 12]],
            r_size=3,
            s_size=3,
        )

    def test_comparisons(self):
        assert self.make().comparisons == 2 * 1 + 1 * 2

    def test_replicated_signatures(self):
        assert self.make().replicated_signatures == 3 + 3

    def test_factors(self):
        assignment = self.make()
        assert assignment.comparison_factor == pytest.approx(4 / 9)
        assert assignment.replication_factor == pytest.approx(1.0)

    def test_factors_with_empty_relations(self):
        empty = PartitionAssignment(1, [[]], [[]], 0, 0)
        assert empty.comparison_factor == 0.0
        assert empty.replication_factor == 0.0

    def test_candidate_pairs(self):
        assert self.make().candidate_pairs() == {
            (0, 10), (1, 10), (2, 11), (2, 12),
        }

    def test_covers(self):
        assignment = self.make()
        assert assignment.covers({(0, 10)})
        assert not assignment.covers({(0, 11)})

    def test_compute_from_partitioner(self):
        lhs = Relation.from_sets([{0}, {1}, {2}])
        rhs = Relation.from_sets([{0, 1}, {1, 2}])
        partitioner = PSJPartitioner(2, seed=0)
        assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
        assert assignment.r_size == 3
        assert assignment.s_size == 2
        assert sum(map(len, assignment.r_partitions)) == 3  # one copy each
        assert assignment.num_partitions == 2
