"""Tests for synthetic relation generation and workloads."""

import pytest

from repro.data.distributions import ConstantCardinality, UniformElements
from repro.data.generator import RelationSpec, generate_join_pair, generate_relation
from repro.data.workloads import (
    accuracy_workload,
    biochemical_workload,
    case_study,
    text_corpus_workload,
    uniform_workload,
)
from repro.errors import ConfigurationError


class TestGenerateRelation:
    def spec(self, size=50, theta=10, domain=1000):
        return RelationSpec.uniform(size, theta, domain, name="R")

    def test_size_and_cardinality(self):
        relation = generate_relation(self.spec(), seed=1)
        assert len(relation) == 50
        assert all(row.cardinality == 10 for row in relation)

    def test_band_cardinality(self):
        spec = RelationSpec.uniform(100, 0, 1000, band=(45, 55))
        relation = generate_relation(spec, seed=1)
        assert all(45 <= row.cardinality <= 55 for row in relation)

    def test_seed_reproducibility(self):
        first = generate_relation(self.spec(), seed=9)
        second = generate_relation(self.spec(), seed=9)
        assert [row.elements for row in first] == [row.elements for row in second]

    def test_different_seeds_differ(self):
        first = generate_relation(self.spec(), seed=1)
        second = generate_relation(self.spec(), seed=2)
        assert [row.elements for row in first] != [row.elements for row in second]

    def test_start_tid(self):
        relation = generate_relation(self.spec(size=3), seed=1, start_tid=100)
        assert relation.tids() == [100, 101, 102]

    def test_negative_size_rejected(self):
        spec = RelationSpec(-1, ConstantCardinality(5), UniformElements(100))
        with pytest.raises(ConfigurationError):
            generate_relation(spec)


class TestGenerateJoinPair:
    def test_planted_pairs_guarantee_results(self):
        r_spec = RelationSpec.uniform(50, 10, 10**6, name="R")
        s_spec = RelationSpec.uniform(50, 20, 10**6, name="S")
        lhs, rhs = generate_join_pair(r_spec, s_spec, seed=4, planted_pairs=8)
        from repro.core.sets import containment_pairs_nested_loop

        result = containment_pairs_nested_loop(lhs, rhs)
        assert len(result) >= 8

    def test_no_planting_with_huge_domain_is_empty(self):
        r_spec = RelationSpec.uniform(30, 10, 10**9)
        s_spec = RelationSpec.uniform(30, 20, 10**9)
        lhs, rhs = generate_join_pair(r_spec, s_spec, seed=4)
        from repro.core.sets import containment_pairs_nested_loop

        assert containment_pairs_nested_loop(lhs, rhs) == set()

    def test_too_many_planted_rejected(self):
        spec = RelationSpec.uniform(5, 2, 100)
        with pytest.raises(ConfigurationError):
            generate_join_pair(spec, spec, planted_pairs=10)

    def test_planting_preserves_sizes(self):
        spec = RelationSpec.uniform(40, 5, 10_000)
        lhs, rhs = generate_join_pair(spec, spec, seed=1, planted_pairs=5)
        assert len(lhs) == len(rhs) == 40


class TestWorkloads:
    def test_case_study_parameters(self):
        workload = case_study(scale=0.05)
        lhs, rhs = workload.materialize()
        assert len(lhs) == len(rhs) == 500
        assert workload.theta_r == 50.0
        assert workload.theta_s == 100.0
        assert 45 <= min(row.cardinality for row in lhs)
        assert max(row.cardinality for row in lhs) <= 55
        assert 90 <= min(row.cardinality for row in rhs)
        assert max(row.cardinality for row in rhs) <= 110

    def test_case_study_scale_validation(self):
        with pytest.raises(ConfigurationError):
            case_study(scale=0)

    def test_uniform_workload_label_and_thetas(self):
        workload = uniform_workload(10, 20, 5, 9, seed=1)
        assert workload.theta_r == 5.0
        assert workload.theta_s == 9.0
        assert "θR=5" in workload.label

    def test_accuracy_workload_builds_all_cells(self):
        from repro.data.distributions import (
            CARDINALITY_DISTRIBUTIONS,
            ELEMENT_DISTRIBUTIONS,
        )

        for element_kind in ELEMENT_DISTRIBUTIONS:
            for cardinality_kind in CARDINALITY_DISTRIBUTIONS:
                workload = accuracy_workload(
                    element_kind, cardinality_kind, size=20
                )
                lhs, rhs = workload.materialize()
                assert len(lhs) == len(rhs) == 20

    def test_text_corpus_workload(self):
        workload = text_corpus_workload(num_queries=25, num_documents=30,
                                        vocabulary=2_000, seed=2)
        lhs, rhs = workload.materialize()
        assert len(lhs) == 25 and len(rhs) == 30
        assert lhs.average_cardinality() < rhs.average_cardinality()
        assert workload.label == "text_corpus"

    def test_biochemical_workload_large_supersets(self):
        workload = biochemical_workload(num_signatures=10, num_snapshots=5,
                                        num_genes=800, seed=2,
                                        planted_pairs=2)
        lhs, rhs = workload.materialize()
        # Snapshots cover most of the genome.
        assert rhs.average_cardinality() > 0.6 * 800
        from repro.core.sets import containment_pairs_nested_loop

        assert len(containment_pairs_nested_loop(lhs, rhs)) >= 2

    def test_workload_materialize_is_reproducible(self):
        workload = uniform_workload(30, 30, 5, 10, seed=6, planted_pairs=2)
        first_r, first_s = workload.materialize()
        second_r, second_s = workload.materialize()
        assert [row.elements for row in first_r] == [row.elements for row in second_r]
        assert [row.elements for row in first_s] == [row.elements for row in second_s]
