"""Tests for the Table 7 analytical factors, pinned to the paper's numbers
and cross-validated against direct simulation of the partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.factors import (
    comp_dcj,
    comp_lsj,
    comp_psj,
    comparison_factor,
    dcj_replication_matrices,
    levels_of,
    repl_dcj,
    repl_lsj,
    repl_psj,
    repl_psj_bound,
    replication_factor,
)
from repro.analysis.simulate import simulate_factors
from repro.data.workloads import uniform_workload
from repro.errors import ConfigurationError


class TestPaperQuotedValues:
    """Every number Section 4 states in prose, as golden assertions."""

    def test_psj_near_one_for_large_sets(self):
        assert comp_psj(128, 1000) > 0.999

    def test_dcj_013_at_k128(self):
        assert comp_dcj(128, 1000, 1000) == pytest.approx(0.13, abs=0.005)

    def test_psj_75x_worse_at_k128_theta1000(self):
        ratio = comp_psj(128, 1000) / comp_dcj(128, 1000, 1000)
        assert ratio == pytest.approx(7.5, abs=0.1)

    def test_theta10_crossover_near_k40(self):
        crossover = next(
            k for k in range(2, 200) if comp_psj(k, 10) <= comp_dcj(k, 10, 10)
        )
        assert 30 <= crossover <= 50

    def test_theta10_k64_values(self):
        # "0.18 ≈ comp_DCJ > comp_PSJ ≈ 0.15"
        assert comp_dcj(64, 10, 10) == pytest.approx(0.18, abs=0.005)
        assert comp_psj(64, 10) == pytest.approx(0.15, abs=0.01)

    def test_theta1000_breakeven_near_135000(self):
        below = comp_psj(2**17, 1000) > comp_dcj(2**17, 1000, 1000)
        above = comp_psj(2**18, 1000) < comp_dcj(2**18, 1000, 1000)
        assert below and above  # crossover between 131k and 262k

    def test_dcj_catches_psj_at_theta_s_110(self):
        # "starting with θ_R = θ_S = 10, and k = 64 ... DCJ catches up with
        # PSJ at θ_S ≈ 110, resulting in a comparison factor of 0.82".
        assert comp_dcj(64, 10, 110) == pytest.approx(0.82, abs=0.005)
        assert comp_dcj(64, 10, 110) <= comp_psj(64, 110)
        assert comp_dcj(64, 10, 100) > comp_psj(64, 100)

    def test_psj_writes_64_5_at_theta1000_k128(self):
        assert repl_psj(128, 1000) == pytest.approx(64.5, abs=0.1)

    def test_psj_16_7x_more_than_dcj(self):
        ratio = repl_psj(128, 1000) / repl_dcj(128, 1000, 1000)
        assert ratio == pytest.approx(16.7, abs=0.2)

    def test_psj_bound(self):
        assert repl_psj_bound(1000) == pytest.approx(500.5)
        # repl_PSJ approaches but never exceeds the bound.
        assert repl_psj(2**20, 1000) < repl_psj_bound(1000)
        assert repl_psj(2**20, 1000) == pytest.approx(500.5, rel=0.01)

    def test_comp_psj_095_at_k32_theta100(self):
        # Figure 9's discussion: comp_PSJ = 0.95 at k ≈ 32.
        assert comp_psj(32, 100) == pytest.approx(0.95, abs=0.01)

    def test_dcj_reaches_psj_bound_only_at_astronomical_k(self):
        # The paper says k ≈ 2^36; our matrix derivation crosses at ≈ 2^33.
        # Either way: astronomically large, hence "practically irrelevant".
        assert repl_dcj(2**30, 1000, 1000) < repl_psj_bound(1000)
        assert repl_dcj(2**36, 1000, 1000) > repl_psj_bound(1000)


class TestStructuralProperties:
    def test_lsj_comp_equals_dcj(self):
        for k in (2, 16, 128):
            assert comp_lsj(k, 50, 100) == comp_dcj(k, 50, 100)

    def test_dcj_depends_only_on_ratio(self):
        assert comp_dcj(64, 10, 20) == pytest.approx(comp_dcj(64, 500, 1000))
        assert repl_dcj(64, 10, 20) == pytest.approx(repl_dcj(64, 500, 1000))

    def test_dcj_beats_lsj_replication_in_papers_regime(self):
        # At k = 2 the two algorithms perform the identical single split,
        # so the factors coincide; beyond that DCJ replicates strictly
        # less over the paper's plotted regime (Figure 7: k = 128,
        # λ up to 10; Figure 6: λ = 1 over all k).
        for lam in (0.5, 1.0, 2.0, 5.0, 10.0):
            assert repl_dcj(2, 100, 100 * lam) == pytest.approx(
                repl_lsj(2, 100, 100 * lam)
            )
            assert repl_dcj(128, 100, 100 * lam) < repl_lsj(128, 100, 100 * lam)
        for k in (4, 16, 64, 256, 1024):
            for lam in (0.5, 1.0, 2.0):
                assert repl_dcj(k, 100, 100 * lam) < repl_lsj(k, 100, 100 * lam)

    def test_dcj_lsj_replication_flip_at_tiny_k_extreme_lambda(self):
        """Reproduction finding: the paper's blanket 'DCJ always
        outperforms LSJ' does not hold literally for very small k with
        extreme cardinality ratios — DCJ's β-operator replicates R-tuples
        with probability λ/(1+λ), which dominates at k = 4, λ ≥ 5.
        Confirmed against simulation (see EXPERIMENTS.md)."""
        assert repl_dcj(4, 100, 500) > repl_lsj(4, 100, 500)

    def test_comp_decreases_with_k(self):
        for algorithm in ("PSJ", "DCJ"):
            values = [
                comparison_factor(algorithm, 2**l, 50, 100) for l in range(1, 10)
            ]
            assert values == sorted(values, reverse=True)

    def test_repl_increases_with_k(self):
        for algorithm in ("PSJ", "DCJ", "LSJ"):
            values = [
                replication_factor(algorithm, 2**l, 50, 100) for l in range(1, 10)
            ]
            assert values == sorted(values)

    def test_k1_degenerate_case(self):
        assert comp_dcj(1, 50, 100) == 1.0
        assert repl_dcj(1, 50, 100) == pytest.approx(1.0)
        assert repl_lsj(1, 50, 100) == pytest.approx(1.0)
        assert repl_psj(1, 100) == pytest.approx(1.0)

    def test_rho_weighting(self):
        # With |S| >> |R|, replication approaches the S-side copy count.
        heavy_s = repl_psj(64, 100, rho=100.0)
        balanced = repl_psj(64, 100, rho=1.0)
        assert heavy_s > balanced

    def test_matrix_entries_match_table7(self):
        m_r, m_s = dcj_replication_matrices(1.0)
        assert m_r == pytest.approx(np.array([[0.5, 1.0], [0.5, 0.5]]))
        assert m_s == pytest.approx(np.array([[0.5, 0.5], [1.0, 0.5]]))

    def test_continuous_k(self):
        # The formulas extend to non-power-of-two k for plotting.
        assert comp_dcj(48, 10, 10) == pytest.approx(
            (0.75) ** levels_of(48)
        )
        between = repl_dcj(96, 100, 100)
        assert repl_dcj(64, 100, 100) < between < repl_dcj(128, 100, 100)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            comp_psj(0, 10)
        with pytest.raises(ConfigurationError):
            comp_dcj(8, 0, 10)
        with pytest.raises(ConfigurationError):
            repl_psj(8, 10, rho=0)
        with pytest.raises(ConfigurationError):
            comparison_factor("XYZ", 8, 10, 10)
        with pytest.raises(ConfigurationError):
            replication_factor("XYZ", 8, 10, 10)
        with pytest.raises(ConfigurationError):
            levels_of(0.5)


class TestFormulasMatchSimulation:
    """The paper's accuracy claim on the model's home turf: uniform
    elements, constant cardinalities — predictions within a few percent."""

    @pytest.mark.parametrize("algorithm", ["PSJ", "DCJ", "LSJ"])
    @pytest.mark.parametrize("k", [8, 64])
    def test_uniform_workload(self, algorithm, k):
        lhs, rhs = uniform_workload(
            600, 600, 20, 40, domain_size=200_000, seed=4
        ).materialize()
        observation = simulate_factors(
            algorithm, lhs, rhs, k, seed=2, theta_r=20, theta_s=40
        )
        assert observation.comparison_error < 0.10, observation
        assert observation.replication_error < 0.10, observation

    def test_unequal_relation_sizes(self):
        lhs, rhs = uniform_workload(
            300, 900, 20, 40, domain_size=200_000, seed=4
        ).materialize()
        observation = simulate_factors(
            "DCJ", lhs, rhs, 32, seed=2, theta_r=20, theta_s=40
        )
        assert observation.replication_error < 0.12


@settings(max_examples=30, deadline=None)
@given(
    level=st.integers(min_value=1, max_value=12),
    theta_r=st.integers(min_value=1, max_value=500),
    lam=st.floats(min_value=0.1, max_value=10.0),
    rho=st.floats(min_value=0.1, max_value=10.0),
)
def test_factors_are_well_behaved(level, theta_r, lam, rho):
    """Property: factors stay in their valid ranges over the whole domain."""
    k = 2**level
    # Physical cardinalities are at least one element per set.
    theta_s = max(1.0, theta_r * lam)
    assert 0.0 <= comp_psj(k, theta_s) <= 1.0
    assert 0.0 <= comp_dcj(k, theta_r, theta_s) <= 1.0
    assert repl_psj(k, theta_s, rho) >= 1.0 - 1e-9
    assert repl_dcj(k, theta_r, theta_s, rho) >= 1.0 - 1e-9
    assert repl_lsj(k, theta_r, theta_s, rho) >= 1.0 - 1e-9
