"""Tests for the intersection (overlap) join extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intersection import (
    intersection_join,
    intersection_join_nested_loop,
    run_disk_intersection_join,
)
from repro.core.sets import Relation
from repro.errors import ConfigurationError


def reference(lhs, rhs, threshold):
    return {
        (r.tid, s.tid)
        for r in lhs
        for s in rhs
        if len(r.elements & s.elements) >= threshold
    }


class TestNestedLoop:
    def test_overlap_one(self):
        lhs = Relation.from_sets([{1, 2}, {9}])
        rhs = Relation.from_sets([{2, 3}, {8, 9}, {4}])
        result, metrics = intersection_join_nested_loop(lhs, rhs)
        assert result == {(0, 0), (1, 1)}
        assert metrics.set_comparisons == 6

    def test_threshold(self):
        lhs = Relation.from_sets([{1, 2, 3}])
        rhs = Relation.from_sets([{1, 2, 9}, {1, 8, 9}])
        result, __ = intersection_join_nested_loop(lhs, rhs, threshold=2)
        assert result == {(0, 0)}

    def test_invalid_threshold(self):
        relation = Relation.from_sets([{1}])
        with pytest.raises(ConfigurationError):
            intersection_join_nested_loop(relation, relation, threshold=0)


class TestPartitionedIntersection:
    def test_matches_nested_loop(self):
        lhs = Relation.from_sets([{1, 2}, {5, 6, 7}, {100}])
        rhs = Relation.from_sets([{2, 3}, {7, 8}, {200}, {1, 5}])
        for threshold in (1, 2):
            fast, __ = intersection_join(lhs, rhs, threshold, num_partitions=8)
            assert fast == reference(lhs, rhs, threshold)

    def test_empty_sets_never_intersect(self):
        lhs = Relation.from_sets([set(), {1}])
        rhs = Relation.from_sets([set(), {1, 2}])
        result, __ = intersection_join(lhs, rhs)
        assert result == {(1, 0 + 1)}

    def test_metrics_track_filtering(self):
        lhs = Relation.from_sets([{i, i + 1} for i in range(0, 40, 2)])
        rhs = Relation.from_sets([{i, i + 1} for i in range(1, 41, 2)])
        result, metrics = intersection_join(lhs, rhs, num_partitions=4)
        assert metrics.result_size == len(result)
        assert metrics.candidates >= len(result)
        assert metrics.replicated_signatures >= len(lhs) + len(rhs)

    def test_both_sides_replicated(self):
        """Intersection has no asymmetry: R replicates per element too."""
        lhs = Relation.from_sets([set(range(10))])
        rhs = Relation.from_sets([{0}])
        __, metrics = intersection_join(lhs, rhs, num_partitions=16)
        assert metrics.replicated_signatures > 2

    def test_validation(self):
        relation = Relation.from_sets([{1}])
        with pytest.raises(ConfigurationError):
            intersection_join(relation, relation, threshold=0)
        with pytest.raises(ConfigurationError):
            intersection_join(relation, relation, num_partitions=0)


class TestDiskIntersection:
    def test_matches_in_memory_operator(self, small_workload):
        lhs, rhs = small_workload
        memory, __ = intersection_join(lhs, rhs, threshold=2,
                                       num_partitions=16)
        disk, metrics = run_disk_intersection_join(
            lhs, rhs, threshold=2, num_partitions=16, signature_bits=64
        )
        assert disk == memory
        assert metrics.algorithm == "IntersectPSJ-disk"
        assert metrics.total_page_writes > 0

    def test_file_backed(self, tmp_path):
        lhs = Relation.from_sets([{1, 2, 3}, {50, 60}])
        rhs = Relation.from_sets([{3, 4}, {60, 61}, {99}])
        result, __ = run_disk_intersection_join(
            lhs, rhs, path=str(tmp_path / "ix.db"), num_partitions=8
        )
        assert result == {(0, 0), (1, 1)}

    def test_empty_sets_ignored(self):
        lhs = Relation.from_sets([set(), {7}])
        rhs = Relation.from_sets([{7, 8}, set()])
        result, __ = run_disk_intersection_join(lhs, rhs, num_partitions=4)
        assert result == {(1, 0)}

    def test_validation(self):
        relation = Relation.from_sets([{1}])
        with pytest.raises(ConfigurationError):
            run_disk_intersection_join(relation, relation, threshold=0)
        with pytest.raises(ConfigurationError):
            run_disk_intersection_join(relation, relation, num_partitions=0)


@settings(max_examples=40, deadline=None)
@given(
    r_sets=st.lists(st.frozensets(st.integers(0, 120), max_size=8), max_size=10),
    s_sets=st.lists(st.frozensets(st.integers(0, 120), max_size=8), max_size=10),
    threshold=st.integers(min_value=1, max_value=3),
    k=st.integers(min_value=1, max_value=32),
)
def test_intersection_join_equals_reference(r_sets, s_sets, threshold, k):
    """Property: the partitioned operator computes exactly the overlap join."""
    lhs = Relation.from_sets(r_sets)
    rhs = Relation.from_sets(s_sets)
    result, __ = intersection_join(lhs, rhs, threshold, num_partitions=k)
    assert result == reference(lhs, rhs, threshold)
