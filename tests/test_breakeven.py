"""Tests for the DCJ-vs-PSJ breakeven analysis (Figure 10)."""

import pytest

from repro.analysis.breakeven import (
    best_operating_point,
    breakeven_frontier,
    breakeven_theta,
)
from repro.analysis.timemodel import PAPER_TIME_MODEL
from repro.errors import ConfigurationError


class TestBestOperatingPoint:
    def test_picks_minimum_over_k(self):
        point = best_operating_point(
            "DCJ", PAPER_TIME_MODEL, 10_000, 10_000, 50, 100
        )
        assert point.algorithm == "DCJ"
        assert point.k in tuple(2**l for l in range(1, 14))
        assert point.seconds > 0

    def test_case_study_optimum_near_k32(self):
        """The paper's Figure 8 found k = 32 optimal for the case study;
        the analytical model agrees to within a factor-of-two k bucket."""
        point = best_operating_point(
            "DCJ", PAPER_TIME_MODEL, 10_000, 10_000, 50, 100
        )
        assert point.k in (16, 32, 64, 128)

    def test_dcj_case_study_prediction_near_24s(self):
        """Predicted best DCJ time for the paper's case study is in the
        ballpark of the measured 24 s."""
        point = best_operating_point(
            "DCJ", PAPER_TIME_MODEL, 10_000, 10_000, 50, 100
        )
        assert 15 < point.seconds < 50

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            best_operating_point("DCJ", PAPER_TIME_MODEL, 0, 10, 50, 100)


class TestBreakevenTheta:
    def test_paper_quoted_point(self):
        """The paper's breakeven: θ_R=50, θ_S=100 at |R|=|S|=128000.
        With the paper's constants we reproduce it almost exactly."""
        theta = breakeven_theta(PAPER_TIME_MODEL, 128_000, lam=2.0)
        assert theta == pytest.approx(50, abs=1.0)

    def test_paper_example_decisions(self):
        """θ=50 at 100000 → DCJ; θ=10 at 100000 → PSJ."""
        dcj = best_operating_point("DCJ", PAPER_TIME_MODEL, 100_000, 100_000, 50, 50)
        psj = best_operating_point("PSJ", PAPER_TIME_MODEL, 100_000, 100_000, 50, 50)
        assert dcj.seconds < psj.seconds
        dcj = best_operating_point("DCJ", PAPER_TIME_MODEL, 100_000, 100_000, 10, 10)
        psj = best_operating_point("PSJ", PAPER_TIME_MODEL, 100_000, 100_000, 10, 10)
        assert psj.seconds < dcj.seconds

    def test_frontier_rises_with_size(self):
        frontier = breakeven_frontier(
            PAPER_TIME_MODEL, (10_000, 100_000, 1_000_000), lam=1.0
        )
        thetas = [theta for __, theta in frontier]
        assert all(theta is not None for theta in thetas)
        assert thetas == sorted(thetas)

    def test_lambda2_curve_above_lambda1(self):
        for size in (10_000, 128_000, 500_000):
            theta1 = breakeven_theta(PAPER_TIME_MODEL, size, lam=1.0)
            theta2 = breakeven_theta(PAPER_TIME_MODEL, size, lam=2.0)
            assert theta2 > theta1

    def test_dcj_dominant_returns_lower_bound(self):
        # With a pure-I/O model both algorithms choose k = 2, where DCJ's
        # replication factor (1.25) beats PSJ's (≈1.5) for every θ, so the
        # frontier collapses to θ_lo.
        from repro.analysis.timemodel import TimeModel

        io_only = TimeModel(c1=0.0, c2=1e-6, c3=0.0)
        assert breakeven_theta(io_only, 1_000, lam=1.0, theta_lo=8.0) == 8.0

    def test_invalid_lambda(self):
        with pytest.raises(ConfigurationError):
            breakeven_theta(PAPER_TIME_MODEL, 1000, lam=0.0)
