"""Tests for the cardinality-split hybrid join (future-work §7)."""

import pytest

from repro.analysis.timemodel import PAPER_TIME_MODEL
from repro.core.hybrid import hybrid_join, split_by_cardinality
from repro.core.sets import Relation, containment_pairs_nested_loop
from repro.errors import ConfigurationError


class TestSplit:
    def test_split_preserves_tids(self):
        relation = Relation.from_sets([{1}, {1, 2, 3}, {1, 2, 3, 4, 5}])
        small, large = split_by_cardinality(relation, tau=3)
        assert small.tids() == [0]
        assert large.tids() == [1, 2]

    def test_large_r_cannot_join_small_s(self):
        """The dropped quadrant really is empty: |r| >= τ > |s| forbids r ⊆ s."""
        lhs = Relation.from_sets([{1, 2, 3, 4}, {5, 6, 7, 8, 9}])
        rhs = Relation.from_sets([{1, 2}, {5, 6, 7}])
        r_small, r_large = split_by_cardinality(lhs, tau=4)
        s_small, s_large = split_by_cardinality(rhs, tau=4)
        assert containment_pairs_nested_loop(r_large, s_small) == set()


class TestHybridJoin:
    def test_matches_brute_force(self, small_workload):
        lhs, rhs = small_workload
        outcome = hybrid_join(lhs, rhs, PAPER_TIME_MODEL, signature_bits=64)
        assert outcome.result == containment_pairs_nested_loop(lhs, rhs)

    def test_mixed_cardinalities(self):
        lhs = Relation.from_sets(
            [{1, 2}, {3}, set(range(100, 140)), set(range(200, 260))]
        )
        rhs = Relation.from_sets(
            [{1, 2, 3}, set(range(100, 150)), set(range(200, 270)), {3, 4}]
        )
        outcome = hybrid_join(lhs, rhs, PAPER_TIME_MODEL, signature_bits=64)
        assert outcome.result == containment_pairs_nested_loop(lhs, rhs)
        assert outcome.tau >= 1
        assert 1 <= len(outcome.quadrants) <= 3

    def test_explicit_tau(self, small_workload):
        lhs, rhs = small_workload
        outcome = hybrid_join(lhs, rhs, PAPER_TIME_MODEL, tau=10)
        assert outcome.tau == 10
        assert outcome.result == containment_pairs_nested_loop(lhs, rhs)

    def test_invalid_tau(self, small_workload):
        lhs, rhs = small_workload
        with pytest.raises(ConfigurationError):
            hybrid_join(lhs, rhs, PAPER_TIME_MODEL, tau=0)

    def test_empty_inputs(self):
        outcome = hybrid_join(Relation(), Relation(), PAPER_TIME_MODEL)
        assert outcome.result == set()
        assert outcome.quadrants == []

    def test_aggregate_metrics(self, small_workload):
        lhs, rhs = small_workload
        outcome = hybrid_join(lhs, rhs, PAPER_TIME_MODEL)
        assert outcome.total_seconds > 0
        assert outcome.total_comparisons > 0
        assert outcome.total_replicated > 0

    def test_quadrant_plans_recorded(self, small_workload):
        lhs, rhs = small_workload
        outcome = hybrid_join(lhs, rhs, PAPER_TIME_MODEL)
        for label, plan, metrics in outcome.quadrants:
            assert label in ("small⋈small", "small⋈large", "large⋈large")
            assert plan.algorithm in ("DCJ", "PSJ")
            assert metrics.result_size >= 0
