"""Tests for the span tracer (repro.obs.trace).

Clocks are injected, so every duration below is deterministic: a fake
monotonic clock advances by a fixed step per call, and a fake wall
clock anchors the trace at a known epoch.
"""

import pickle

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)


class FakeClock:
    """Monotonic clock advancing ``step`` seconds per call."""

    def __init__(self, start=0.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_tracer(step=1.0, epoch=1000.0):
    return Tracer(clock=FakeClock(step=step), wall=lambda: epoch)


class TestSpanBasics:
    def test_nesting_builds_a_tree(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_durations_come_from_injected_clock(self):
        tracer = make_tracer(step=1.0)
        # Clock reads: 0 at construction, 1 at start, 2 at inner start,
        # 3 at inner finish, 4 at outer finish.
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration == pytest.approx(1.0)
        assert outer.duration == pytest.approx(3.0)

    def test_timestamps_are_epoch_anchored(self):
        tracer = make_tracer(step=1.0, epoch=1000.0)
        with tracer.span("s") as span:
            pass
        assert span.start == pytest.approx(1001.0)  # epoch + elapsed
        assert span.end == pytest.approx(1002.0)

    def test_attrs_via_kwargs_and_set(self):
        tracer = make_tracer()
        with tracer.span("s", k=8) as span:
            span.set(results=3, algorithm="DCJ")
        assert span.attrs == {"k": 8, "results": 3, "algorithm": "DCJ"}

    def test_set_returns_span_for_chaining(self):
        span = Span("s", 1, None, 0.0)
        assert span.set(a=1) is span

    def test_open_span_duration_is_zero(self):
        tracer = make_tracer()
        span = tracer.start("open")
        assert span.duration == 0.0
        tracer.finish(span)
        assert span.duration > 0

    def test_finish_closes_forgotten_children(self):
        tracer = make_tracer()
        outer = tracer.start("outer")
        inner = tracer.start("inner")  # never finished explicitly
        tracer.finish(outer)
        assert inner.end is not None
        assert outer.end is not None
        assert tracer.current is None

    def test_walk_is_depth_first(self):
        tracer = make_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = [span.name for span in tracer.roots[0].walk()]
        assert names == ["a", "b", "c", "d"]

    def test_sibling_roots(self):
        tracer = make_tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]


class TestExportAdopt:
    def test_export_flattens_depth_first(self):
        tracer = make_tracer()
        with tracer.span("root", k=4):
            with tracer.span("child"):
                pass
        records = tracer.export()
        assert [r["name"] for r in records] == ["root", "child"]
        assert records[0]["parent_id"] is None
        assert records[1]["parent_id"] == records[0]["span_id"]
        assert records[0]["attrs"] == {"k": 4}

    def test_export_records_are_picklable(self):
        tracer = make_tracer()
        with tracer.span("root"):
            pass
        records = tracer.export()
        assert pickle.loads(pickle.dumps(records)) == records

    def test_adopt_grafts_under_current_span(self):
        worker = make_tracer()
        with worker.span("shard", index=0):
            with worker.span("join.partition"):
                pass
        shipped = worker.export()

        parent = make_tracer()
        with parent.span("join") as root:
            with parent.span("phase.join"):
                tops = parent.adopt(shipped)
        assert len(tops) == 1
        phase = root.children[0]
        shard = phase.children[0]
        assert shard.name == "shard"
        assert shard.parent_id == phase.span_id
        assert shard.children[0].name == "join.partition"
        assert shard.children[0].parent_id == shard.span_id

    def test_adopt_rekeys_without_id_collisions(self):
        worker = make_tracer()
        with worker.span("shard"):
            pass
        parent = make_tracer()
        with parent.span("join") as root:
            parent.adopt(worker.export())
        ids = [span.span_id for span in root.walk()]
        assert len(ids) == len(set(ids))

    def test_adopt_preserves_foreign_timings(self):
        worker = make_tracer(epoch=5000.0)
        with worker.span("shard") as shard:
            pass
        parent = make_tracer(epoch=1000.0)
        with parent.span("join"):
            (adopted,) = parent.adopt(worker.export())
        assert adopted.start == shard.start
        assert adopted.duration == pytest.approx(shard.duration)

    def test_adopt_outside_any_span_makes_new_roots(self):
        worker = make_tracer()
        with worker.span("shard"):
            pass
        parent = make_tracer()
        tops = parent.adopt(worker.export())
        assert tops == parent.roots
        assert tops[0].parent_id is None

    def test_adopt_two_workers_yields_two_siblings(self):
        shipped = []
        for index in range(2):
            worker = make_tracer()
            with worker.span("shard", index=index):
                pass
            shipped.append(worker.export())
        parent = make_tracer()
        with parent.span("join") as root:
            for records in shipped:
                parent.adopt(records)
        assert [c.attrs["index"] for c in root.children] == [0, 1]


class TestAdoptRobustness:
    """Malformed and out-of-order batches (e.g. a buggy or half-written
    worker export) must either adopt cleanly or reject atomically."""

    def export_shard(self):
        worker = make_tracer()
        with worker.span("shard", index=0):
            with worker.span("join.partition", partition=3):
                pass
        return worker.export()

    def test_out_of_order_records_still_nest(self):
        records = self.export_shard()
        # Ship the child before its parent: linkage must survive.
        records.reverse()
        assert records[0]["name"] == "join.partition"
        parent = make_tracer()
        with parent.span("join") as root:
            tops = parent.adopt(records)
        assert len(tops) == 1
        (shard,) = root.children
        assert shard.name == "shard"
        assert [c.name for c in shard.children] == ["join.partition"]
        assert shard.children[0].parent_id == shard.span_id

    def test_missing_key_rejected(self):
        for key in ("name", "span_id", "start", "end"):
            records = self.export_shard()
            del records[0][key]
            with pytest.raises(ValueError, match="missing key"):
                make_tracer().adopt(records)

    def test_non_dict_record_rejected(self):
        with pytest.raises(ValueError, match="missing key"):
            make_tracer().adopt([None])

    def test_empty_or_non_string_name_rejected(self):
        for bad_name in ("", 42, None):
            records = self.export_shard()
            records[0]["name"] = bad_name
            with pytest.raises(ValueError, match="empty name"):
                make_tracer().adopt(records)

    def test_duplicate_span_id_within_batch_rejected(self):
        records = self.export_shard()
        records[1]["span_id"] = records[0]["span_id"]
        with pytest.raises(ValueError, match="duplicate span_id"):
            make_tracer().adopt(records)

    def test_rejected_batch_leaves_no_partial_graft(self):
        parent = make_tracer()
        with parent.span("join") as root:
            good = self.export_shard()
            bad = self.export_shard()
            del bad[1]["start"]
            parent.adopt(good)
            with pytest.raises(ValueError):
                parent.adopt(bad)
        # Only the good batch landed; the bad one was rejected before
        # any of its records were grafted.
        assert len(root.children) == 1
        assert sum(1 for _ in root.walk()) == 3

    def test_dangling_parent_in_batch_attaches_under_current(self):
        records = self.export_shard()
        # Point the child at a parent id that is not in the batch (as if
        # the batch were truncated): it attaches under the current span
        # instead of being dropped or crashing.
        orphan = [r for r in records if r["name"] == "join.partition"][0]
        orphan["parent_id"] = 424242
        parent = make_tracer()
        with parent.span("join") as root:
            tops = parent.adopt(records)
        assert len(tops) == 2
        assert {c.name for c in root.children} == {"shard", "join.partition"}


class TestAmbientTracer:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        tracer = make_tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_nests(self):
        outer, inner = make_tracer(), make_tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_use_tracer_restores_on_error(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert make_tracer().enabled is True

    def test_null_span_is_shared_noop(self):
        tracer = NullTracer()
        with tracer.span("anything", k=8) as span:
            assert span.set(a=1) is span
        assert tracer.span("other") is span
        assert span.attrs == {}
        assert list(span.walk()) == []

    def test_export_and_adopt_are_empty(self):
        tracer = NullTracer()
        assert tracer.export() == []
        assert tracer.adopt([{"name": "x", "span_id": 1, "parent_id": None,
                              "start": 0, "end": 1}]) == []
        assert tracer.current is None
