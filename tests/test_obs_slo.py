"""SLO tracker: objectives, burn rates, multi-window alerting."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLObjective, SLOTracker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def make_tracker(objectives=None, **kwargs):
    if objectives is None:
        objectives = {"join": SLObjective("join", latency=1.0,
                                          error_budget=0.1)}
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("clock", FakeClock())
    return SLOTracker(objectives, **kwargs)


class TestConfiguration:
    def test_rejects_empty_objectives(self):
        with pytest.raises(ConfigurationError, match="objective"):
            make_tracker({})

    def test_rejects_bad_latency_and_budget(self):
        with pytest.raises(ConfigurationError, match="latency"):
            SLObjective("join", latency=0.0)
        with pytest.raises(ConfigurationError, match="budget"):
            SLObjective("join", latency=1.0, error_budget=0.0)
        with pytest.raises(ConfigurationError, match="budget"):
            SLObjective("join", latency=1.0, error_budget=1.5)

    def test_plain_float_promoted_to_objective(self):
        tracker = make_tracker({"probe": 0.25})
        assert tracker.latency_objective("probe") == 0.25
        assert tracker.objectives["probe"].error_budget == 0.01

    def test_rejects_bad_windows(self):
        with pytest.raises(ConfigurationError, match="window"):
            make_tracker(windows=())
        with pytest.raises(ConfigurationError, match="window"):
            make_tracker(windows=(0.0, 60.0))


class TestObservations:
    def test_idle_window_burns_zero_without_dividing(self):
        tracker = make_tracker()
        for window in tracker.windows:
            stats = tracker.window_stats("join", window)
            assert stats == {"observations": 0, "bad": 0, "burn_rate": 0.0}
        assert tracker.alerting("join") is False

    def test_good_fast_ok_query(self):
        tracker = make_tracker()
        assert tracker.observe("join", seconds=0.5, ok=True) is True
        stats = tracker.window_stats("join", 60.0)
        assert stats["observations"] == 1
        assert stats["burn_rate"] == 0.0

    def test_slow_ok_query_burns_budget(self):
        tracker = make_tracker()
        assert tracker.observe("join", seconds=2.0, ok=True) is False
        # One bad out of one observation over budget 0.1 → burn 10.
        assert tracker.burn_rate("join", 60.0) == pytest.approx(10.0)

    def test_failed_query_burns_budget(self):
        tracker = make_tracker()
        assert tracker.observe("join", seconds=0.1, ok=False) is False
        assert tracker.burn_rate("join", 60.0) == pytest.approx(10.0)

    def test_untracked_kind_returns_none(self):
        tracker = make_tracker()
        assert tracker.observe("create", seconds=0.1, ok=True) is None
        assert tracker.tracks("create") is False

    def test_old_observations_age_out_of_the_window(self):
        clock = FakeClock()
        tracker = make_tracker(clock=clock, windows=(10.0, 100.0))
        tracker.observe("join", seconds=5.0, ok=True)  # bad
        clock.advance(50.0)
        tracker.observe("join", seconds=0.1, ok=True)  # good
        short = tracker.window_stats("join", 10.0)
        long = tracker.window_stats("join", 100.0)
        assert short == {"observations": 1, "bad": 0, "burn_rate": 0.0}
        assert long["observations"] == 2
        assert long["bad"] == 1


class TestAlerting:
    def test_alert_requires_every_window_burning(self):
        clock = FakeClock()
        tracker = make_tracker(clock=clock, windows=(10.0, 100.0),
                               alert_burn_rate=1.0)
        # A burst of failures inside the short window: both windows see
        # them, both burn > 1 → alert.
        for __ in range(5):
            tracker.observe("join", seconds=0.1, ok=False)
        assert tracker.alerting("join") is True
        # Sixty seconds of quiet: the short window empties, so the
        # multi-window rule stands down even though the long window
        # still remembers the burst.
        clock.advance(60.0)
        assert tracker.alerting("join") is False

    def test_alert_gauge_published(self):
        registry = MetricsRegistry()
        tracker = make_tracker(registry=registry)
        for __ in range(3):
            tracker.observe("join", seconds=5.0, ok=True)
        assert registry.get("setjoin_slo_join_alert").value == 1.0
        assert registry.get(
            "setjoin_slo_join_burn_rate_60s"
        ).value == pytest.approx(10.0)
        assert registry.get("setjoin_slo_join_observations_60s").value == 3
        assert registry.get("setjoin_slo_join_breaches_total").value == 3

    def test_report_shape(self):
        tracker = make_tracker()
        tracker.observe("join", seconds=0.5, ok=True)
        report = tracker.report()
        assert report["join"]["latency_objective"] == 1.0
        assert report["join"]["alerting"] is False
        assert report["join"]["windows"]["60s"]["observations"] == 1


class TestHistogramObservations:
    def test_histogram_exposes_observation_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "test", buckets=(1.0, 2.0))
        assert histogram.observations == 0
        histogram.observe(0.5)
        histogram.observe(1.5)
        assert histogram.observations == 2
