"""Shared fixtures: the paper's running example and small workloads."""

from __future__ import annotations

import pytest

from repro.core.sets import Relation
from repro.data.workloads import uniform_workload


@pytest.fixture()
def paper_r() -> Relation:
    """Table 1's relation R: sets a, b, c, d as tids 0..3."""
    return Relation.from_sets([{1, 5}, {10, 13}, {1, 3}, {8, 19}], name="R")


@pytest.fixture()
def paper_s() -> Relation:
    """Table 1's relation S: sets A, B, C, D as tids 0..3."""
    return Relation.from_sets(
        [{1, 5, 7}, {8, 10, 13}, {1, 3, 13}, {2, 3, 4}], name="S"
    )


@pytest.fixture()
def paper_truth() -> set[tuple[int, int]]:
    """R ⋈⊆ S = {(a,A), (b,B), (c,C)}."""
    return {(0, 0), (1, 1), (2, 2)}


@pytest.fixture(scope="session")
def small_workload():
    """A small joinable workload with planted pairs, shared across tests."""
    workload = uniform_workload(
        120, 140, 8, 16, domain_size=5_000, seed=13, planted_pairs=6
    )
    return workload.materialize()
