"""Tests for the Section 6 implementation options and space reclamation."""

import pytest

from repro.core.operator import SetContainmentJoin, Testbed, run_disk_join
from repro.core.psj import PSJPartitioner
from repro.core.sets import containment_pairs_nested_loop
from repro.core.signatures import recommend_signature_bits
from repro.errors import ConfigurationError


class TestResidentPartitions:
    def test_result_unchanged(self, small_workload):
        lhs, rhs = small_workload
        expected = containment_pairs_nested_loop(lhs, rhs)
        for resident in (1, 4, 8):
            result, __ = run_disk_join(
                lhs, rhs, PSJPartitioner(8, seed=1),
                resident_partitions=resident,
            )
            assert result == expected, resident

    def test_resident_entries_not_written(self, small_workload):
        lhs, rhs = small_workload
        __, baseline = run_disk_join(lhs, rhs, PSJPartitioner(8, seed=1))
        __, resident = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1), resident_partitions=4
        )
        # Total partition entries are conserved; part move to memory.
        assert (
            resident.replicated_signatures + resident.resident_signatures
            == baseline.replicated_signatures
        )
        assert resident.resident_signatures > 0
        assert resident.replicated_signatures < baseline.replicated_signatures
        # Fewer partition entries written -> fewer page writes.
        assert resident.total_page_writes <= baseline.total_page_writes

    def test_all_partitions_resident(self, small_workload):
        """resident >= k degenerates to a pure in-memory partition join."""
        lhs, rhs = small_workload
        result, metrics = run_disk_join(
            lhs, rhs, PSJPartitioner(4, seed=1), resident_partitions=99
        )
        assert result == containment_pairs_nested_loop(lhs, rhs)
        assert metrics.replicated_signatures == 0
        assert metrics.resident_signatures > 0

    def test_negative_rejected(self, paper_r, paper_s):
        with Testbed() as testbed:
            testbed.load(paper_r, paper_s)
            with pytest.raises(ConfigurationError):
                SetContainmentJoin(
                    testbed, PSJPartitioner(4), resident_partitions=-1
                )


class TestSpilledCandidates:
    def test_result_unchanged(self, small_workload):
        lhs, rhs = small_workload
        expected = containment_pairs_nested_loop(lhs, rhs)
        result, metrics = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1), spill_candidates=True
        )
        assert result == expected
        assert metrics.candidates >= len(expected)

    def test_candidate_counts_match_in_memory_path(self, small_workload):
        lhs, rhs = small_workload
        __, in_memory = run_disk_join(lhs, rhs, PSJPartitioner(8, seed=1))
        __, spilled = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1), spill_candidates=True
        )
        assert spilled.candidates == in_memory.candidates
        assert spilled.false_positives == in_memory.false_positives

    def test_combined_with_resident(self, small_workload):
        lhs, rhs = small_workload
        result, __ = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            spill_candidates=True, resident_partitions=3,
        )
        assert result == containment_pairs_nested_loop(lhs, rhs)


class TestVerifyPerPartition:
    def test_result_and_counts_match_deferred_mode(self, small_workload):
        lhs, rhs = small_workload
        deferred_result, deferred = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1)
        )
        interleaved_result, interleaved = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1), verify_per_partition=True
        )
        assert interleaved_result == deferred_result
        assert interleaved.candidates == deferred.candidates
        assert interleaved.false_positives == deferred.false_positives
        assert interleaved.signature_comparisons == deferred.signature_comparisons

    def test_dcj_duplicates_verified_once(self, small_workload):
        """Pairs co-located in several DCJ partitions must be verified
        exactly once: set comparisons equal distinct candidates."""
        from repro.core.dcj import DCJPartitioner

        lhs, rhs = small_workload
        partitioner = DCJPartitioner.for_cardinalities(16, 8, 16)
        __, metrics = run_disk_join(
            lhs, rhs, partitioner, verify_per_partition=True
        )
        assert metrics.set_comparisons == metrics.candidates

    def test_mutually_exclusive_with_spilling(self, paper_r, paper_s):
        with Testbed() as testbed:
            testbed.load(paper_r, paper_s)
            with pytest.raises(ConfigurationError):
                SetContainmentJoin(
                    testbed, PSJPartitioner(4),
                    spill_candidates=True, verify_per_partition=True,
                )

    def test_combined_with_resident_partitions(self, small_workload):
        lhs, rhs = small_workload
        result, __ = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            verify_per_partition=True, resident_partitions=4,
        )
        assert result == containment_pairs_nested_loop(lhs, rhs)


class TestSpaceReclamation:
    def test_partition_pages_freed_after_join(self, small_workload):
        """Partitions are temporary: their pages return to the free list."""
        lhs, rhs = small_workload
        with Testbed() as testbed:
            testbed.load(lhs, rhs)
            live_before = testbed.disk.num_live_pages
            join = SetContainmentJoin(testbed, PSJPartitioner(8, seed=1))
            join.run()
            # Only the relations remain live; partition pages were freed.
            assert testbed.disk.num_free_pages > 0
            assert testbed.disk.num_live_pages == live_before

    def test_repeated_joins_reuse_pages(self, small_workload):
        """Running many joins must not grow the store without bound."""
        lhs, rhs = small_workload
        with Testbed() as testbed:
            testbed.load(lhs, rhs)
            join = SetContainmentJoin(testbed, PSJPartitioner(8, seed=1))
            join.run()
            pages_after_first = testbed.disk.num_pages
            for __ in range(3):
                join.run()
            assert testbed.disk.num_pages <= pages_after_first + 2


class TestSignatureAdvisor:
    def test_wider_for_more_comparisons(self):
        few = recommend_signature_bits(50, 100, pairs_compared=1e4)
        many = recommend_signature_bits(50, 100, pairs_compared=1e10)
        assert many > few

    def test_paper_scale_within_papers_choice(self):
        """For the case study's θ and comparison volume, the advisor's
        minimum (88 bits) is comfortably below the paper's conservative
        160 bits — consistent with 'the exact choice ... is less
        critical' — and 160 bits indeed leaves ≪ 1 expected false
        positive."""
        pairs = 0.5 * 10_000 * 10_000
        bits = recommend_signature_bits(50, 100, pairs_compared=pairs)
        assert 64 <= bits <= 160
        from repro.core.signatures import false_positive_probability

        assert pairs * false_positive_probability(50, 100, 160) < 1e-6

    def test_byte_aligned(self):
        bits = recommend_signature_bits(10, 20, pairs_compared=1e6)
        assert bits % 8 == 0

    def test_capped_at_max(self):
        bits = recommend_signature_bits(
            1000, 10_000, pairs_compared=1e18, max_bits=512
        )
        assert bits == 512

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            recommend_signature_bits(10, 20, pairs_compared=-1)
        with pytest.raises(ConfigurationError):
            recommend_signature_bits(10, 20, 100, target_false_positives=0)
