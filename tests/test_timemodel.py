"""Tests for the execution-time model and its calibration."""

import pytest

from repro.analysis.timemodel import (
    PAPER_TIME_MODEL,
    CalibrationSample,
    TimeModel,
    calibrate,
)
from repro.core.metrics import JoinMetrics, PhaseMetrics
from repro.errors import CalibrationError


class TestTimeModel:
    def test_predict_formula(self):
        model = TimeModel(c1=2.0, c2=3.0, c3=1.0)
        # 2*10 + 3*5*4 = 80
        assert model.predict(10, 5, 4) == pytest.approx(80.0)

    def test_predict_factors(self):
        model = TimeModel(c1=1.0, c2=1.0, c3=0.0)
        # x = 0.5*100*200, y = 2*(100+200), k^0 = 1
        assert model.predict_factors(0.5, 2.0, 100, 200, 8) == pytest.approx(
            10_000 + 600
        )

    def test_paper_constants(self):
        assert PAPER_TIME_MODEL.c1 == pytest.approx(5.12686e-7)
        assert PAPER_TIME_MODEL.c2 == pytest.approx(8.28197e-7)
        assert PAPER_TIME_MODEL.c3 == pytest.approx(0.691485)

    def test_paper_scale_prediction_magnitude(self):
        """Sanity: for the case-study inputs the paper's model predicts
        tens of seconds, matching the reported 24-48 s range."""
        # DCJ at k=32: comp ≈ 0.446, repl ≈ 2.66 for λ=2.
        seconds = PAPER_TIME_MODEL.predict_factors(
            0.446, 2.66, 10_000, 10_000, 32
        )
        assert 20 < seconds < 60

    def test_prediction_errors(self):
        model = TimeModel(1.0, 0.0, 0.0)
        samples = [
            CalibrationSample(10, 0, 2, seconds=10.0),  # exact
            CalibrationSample(10, 0, 2, seconds=20.0),  # 50% off
        ]
        assert model.prediction_errors(samples) == [
            pytest.approx(0.0), pytest.approx(0.5),
        ]
        assert model.mean_prediction_error(samples) == pytest.approx(0.25)
        assert model.mean_prediction_error([]) == 0.0


class TestCalibration:
    def make_samples(self, model: TimeModel, noise: float = 0.0):
        samples = []
        for x in (1e5, 1e6, 5e6):
            for y in (1e3, 1e4):
                for k in (4, 32, 256):
                    seconds = model.predict(x, y, k) * (1.0 + noise)
                    samples.append(CalibrationSample(x, y, k, seconds))
                    noise = -noise  # alternate sign
        return samples

    def test_recovers_exact_constants(self):
        truth = TimeModel(c1=3e-7, c2=9e-7, c3=0.7)
        fitted = calibrate(self.make_samples(truth))
        assert fitted.c1 == pytest.approx(truth.c1, rel=1e-3)
        assert fitted.c2 == pytest.approx(truth.c2, rel=1e-3)
        assert fitted.c3 == pytest.approx(truth.c3, abs=1e-3)

    def test_noisy_fit_keeps_error_near_noise_level(self):
        truth = TimeModel(c1=3e-7, c2=9e-7, c3=0.7)
        samples = self.make_samples(truth, noise=0.10)
        fitted = calibrate(samples)
        assert fitted.mean_prediction_error(samples) <= 0.11

    def test_accepts_join_metrics(self):
        metrics = JoinMetrics(
            algorithm="DCJ", num_partitions=8, r_size=10, s_size=10,
            signature_comparisons=1000, replicated_signatures=50,
        )
        metrics.joining = PhaseMetrics(seconds=0.5)
        metrics.partitioning = PhaseMetrics(seconds=0.5)
        model = calibrate([metrics] * 4)
        assert model.predict(1000, 50, 8) > 0

    def test_too_few_samples_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate([CalibrationSample(1, 1, 2, 1.0)])

    def test_nonpositive_times_rejected(self):
        samples = [CalibrationSample(1, 1, 2, 0.0)] * 5
        with pytest.raises(CalibrationError):
            calibrate(samples)

    def test_sample_from_metrics(self):
        metrics = JoinMetrics(num_partitions=16, signature_comparisons=5,
                              replicated_signatures=7)
        metrics.verification = PhaseMetrics(seconds=2.0)
        sample = CalibrationSample.from_metrics(metrics)
        assert sample.comparisons == 5
        assert sample.replicated_signatures == 7
        assert sample.num_partitions == 16
        assert sample.seconds == 2.0
