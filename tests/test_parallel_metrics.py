"""Cross-backend metrics-registry invariance (the aggregation contract).

The process backend ships each worker's registry delta back to the
parent and merges it (``repro.parallel.worker`` / ``engine``); serial
and thread workers increment the parent's registry directly.  Whatever
the mechanism, the *parent* registry must end up with identical
``setjoin_buffer_*``, ``setjoin_wal_*`` and ``setjoin_worker_*`` totals
for the same join on every backend — under fork, a worker's registry
copy starts with the parent's counts, so an unbaselined delta would
double-count everything the parent did before the join (the regression
this file pins down).
"""

import pytest

from repro.core.operator import SetContainmentJoin, Testbed
from repro.core.psj import PSJPartitioner
from repro.data.workloads import uniform_workload
from repro.obs.registry import get_registry, record_join
from repro.storage.buffer import BufferPool
from repro.storage.pager import FileDiskManager
from repro.storage.wal import WALDiskManager, WriteAheadLog

BACKENDS = ("serial", "thread", "process")

#: The counter families whose parent totals must be backend-invariant.
INVARIANT_PREFIXES = (
    "setjoin_buffer_",
    "setjoin_wal_",
    "setjoin_worker_",
    "setjoin_signature_comparisons_total",
    "setjoin_replicated_signatures_total",
    "setjoin_page_",
)


@pytest.fixture(scope="module")
def workload():
    return uniform_workload(
        100, 130, 6, 14, domain_size=2_000, seed=7, planted_pairs=4
    ).materialize()


def run_join(tmp_path, workload, backend):
    """One WAL-backed, file-backed join; returns the parent registry's
    counter increments attributable to this run."""
    lhs, rhs = workload
    path = str(tmp_path / f"{backend}.db")
    disk = WALDiskManager(
        FileDiskManager(path, 4096), WriteAheadLog(path + ".wal", 4096)
    )
    pool = BufferPool(disk, capacity=128, policy="lru")
    testbed = Testbed.from_components(disk, pool, None, None)
    registry = get_registry()
    before = registry.snapshot()
    # Load under a WAL transaction so the parent increments
    # setjoin_wal_commits_total/fsyncs_total *before* any worker forks —
    # exactly the state a naive (unbaselined) delta would re-add.
    disk.begin()
    testbed.load(lhs, rhs)
    disk.commit()
    join = SetContainmentJoin(
        testbed, PSJPartitioner(8, seed=1),
        workers=3, parallel_backend=backend,
    )
    pairs, metrics = join.run(cold_cache=False)
    record_join(metrics)
    testbed.close()
    delta = registry.delta(before)
    counters = {
        name: entry["value"]
        for name, entry in delta.items()
        if entry["kind"] == "counter"
        and name.startswith(INVARIANT_PREFIXES)
        # Timing counters (worker wall seconds) are real work the
        # deltas must carry home, but their *values* are clock reads —
        # only the integer counters can be bit-identical.
        and not name.endswith("_seconds_total")
    }
    timings = {
        name: entry["value"]
        for name, entry in delta.items()
        if entry["kind"] == "counter" and name.endswith("_seconds_total")
        and name.startswith(INVARIANT_PREFIXES)
    }
    return pairs, metrics, counters, timings


def test_parent_registry_identical_across_backends(tmp_path, workload):
    runs = {
        backend: run_join(tmp_path, workload, backend)
        for backend in BACKENDS
    }
    serial_pairs, serial_metrics, serial_counters, serial_timings = (
        runs["serial"]
    )

    assert serial_counters.get("setjoin_wal_commits_total", 0) >= 1
    assert serial_counters.get("setjoin_worker_shards_total", 0) >= 1
    assert serial_counters.get("setjoin_buffer_hits_total", 0) > 0
    assert serial_timings.get("setjoin_worker_seconds_total", 0) > 0

    for backend in ("thread", "process"):
        pairs, metrics, counters, timings = runs[backend]
        assert pairs == serial_pairs
        assert metrics.signature_comparisons == (
            serial_metrics.signature_comparisons
        )
        assert counters == serial_counters, (
            f"{backend} backend perturbed the parent registry"
        )
        # Worker wall time must still come home through the delta merge
        # (a dropped delta would leave it at zero) even though its value
        # cannot be bit-identical across backends.
        assert timings.get("setjoin_worker_seconds_total", 0) > 0


def test_worker_counters_cover_all_shards(tmp_path, workload):
    __, __, counters, __ = run_join(tmp_path, workload, "process")
    assert counters["setjoin_worker_shards_total"] == 3
    assert counters["setjoin_worker_partitions_total"] == 8
    assert counters["setjoin_worker_comparisons_total"] > 0
