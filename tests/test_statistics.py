"""Tests for relation statistics collection."""

import pytest

from repro.analysis.statistics import collect_statistics
from repro.core.sets import Relation
from repro.data.workloads import uniform_workload
from repro.errors import ConfigurationError


class TestExactStatistics:
    def test_basic_summary(self):
        relation = Relation.from_sets([{1, 2}, {3}, set(), {1, 2, 3, 4}],
                                      name="T")
        stats = collect_statistics(relation)
        assert stats.size == 4
        assert stats.min_cardinality == 0
        assert stats.max_cardinality == 4
        assert stats.mean_cardinality == pytest.approx(7 / 4)
        assert stats.median_cardinality == pytest.approx(1.5)
        assert stats.empty_sets == 1
        assert stats.distinct_elements == 4
        assert stats.domain_bound == 5
        assert not stats.sampled

    def test_odd_count_median(self):
        relation = Relation.from_sets([{1}, {1, 2}, {1, 2, 3}])
        assert collect_statistics(relation).median_cardinality == 2.0

    def test_empty_relation(self):
        stats = collect_statistics(Relation(name="E"))
        assert stats.size == 0
        assert stats.mean_cardinality == 0.0

    def test_describe_output(self):
        relation = Relation.from_sets([{1, 2}], name="R")
        text = collect_statistics(relation).describe()
        assert "relation R" in text
        assert "cardinality" in text


class TestSampledStatistics:
    def test_sampling_flag_and_accuracy(self):
        lhs, __ = uniform_workload(500, 10, 20, 40, seed=3).materialize()
        exact = collect_statistics(lhs)
        sampled = collect_statistics(lhs, sample_size=100, seed=1)
        assert sampled.sampled
        assert sampled.size == exact.size  # size is always exact
        assert sampled.mean_cardinality == pytest.approx(
            exact.mean_cardinality, rel=0.1
        )

    def test_sample_bigger_than_relation_is_exact(self):
        relation = Relation.from_sets([{1}, {2}])
        stats = collect_statistics(relation, sample_size=100)
        assert not stats.sampled

    def test_invalid_sample_size(self):
        relation = Relation.from_sets([{1}])
        with pytest.raises(ConfigurationError):
            collect_statistics(relation, sample_size=0)
