"""Tests for the join metrics record."""

import pytest

from repro.core.metrics import JoinMetrics, PhaseMetrics
from repro.storage.pager import IOStats


class TestPhaseMetrics:
    def test_from_io_delta(self):
        delta = IOStats(page_reads=5, page_writes=3)
        phase = PhaseMetrics.from_io_delta(1.5, delta)
        assert phase.seconds == 1.5
        assert phase.page_reads == 5
        assert phase.page_writes == 3


class TestJoinMetrics:
    def make(self):
        metrics = JoinMetrics(
            algorithm="DCJ", num_partitions=8, r_size=100, s_size=200,
            signature_bits=160,
        )
        metrics.signature_comparisons = 5_000
        metrics.replicated_signatures = 450
        metrics.candidates = 20
        metrics.false_positives = 5
        metrics.result_size = 15
        metrics.partitioning = PhaseMetrics(1.0, 10, 20)
        metrics.joining = PhaseMetrics(2.0, 30, 0)
        metrics.verification = PhaseMetrics(0.5, 5, 0)
        return metrics

    def test_comparison_factor(self):
        assert self.make().comparison_factor == pytest.approx(5000 / 20_000)

    def test_replication_factor(self):
        assert self.make().replication_factor == pytest.approx(450 / 300)

    def test_zero_sized_relations(self):
        empty = JoinMetrics()
        assert empty.comparison_factor == 0.0
        assert empty.replication_factor == 0.0
        assert empty.filter_precision == 1.0

    def test_totals(self):
        metrics = self.make()
        assert metrics.total_seconds == pytest.approx(3.5)
        assert metrics.total_page_reads == 45
        assert metrics.total_page_writes == 20

    def test_filter_precision(self):
        assert self.make().filter_precision == pytest.approx(0.75)

    def test_as_row_contains_key_columns(self):
        row = self.make().as_row()
        assert row["algorithm"] == "DCJ"
        assert row["k"] == 8
        assert row["comparisons"] == 5_000
        assert row["comp_factor"] == pytest.approx(0.25)
        assert row["repl_factor"] == pytest.approx(1.5)
        assert row["t_total_s"] == pytest.approx(3.5)
        assert row["false_positives"] == 5
