"""Tests for the join metrics record."""

import pytest

from repro.core.metrics import JoinMetrics, PhaseMetrics
from repro.errors import ConfigurationError
from repro.storage.pager import IOStats


class TestPhaseMetrics:
    def test_from_io_delta(self):
        delta = IOStats(page_reads=5, page_writes=3)
        phase = PhaseMetrics.from_io_delta(1.5, delta)
        assert phase.seconds == 1.5
        assert phase.page_reads == 5
        assert phase.page_writes == 3

    def test_add_sums_componentwise(self):
        combined = PhaseMetrics(1.5, 10, 4) + PhaseMetrics(0.5, 3, 1)
        assert combined == PhaseMetrics(2.0, 13, 5)

    def test_add_does_not_mutate_operands(self):
        left = PhaseMetrics(1.0, 1, 1)
        right = PhaseMetrics(2.0, 2, 2)
        __ = left + right
        assert left == PhaseMetrics(1.0, 1, 1)
        assert right == PhaseMetrics(2.0, 2, 2)

    def test_add_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            PhaseMetrics(1.0, 1, 1) + 3


class TestJoinMetrics:
    def make(self):
        metrics = JoinMetrics(
            algorithm="DCJ", num_partitions=8, r_size=100, s_size=200,
            signature_bits=160,
        )
        metrics.signature_comparisons = 5_000
        metrics.replicated_signatures = 450
        metrics.candidates = 20
        metrics.false_positives = 5
        metrics.result_size = 15
        metrics.partitioning = PhaseMetrics(1.0, 10, 20)
        metrics.joining = PhaseMetrics(2.0, 30, 0)
        metrics.verification = PhaseMetrics(0.5, 5, 0)
        return metrics

    def test_comparison_factor(self):
        assert self.make().comparison_factor == pytest.approx(5000 / 20_000)

    def test_replication_factor(self):
        assert self.make().replication_factor == pytest.approx(450 / 300)

    def test_zero_sized_relations(self):
        empty = JoinMetrics()
        assert empty.comparison_factor == 0.0
        assert empty.replication_factor == 0.0
        assert empty.filter_precision == 1.0

    def test_totals(self):
        metrics = self.make()
        assert metrics.total_seconds == pytest.approx(3.5)
        assert metrics.total_page_reads == 45
        assert metrics.total_page_writes == 20

    def test_filter_precision(self):
        assert self.make().filter_precision == pytest.approx(0.75)

    def test_merge_preserves_paper_accounting(self):
        # x and y are additive across workers: each signature comparison
        # and each replicated signature happens in exactly one worker.
        left, right = self.make(), self.make()
        right.signature_comparisons = 1_000
        right.replicated_signatures = 50
        merged = JoinMetrics.merge([left, right])
        assert merged.signature_comparisons == 6_000
        assert merged.replicated_signatures == 500
        assert merged.candidates == 40
        assert merged.false_positives == 10
        assert merged.set_comparisons == 0

    def test_merge_keeps_header_from_first(self):
        merged = JoinMetrics.merge([self.make(), self.make()])
        assert merged.algorithm == "DCJ"
        assert merged.num_partitions == 8
        assert merged.r_size == 100
        assert merged.s_size == 200
        assert merged.signature_bits == 160

    def test_merge_sums_phases(self):
        merged = JoinMetrics.merge([self.make(), self.make()])
        assert merged.joining == PhaseMetrics(4.0, 60, 0)
        assert merged.partitioning == PhaseMetrics(2.0, 20, 40)
        assert merged.total_seconds == pytest.approx(7.0)

    def test_merge_single_record_is_identity_on_counters(self):
        original = self.make()
        merged = JoinMetrics.merge([original])
        assert merged.signature_comparisons == original.signature_comparisons
        assert merged.replicated_signatures == original.replicated_signatures
        assert merged.joining == original.joining

    def test_merge_rejects_mismatched_headers(self):
        other = self.make()
        other.num_partitions = 16
        with pytest.raises(ConfigurationError):
            JoinMetrics.merge([self.make(), other])

    def test_merge_rejects_empty_list(self):
        with pytest.raises(ConfigurationError):
            JoinMetrics.merge([])

    def test_as_row_contains_key_columns(self):
        row = self.make().as_row()
        assert row["algorithm"] == "DCJ"
        assert row["k"] == 8
        assert row["comparisons"] == 5_000
        assert row["comp_factor"] == pytest.approx(0.25)
        assert row["repl_factor"] == pytest.approx(1.5)
        assert row["t_total_s"] == pytest.approx(3.5)
        assert row["false_positives"] == 5
