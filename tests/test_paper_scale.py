"""Paper-scale case-study run (opt-in; takes minutes in pure Python).

Enable with::

    SETJOINS_PAPER_SCALE=1 pytest tests/test_paper_scale.py -s

Runs Figures 8 and 9 at the paper's exact sizes (|R| = |S| = 10000) and
asserts their qualitative conclusions at full scale.
"""

import os

import pytest

pytestmark = pytest.mark.skipif(
    not os.environ.get("SETJOINS_PAPER_SCALE"),
    reason="paper-scale run is opt-in: set SETJOINS_PAPER_SCALE=1",
)


def test_fig8_paper_scale():
    from repro.experiments import get_experiment

    result = get_experiment("fig8")(scale=1.0, repeats=1)
    print(result.render())
    best = min(result.rows, key=lambda row: row["t_total_s"])
    assert best["k"] in (16, 32, 64, 128)
    failing = [d for d, ok in result.checks if not ok]
    assert not failing, failing


def test_fig9_paper_scale():
    from repro.experiments import get_experiment

    result = get_experiment("fig9")(scale=1.0, repeats=1)
    print(result.render())
    failing = [d for d, ok in result.checks if not ok]
    assert not failing, failing
