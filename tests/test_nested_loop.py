"""Tests for the nested-loop baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nested_loop import naive_join, signature_nested_loop_join
from repro.core.sets import Relation, containment_pairs_nested_loop


class TestNaiveJoin:
    def test_paper_example(self, paper_r, paper_s, paper_truth):
        result, metrics = naive_join(paper_r, paper_s)
        assert result == paper_truth
        assert metrics.set_comparisons == 16  # |R| x |S|

    def test_empty_inputs(self):
        empty = Relation()
        result, metrics = naive_join(empty, empty)
        assert result == set()
        assert metrics.set_comparisons == 0


class TestSignatureNestedLoop:
    def test_paper_example_counts(self, paper_r, paper_s, paper_truth):
        """Section 2.1: 16 signature comparisons, 7 candidates, 4 false
        positives with 4-bit signatures."""
        result, metrics = signature_nested_loop_join(
            paper_r, paper_s, signature_bits=4
        )
        assert result == paper_truth
        assert metrics.signature_comparisons == 16
        assert metrics.candidates == 7
        assert metrics.false_positives == 4
        assert metrics.set_comparisons == 7  # only candidates are verified

    def test_wider_signatures_fewer_false_positives(self, small_workload):
        lhs, rhs = small_workload
        __, narrow = signature_nested_loop_join(lhs, rhs, signature_bits=8)
        __, wide = signature_nested_loop_join(lhs, rhs, signature_bits=160)
        assert wide.false_positives <= narrow.false_positives

    def test_comparison_factor_is_one(self, paper_r, paper_s):
        __, metrics = signature_nested_loop_join(paper_r, paper_s)
        assert metrics.comparison_factor == 1.0


@settings(max_examples=40, deadline=None)
@given(
    r_sets=st.lists(st.frozensets(st.integers(0, 100), max_size=6), max_size=10),
    s_sets=st.lists(st.frozensets(st.integers(0, 100), max_size=10), max_size=10),
    bits=st.sampled_from([4, 16, 64, 160]),
)
def test_baselines_agree(r_sets, s_sets, bits):
    """Property: both baselines equal the reference brute force."""
    lhs = Relation.from_sets(r_sets)
    rhs = Relation.from_sets(s_sets)
    expected = containment_pairs_nested_loop(lhs, rhs)
    assert naive_join(lhs, rhs)[0] == expected
    assert signature_nested_loop_join(lhs, rhs, signature_bits=bits)[0] == expected
