"""Plan cache keyed on relation-statistics fingerprints.

Repeated joins over unchanged relations must reuse the optimizer's
decision (hits counted), while catalog churn, content changes, and
model recalibration must all invalidate — a stale plan is worse than
no cache."""

import pytest

from repro.database import SetJoinDatabase
from repro.obs.registry import MetricsRegistry
from repro.service import QueryService
from repro.service.core import PlanCache


class TestPlanCacheUnit:
    def test_lru_eviction(self):
        cache = PlanCache(2, registry=MetricsRegistry())
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.lookup("a") == 1  # refreshes "a"
        cache.store("c", 3)  # evicts the least recent: "b"
        assert cache.lookup("b") is None
        assert cache.lookup("a") == 1
        assert cache.lookup("c") == 3
        assert len(cache) == 2

    def test_counters(self):
        registry = MetricsRegistry()
        cache = PlanCache(4, registry=registry)
        cache.lookup("missing")
        cache.store("k", "plan")
        cache.lookup("k")
        assert registry.counter(
            "setjoin_service_plan_cache_misses_total", ""
        ).value == 1
        assert registry.counter(
            "setjoin_service_plan_cache_hits_total", ""
        ).value == 1

    def test_invalidate_by_relation_name(self):
        cache = PlanCache(8, registry=MetricsRegistry())
        cache.store(("r", "s", 1), "a")
        cache.store(("r", "t", 2), "b")
        cache.store(("u", "v", 3), "c")
        assert cache.invalidate("s") == 1
        assert cache.lookup(("r", "s", 1)) is None
        assert cache.lookup(("r", "t", 2)) == "b"
        assert cache.invalidate("r") == 1
        assert len(cache) == 1


@pytest.fixture()
def loaded_db(small_workload):
    lhs, rhs = small_workload
    with SetJoinDatabase.open() as db:
        db.create_relation("r", lhs)
        db.create_relation("s", rhs)
        yield db


def cached_service(db, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("plan_cache_size", 16)
    return QueryService(db, workers=1, backend="serial", **kwargs)


class TestPlanCacheInService:
    def test_repeat_joins_hit_the_cache(self, loaded_db):
        with cached_service(loaded_db) as service:
            first, __ = service.join("r", "s")
            for __i in range(3):
                pairs, __m = service.join("r", "s")
                assert pairs == first
            stats = service.stats()["plan_cache"]
            assert stats["misses"] == 1
            assert stats["hits"] == 3
            assert stats["entries"] == 1
            assert stats["capacity"] == 16

    def test_churn_invalidates_involved_plans(self, loaded_db):
        with cached_service(loaded_db) as service:
            service.join("r", "s")
            # unrelated churn leaves the cached plan alone
            service.create_relation("other", [(1, [1, 2])])
            service.join("r", "s")
            assert service.stats()["plan_cache"]["hits"] == 1
            # dropping a joined relation invalidates its fingerprints
            service.drop_relation("other")
            service.create_relation("s2", [(9, [1]), (10, [1, 2])])
            service.join("r", "s2")
            service.drop_relation("s2")
            service.create_relation("s2", [(9, [1, 2, 3])])
            service.join("r", "s2")
            stats = service.stats()["plan_cache"]
            assert stats["misses"] == 3  # (r,s), (r,s2), (r,s2')
            assert stats["hits"] == 1

    def test_content_change_changes_the_fingerprint(self, loaded_db):
        """Even a same-name recreate with different statistics misses:
        the key is (sizes, densities, model), not just names."""
        with cached_service(loaded_db) as service:
            service.join("r", "s")
            service.join("r", "s")
            service.drop_relation("s")
            rows = [(i, frozenset({i % 5, i % 11})) for i in range(1, 80)]
            service.create_relation("s", rows)
            service.join("r", "s")
            stats = service.stats()["plan_cache"]
            assert stats["misses"] == 2
            assert stats["hits"] == 1

    def test_disabled_by_default(self, loaded_db):
        with QueryService(loaded_db, workers=1, backend="serial",
                          registry=MetricsRegistry()) as service:
            service.join("r", "s")
            assert "plan_cache" not in service.stats()

    def test_cache_works_on_sharded_databases(self, small_workload):
        lhs, rhs = small_workload
        with QueryService(None, shards=2, workers=1, backend="serial",
                          plan_cache_size=8,
                          registry=MetricsRegistry()) as service:
            service.create_relation("r", [(t.tid, t.elements) for t in lhs])
            service.create_relation("s", [(t.tid, t.elements) for t in rhs])
            first, __ = service.join("r", "s")
            again, __m = service.join("r", "s")
            assert again == first
            stats = service.stats()["plan_cache"]
            assert stats["hits"] == 1 and stats["misses"] == 1
