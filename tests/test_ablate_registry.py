"""The declarative component registry: schema, invariants, coverage."""

import pytest

from repro.ablate import (
    ANSWER_AFFECTING,
    ANSWER_EXACT,
    BASELINE_KNOBS,
    Component,
    all_components,
    get_component,
    register_component,
)
from repro.errors import ConfigurationError

#: The components the acceptance criteria name explicitly.
REQUIRED = {
    "checksums", "wal", "buffer-policy", "buffer-size", "hash-family",
    "firing-probability", "alternation", "drift-corrections",
    "plan-cache", "parallel-backend",
}


class TestBuiltinRegistry:
    def test_required_components_registered(self):
        names = {component.name for component in all_components()}
        assert REQUIRED <= names

    def test_at_least_eight_components(self):
        assert len(all_components()) >= 8

    def test_components_sorted_by_name(self):
        names = [component.name for component in all_components()]
        assert names == sorted(names)

    def test_invariance_classes(self):
        for component in all_components():
            assert component.invariance in (ANSWER_EXACT, ANSWER_AFFECTING)
        # Partitioning knobs legitimately move x/y; storage/engine must not.
        assert get_component("alternation").invariance == ANSWER_AFFECTING
        assert get_component("wal").invariance == ANSWER_EXACT
        assert get_component("parallel-backend").invariance == ANSWER_EXACT

    def test_every_variant_overrides_known_knobs(self):
        for component in all_components():
            for overrides in component.variants.values():
                assert set(overrides) <= set(BASELINE_KNOBS)

    def test_every_variant_differs_from_baseline(self):
        for component in all_components():
            for variant, overrides in component.variants.items():
                assert any(
                    BASELINE_KNOBS[knob] != value
                    for knob, value in overrides.items()
                ), f"{component.name}:{variant} is a no-op"

    def test_get_component_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown ablation"):
            get_component("flux-capacitor")


class TestRegistration:
    def test_rejects_unknown_invariance(self):
        with pytest.raises(ConfigurationError, match="invariance"):
            Component(name="x", layer="y", description="",
                      invariance="sometimes", variants={"off": {}})

    def test_rejects_unknown_knob(self):
        with pytest.raises(ConfigurationError, match="unknown knobs"):
            Component(name="x", layer="y", description="",
                      invariance=ANSWER_EXACT,
                      variants={"off": {"warp_drive": False}})

    def test_rejects_empty_variants(self):
        with pytest.raises(ConfigurationError, match="no variants"):
            Component(name="x", layer="y", description="",
                      invariance=ANSWER_EXACT, variants={})

    def test_identical_reregistration_is_idempotent(self):
        existing = get_component("checksums")
        assert register_component(existing) is existing

    def test_conflicting_reregistration_rejected(self):
        clone = Component(
            name="checksums", layer="storage", description="different",
            invariance=ANSWER_EXACT, variants={"off": {"durable": False}},
        )
        with pytest.raises(ConfigurationError, match="already registered"):
            register_component(clone)

    def test_to_dict_round_trips_schema(self):
        data = get_component("alternation").to_dict()
        assert data["name"] == "alternation"
        assert data["invariance"] == ANSWER_AFFECTING
        assert set(data["variants"]) == {"alpha-only", "beta-only"}
