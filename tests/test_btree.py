"""Tests for the paged B+tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BTreeError
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.pager import InMemoryDiskManager


def make_tree(page_size=512, capacity=32):
    disk = InMemoryDiskManager(page_size)
    pool = BufferPool(disk, capacity=capacity)
    return disk, pool, BTree.create(pool)


def key_of(value: int) -> bytes:
    return value.to_bytes(8, "big")


class TestBasics:
    def test_empty_tree(self):
        __, __, tree = make_tree()
        assert tree.get(b"missing") is None
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.height() == 1

    def test_insert_get(self):
        __, __, tree = make_tree()
        tree.insert(b"alpha", b"1")
        tree.insert(b"beta", b"2")
        assert tree.get(b"alpha") == b"1"
        assert tree.get(b"beta") == b"2"
        assert b"alpha" in tree
        assert b"gamma" not in tree

    def test_overwrite(self):
        __, __, tree = make_tree()
        tree.insert(b"k", b"old")
        tree.insert(b"k", b"new")
        assert tree.get(b"k") == b"new"
        assert len(tree) == 1

    def test_delete(self):
        __, __, tree = make_tree()
        tree.insert(b"k", b"v")
        assert tree.delete(b"k") is True
        assert tree.delete(b"k") is False
        assert tree.get(b"k") is None

    def test_ordered_iteration(self):
        __, __, tree = make_tree()
        for value in [5, 3, 9, 1, 7]:
            tree.insert(key_of(value), str(value).encode())
        assert [int.from_bytes(k, "big") for k, __ in tree.items()] == [1, 3, 5, 7, 9]

    def test_range_scan(self):
        __, __, tree = make_tree()
        for value in range(20):
            tree.insert(key_of(value), b"")
        keys = [int.from_bytes(k, "big") for k, __ in tree.scan(key_of(5), key_of(15))]
        assert keys == list(range(5, 15))

    def test_scan_open_bounds(self):
        __, __, tree = make_tree()
        for value in range(10):
            tree.insert(key_of(value), b"")
        assert len(list(tree.scan())) == 10
        assert len(list(tree.scan(start_key=key_of(7)))) == 3
        assert len(list(tree.scan(end_key=key_of(3)))) == 3

    def test_oversized_entry_rejected(self):
        __, __, tree = make_tree(page_size=256)
        with pytest.raises(BTreeError):
            tree.insert(b"k", bytes(500))


class TestSplits:
    def test_grows_beyond_one_page(self):
        __, __, tree = make_tree(page_size=256)
        for value in range(200):
            tree.insert(key_of(value), b"v" * 10)
        assert tree.height() >= 2
        assert len(tree) == 200
        assert [int.from_bytes(k, "big") for k, __ in tree.items()] == list(range(200))

    def test_reverse_insertion_order(self):
        __, __, tree = make_tree(page_size=256)
        for value in reversed(range(200)):
            tree.insert(key_of(value), b"v" * 10)
        assert [int.from_bytes(k, "big") for k, __ in tree.items()] == list(range(200))

    def test_mixed_value_sizes_split_by_bytes(self):
        """Regression: variable-size values (large portions next to small
        entries) must split by byte budget, not entry count."""
        __, __, tree = make_tree(page_size=512, capacity=64)
        rng = random.Random(3)
        reference = {}
        for step in range(400):
            key = key_of(rng.randrange(100))
            value = bytes(rng.randrange(0, 200))
            tree.insert(key, value)
            reference[key] = value
        assert list(tree.items()) == sorted(reference.items())

    def test_multiway_split_with_large_values(self):
        __, __, tree = make_tree(page_size=512)
        # Each value is near the per-entry limit; one leaf holds ~2 entries.
        big = (512 - 27) // 2 - 32
        for value in range(30):
            tree.insert(key_of(value), bytes(big))
        assert len(tree) == 30

    def test_leaf_chain_intact_after_splits(self):
        disk, pool, tree = make_tree(page_size=256)
        for value in range(300):
            tree.insert(key_of(value), b"x" * 8)
        # A full scan must visit every key exactly once, in order.
        seen = [int.from_bytes(k, "big") for k, __ in tree.items()]
        assert seen == list(range(300))


class TestPersistence:
    def test_reopen_from_meta_page(self):
        disk, pool, tree = make_tree()
        for value in range(50):
            tree.insert(key_of(value), str(value).encode())
        pool.flush_all()
        reopened = BTree(pool, tree.meta_page_id)
        assert reopened.get(key_of(25)) == b"25"
        assert len(reopened) == 50

    def test_two_trees_share_pool(self):
        disk = InMemoryDiskManager(512)
        pool = BufferPool(disk, capacity=32)
        first = BTree.create(pool)
        second = BTree.create(pool)
        first.insert(b"k", b"first")
        second.insert(b"k", b"second")
        assert first.get(b"k") == b"first"
        assert second.get(b"k") == b"second"

    def test_tiny_buffer_pool_still_correct(self):
        disk = InMemoryDiskManager(256)
        pool = BufferPool(disk, capacity=3)
        tree = BTree.create(pool)
        for value in range(150):
            tree.insert(key_of(value), b"v" * 12)
        assert [int.from_bytes(k, "big") for k, __ in tree.items()] == list(range(150))
        assert pool.stats.evictions > 0


class TestBulkCreate:
    def test_matches_inserted_tree(self):
        disk = InMemoryDiskManager(512)
        pool = BufferPool(disk, capacity=32)
        items = [(key_of(v), str(v).encode()) for v in range(500)]
        bulk = BTree.bulk_create(pool, items)
        inserted = BTree.create(pool)
        for key, value in items:
            inserted.insert(key, value)
        assert list(bulk.items()) == list(inserted.items())
        assert bulk.get(key_of(123)) == b"123"

    def test_empty_input(self):
        __, pool, __tree = make_tree()
        bulk = BTree.bulk_create(pool, [])
        assert list(bulk.items()) == []
        assert bulk.get(b"x") is None

    def test_single_item(self):
        __, pool, __tree = make_tree()
        bulk = BTree.bulk_create(pool, [(b"k", b"v")])
        assert bulk.get(b"k") == b"v"

    def test_unsorted_rejected(self):
        __, pool, __tree = make_tree()
        with pytest.raises(BTreeError):
            BTree.bulk_create(pool, [(b"b", b""), (b"a", b"")])
        with pytest.raises(BTreeError):
            BTree.bulk_create(pool, [(b"a", b""), (b"a", b"")])

    def test_bad_fill_fraction(self):
        __, pool, __tree = make_tree()
        with pytest.raises(BTreeError):
            BTree.bulk_create(pool, [], fill_fraction=0.0)

    def test_bulk_tree_is_compact(self):
        """Bulk loading packs pages fuller than random-order insertion
        (ascending insertion is already near-optimal thanks to the greedy
        multi-way split, so the comparison uses shuffled inserts)."""
        items = [(key_of(v), bytes(16)) for v in range(2000)]
        disk_a = InMemoryDiskManager(512)
        BTree.bulk_create(BufferPool(disk_a, capacity=64), items)
        shuffled = list(items)
        random.Random(5).shuffle(shuffled)
        disk_b = InMemoryDiskManager(512)
        inserted = BTree.create(BufferPool(disk_b, capacity=64))
        for key, value in shuffled:
            inserted.insert(key, value)
        assert disk_a.num_pages < disk_b.num_pages

    def test_mutable_after_bulk_load(self):
        __, pool, __tree = make_tree()
        bulk = BTree.bulk_create(
            pool, [(key_of(v), b"x") for v in range(0, 100, 2)]
        )
        bulk.insert(key_of(51), b"new")
        assert bulk.get(key_of(51)) == b"new"
        assert bulk.delete(key_of(50))
        assert len(list(bulk.items())) == 50

    def test_supports_generator_input(self):
        __, pool, __tree = make_tree()
        bulk = BTree.bulk_create(
            pool, ((key_of(v), b"") for v in range(100))
        )
        assert len(list(bulk.items())) == 100


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(min_value=0, max_value=400),
            st.binary(max_size=64),
        ),
        max_size=300,
    )
)
def test_btree_matches_dict_reference(operations):
    """Property: under random op sequences the tree behaves as a sorted dict."""
    __, __, tree = make_tree(page_size=256, capacity=16)
    reference: dict[bytes, bytes] = {}
    for op, raw_key, value in operations:
        key = key_of(raw_key)
        if op == "insert":
            tree.insert(key, value)
            reference[key] = value
        elif op == "delete":
            assert tree.delete(key) == (key in reference)
            reference.pop(key, None)
        else:
            assert tree.get(key) == reference.get(key)
    assert list(tree.items()) == sorted(reference.items())
