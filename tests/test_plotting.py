"""Tests for the ASCII figure renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import get_experiment
from repro.experiments.base import ExperimentResult
from repro.experiments.plotting import ascii_chart, plot_result


class TestAsciiChart:
    def test_markers_and_legend(self):
        chart = ascii_chart([1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]})
        assert "* up" in chart
        assert "+ down" in chart
        assert chart.count("\n") >= 17

    def test_extremes_plotted_at_corners(self):
        chart = ascii_chart([0, 10], {"line": [0.0, 1.0]}, width=20, height=5)
        lines = chart.splitlines()
        assert lines[0].rstrip().endswith("*")  # max at top right
        assert "*" in lines[4]  # min on the bottom row

    def test_log_x(self):
        chart = ascii_chart(
            [2, 4, 8, 1024], {"f": [1, 2, 3, 4]}, log_x=True, width=30
        )
        # With log spacing 2->4 and 4->8 are equal steps.  The legend line
        # (last) also contains the marker; exclude it.
        plot_lines = chart.splitlines()[:-1]
        columns = [line.index("*") for line in plot_lines if "*" in line]
        assert len(columns) == 4

    def test_constant_series_ok(self):
        chart = ascii_chart([1, 2], {"flat": [5.0, 5.0]})
        assert "flat" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([], {"x": []})
        with pytest.raises(ConfigurationError):
            ascii_chart([1], {})
        with pytest.raises(ConfigurationError):
            ascii_chart([1, 2], {"bad": [1]})
        with pytest.raises(ConfigurationError):
            ascii_chart([0, 1], {"f": [1, 2]}, log_x=True)


class TestPlotResult:
    def test_plots_registered_figure(self):
        text = plot_result(get_experiment("fig4")())
        assert "fig4" in text
        assert "comp_DCJ" in text

    def test_skips_non_numeric_columns(self):
        result = ExperimentResult(
            "demo", "demo", ["x", "y", "label"],
            rows=[{"x": 1, "y": 2.0, "label": "a"},
                  {"x": 2, "y": 3.0, "label": "b"}],
        )
        text = plot_result(result)
        assert "y" in text
        assert "label" not in text.splitlines()[-1]

    def test_errors(self):
        empty = ExperimentResult("e", "e", ["x"])
        with pytest.raises(ConfigurationError):
            plot_result(empty)
        textual = ExperimentResult(
            "t", "t", ["x", "y"], rows=[{"x": "a", "y": "b"}]
        )
        with pytest.raises(ConfigurationError):
            plot_result(textual)
        no_series = ExperimentResult(
            "n", "n", ["x", "y"], rows=[{"x": 1, "y": "text"}]
        )
        with pytest.raises(ConfigurationError):
            plot_result(no_series)
        with pytest.raises(ConfigurationError):
            plot_result(get_experiment("fig4")(), x_column="nope")
