"""Failure-injection tests: I/O errors must propagate, not corrupt.

These tests exercise :mod:`repro.storage.faults` (the first-class fault
subsystem that replaced the old ad-hoc ``FlakyDisk`` helper).  The storage
layers must surface injected failures as exceptions (never silently
return wrong data), and a store whose disk recovers must still serve
everything that was durably written before the fault.
"""

import pytest

from repro.errors import CorruptPageError
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.faults import (
    FaultInjectingDiskManager,
    InjectedIOError,
    SimulatedCrash,
    flip_bit,
)
from repro.storage.pager import InMemoryDiskManager


def flaky_disk(budget: int, page_size: int = 512) -> FaultInjectingDiskManager:
    disk = FaultInjectingDiskManager(InMemoryDiskManager(page_size))
    disk.fail_after(budget)
    return disk


def tree_with_budget(budget: int):
    disk = flaky_disk(budget)
    pool = BufferPool(disk, capacity=4)  # tiny pool -> real disk traffic
    tree = BTree.create(pool)
    return disk, pool, tree


class TestFaultPropagation:
    def test_insert_failure_raises(self):
        disk, pool, tree = tree_with_budget(budget=30)
        with pytest.raises(InjectedIOError):
            for value in range(10_000):
                tree.insert(value.to_bytes(8, "big"), bytes(40))

    def test_read_failure_raises(self):
        disk, pool, tree = tree_with_budget(budget=10**9)
        for value in range(50):
            tree.insert(value.to_bytes(8, "big"), bytes(40))
        pool.drop_all()
        disk.fail_after(0)
        with pytest.raises(InjectedIOError):
            tree.get((25).to_bytes(8, "big"))

    def test_failure_is_sticky_until_heal(self):
        disk = flaky_disk(budget=0)
        pool = BufferPool(disk, capacity=4)
        with pytest.raises(InjectedIOError):
            pool.new_page()
        assert disk.failing
        with pytest.raises(InjectedIOError):
            pool.new_page()
        disk.heal()
        frame = pool.new_page()
        pool.unpin(frame.page_id)

    def test_no_silent_wrong_answers_at_any_fault_point(self):
        """Sweep the fault point: every attempt either raises or the data
        read back is exactly what the reference dict holds."""
        for budget in (5, 17, 42, 99):
            disk, pool, tree = tree_with_budget(budget)
            reference = {}
            try:
                for value in range(200):
                    key = value.to_bytes(8, "big")
                    tree.insert(key, str(value).encode())
                    reference[key] = str(value).encode()
            except InjectedIOError:
                pass
            disk.heal()
            # Whatever is readable now must never contradict the reference.
            for key, expected in reference.items():
                stored = tree.get(key)
                if stored is not None:
                    # A fault mid-split may lose the newest inserts, but a
                    # present key must carry the correct value.
                    assert stored == expected or stored == b""


class TestRecoveryAfterHeal:
    def test_completed_writes_survive(self):
        disk, pool, tree = tree_with_budget(budget=10**9)
        for value in range(100):
            tree.insert(value.to_bytes(8, "big"), str(value).encode())
        pool.flush_all()
        pool.drop_all()  # pool is clean; dropping needs no I/O
        disk.fail_after(0)
        with pytest.raises(InjectedIOError):
            tree.get((42).to_bytes(8, "big"))  # cold read hits the fault
        disk.heal()
        reopened = BTree(pool, tree.meta_page_id)
        assert reopened.get((42).to_bytes(8, "big")) == b"42"
        assert len(list(reopened.items())) == 100

    def test_eviction_failure_preserves_dirty_data(self):
        """A failed writeback must keep the dirty frame cached so a later
        retry (after the disk heals) still persists the data."""
        disk = flaky_disk(budget=10**9, page_size=512)
        pool = BufferPool(disk, capacity=2)
        first = pool.new_page()
        first.data[0] = 0xAB
        pool.unpin(first.page_id, dirty=True)
        second = pool.new_page()
        pool.unpin(second.page_id, dirty=True)
        disk.fail_after(0)
        with pytest.raises(InjectedIOError):
            pool.new_page()  # needs an eviction -> writeback fails
        disk.heal()
        pool.flush_all()
        assert disk.read_page(first.page_id)[0] == 0xAB


class TestFaultModes:
    def test_stats_counted_exactly_once(self):
        # The wrapper shares the inner manager's stats object, so a
        # physical operation is never double counted (the old FlakyDisk
        # helper got this wrong).
        disk = flaky_disk(budget=10**9)
        page_id = disk.allocate_page()
        disk.write_page(page_id, bytes(disk.payload_size))
        disk.read_page(page_id)
        assert disk.stats is disk.inner.stats
        assert disk.stats.pages_allocated == 1
        assert disk.stats.page_writes == 1
        assert disk.stats.page_reads == 1

    def test_fail_on_page(self):
        disk = FaultInjectingDiskManager(InMemoryDiskManager(512))
        good = disk.allocate_page()
        bad = disk.allocate_page()
        disk.fail_on_page(bad, op="read")
        assert disk.read_page(good) == bytes(disk.payload_size)
        disk.write_page(bad, b"\x01" * disk.payload_size)  # writes still fine
        with pytest.raises(InjectedIOError):
            disk.read_page(bad)

    def test_fail_after_ops_filter(self):
        disk = FaultInjectingDiskManager(InMemoryDiskManager(512))
        page_id = disk.allocate_page()
        disk.fail_after(0, ops=("write",))
        assert disk.read_page(page_id) == bytes(disk.payload_size)
        with pytest.raises(InjectedIOError):
            disk.write_page(page_id, bytes(disk.payload_size))

    def test_crash_at_is_terminal(self):
        disk = FaultInjectingDiskManager(InMemoryDiskManager(512))
        page_id = disk.allocate_page()
        disk.crash_at(disk.io_index)  # die on the very next physical I/O
        with pytest.raises(SimulatedCrash):
            disk.read_page(page_id)
        # Still dead: the crash point stays armed at/below the clock.
        with pytest.raises(SimulatedCrash):
            disk.read_page(page_id)

    def test_external_io_advances_the_same_clock(self):
        disk = FaultInjectingDiskManager(InMemoryDiskManager(512))
        page_id = disk.allocate_page()
        before = disk.io_index
        disk.external_io("wal-append")
        assert disk.io_index == before + 1
        disk.crash_at(disk.io_index)
        with pytest.raises(SimulatedCrash):
            disk.external_io("wal-commit")
        with pytest.raises(SimulatedCrash):
            disk.read_page(page_id)

    def test_torn_write_detected_by_checksum(self):
        disk = FaultInjectingDiskManager(InMemoryDiskManager(512))
        page_id = disk.allocate_page()
        disk.write_page(page_id, b"\x11" * disk.payload_size)
        disk.torn_write_at(disk.io_index)
        with pytest.raises(SimulatedCrash):
            disk.write_page(page_id, b"\x22" * disk.payload_size)
        # "Reboot": a fresh fault layer over the same physical bytes.
        rebooted = FaultInjectingDiskManager(disk.inner)
        with pytest.raises(CorruptPageError):
            rebooted.read_page(page_id)

    def test_flip_bit_detected_by_checksum(self):
        disk = FaultInjectingDiskManager(InMemoryDiskManager(512))
        page_id = disk.allocate_page()
        disk.write_page(page_id, b"\x33" * disk.payload_size)
        disk.flip_bit(page_id, bit_index=1000)
        with pytest.raises(CorruptPageError):
            disk.read_page(page_id)

    def test_module_level_flip_bit(self):
        inner = InMemoryDiskManager(512)
        disk = FaultInjectingDiskManager(inner)
        page_id = disk.allocate_page()
        disk.write_page(page_id, b"\x44" * disk.payload_size)
        flip_bit(inner, page_id, bit_index=3)
        with pytest.raises(CorruptPageError):
            disk.read_page(page_id)
