"""Failure-injection tests: I/O errors must propagate, not corrupt.

A wrapping disk manager raises after a configurable number of physical
operations.  The storage layers must surface the failure as an exception
(never silently return wrong data), and a store whose disk recovers must
still serve everything that was durably written before the fault.
"""

import pytest

from repro.errors import StorageError
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.pager import DiskManager, InMemoryDiskManager


class InjectedIOError(StorageError):
    """The fault raised by the flaky disk."""


class FlakyDisk(DiskManager):
    """Delegates to an in-memory disk, failing after ``budget`` I/Os."""

    def __init__(self, budget: int, page_size: int = 512):
        super().__init__(page_size)
        self._inner = InMemoryDiskManager(page_size)
        self.budget = budget
        self.failing = False

    def _spend(self):
        if self.failing:
            raise InjectedIOError("injected disk failure")
        self.budget -= 1
        if self.budget < 0:
            self.failing = True
            raise InjectedIOError("injected disk failure")

    @property
    def num_pages(self):
        return self._inner.num_pages

    def _grow(self):
        self._spend()
        page_id = self._inner._grow()
        self.stats.pages_allocated += 1
        return page_id

    def read_page(self, page_id):
        self._spend()
        self.stats.page_reads += 1
        return self._inner.read_page(page_id)

    def write_page(self, page_id, data):
        self._spend()
        self.stats.page_writes += 1
        return self._inner.write_page(page_id, data)

    def heal(self):
        self.failing = False
        self.budget = 10**9


def tree_with_budget(budget: int):
    disk = FlakyDisk(budget)
    pool = BufferPool(disk, capacity=4)  # tiny pool -> real disk traffic
    tree = BTree.create(pool)
    return disk, pool, tree


class TestFaultPropagation:
    def test_insert_failure_raises(self):
        disk, pool, tree = tree_with_budget(budget=30)
        with pytest.raises(InjectedIOError):
            for value in range(10_000):
                tree.insert(value.to_bytes(8, "big"), bytes(40))

    def test_read_failure_raises(self):
        disk, pool, tree = tree_with_budget(budget=10**9)
        for value in range(50):
            tree.insert(value.to_bytes(8, "big"), bytes(40))
        pool.drop_all()
        disk.budget = 0
        with pytest.raises(InjectedIOError):
            tree.get((25).to_bytes(8, "big"))

    def test_no_silent_wrong_answers_at_any_fault_point(self):
        """Sweep the fault point: every attempt either raises or the data
        read back is exactly what the reference dict holds."""
        for budget in (5, 17, 42, 99):
            disk, pool, tree = tree_with_budget(budget)
            reference = {}
            try:
                for value in range(200):
                    key = value.to_bytes(8, "big")
                    tree.insert(key, str(value).encode())
                    reference[key] = str(value).encode()
            except InjectedIOError:
                pass
            disk.heal()
            # Whatever is readable now must never contradict the reference.
            for key, expected in reference.items():
                try:
                    stored = tree.get(key)
                except InjectedIOError:  # pragma: no cover - healed disk
                    raise
                if stored is not None:
                    # A fault mid-split may lose the newest inserts, but a
                    # present key must carry the correct value.
                    assert stored == expected or stored == b""


class TestRecoveryAfterHeal:
    def test_completed_writes_survive(self):
        disk, pool, tree = tree_with_budget(budget=10**9)
        for value in range(100):
            tree.insert(value.to_bytes(8, "big"), str(value).encode())
        pool.flush_all()
        pool.drop_all()  # pool is clean; dropping needs no I/O
        disk.budget = 0
        disk.failing = True
        with pytest.raises(InjectedIOError):
            tree.get((42).to_bytes(8, "big"))  # cold read hits the fault
        disk.heal()
        reopened = BTree(pool, tree.meta_page_id)
        assert reopened.get((42).to_bytes(8, "big")) == b"42"
        assert len(list(reopened.items())) == 100

    def test_eviction_failure_preserves_dirty_data(self):
        """A failed writeback must keep the dirty frame cached so a later
        retry (after the disk heals) still persists the data."""
        disk = FlakyDisk(budget=10**9, page_size=512)
        pool = BufferPool(disk, capacity=2)
        first = pool.new_page()
        first.data[0] = 0xAB
        pool.unpin(first.page_id, dirty=True)
        second = pool.new_page()
        pool.unpin(second.page_id, dirty=True)
        disk.budget = 0
        disk.failing = True
        with pytest.raises(InjectedIOError):
            pool.new_page()  # needs an eviction -> writeback fails
        disk.heal()
        pool.flush_all()
        assert disk.read_page(first.page_id)[0] == 0xAB
