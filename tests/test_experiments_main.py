"""Tests for the ``python -m repro.experiments`` entry point."""

import pytest

from repro.experiments.__main__ import main


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig4" in output
        assert "scorecard" in output

    def test_single_experiment(self, capsys):
        assert main(["fig4"]) == 0
        assert "Comparison factor" in capsys.readouterr().out

    def test_out_writes_artifacts(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["fig6", "--out", out_dir]) == 0
        assert (tmp_path / "results" / "fig6.txt").exists()
        tsv = (tmp_path / "results" / "fig6.tsv").read_text()
        assert tsv.splitlines()[0].startswith("k\t")

    def test_scale_flag_passes_through(self, capsys):
        assert main(["fig8", "--scale", "0.02"]) == 0
        assert "scale 0.02" in capsys.readouterr().out

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_experiment_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["fig99"])
