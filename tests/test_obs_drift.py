"""Tests for the model-drift layer (repro.obs.drift)."""

import json

import pytest

from repro.analysis.timemodel import PAPER_TIME_MODEL, CalibrationSample
from repro.core.metrics import JoinMetrics
from repro.errors import ConfigurationError
from repro.obs.drift import (
    DRIFT_KEYS,
    DriftRecord,
    append_drift_jsonl,
    calibration_residuals,
    compute_drift,
    read_drift_jsonl,
    record_drift,
    summarize_drift,
)
from repro.obs.registry import MetricsRegistry


def make_metrics(**overrides):
    metrics = JoinMetrics(algorithm="DCJ", num_partitions=8,
                          r_size=60, s_size=90)
    metrics.signature_comparisons = 1000
    metrics.replicated_signatures = 200
    metrics.partitioning.seconds = 0.25
    metrics.joining.seconds = 0.5
    metrics.verification.seconds = 0.25
    for key, value in overrides.items():
        setattr(metrics, key, value)
    return metrics


def make_record(errors=None):
    return DriftRecord(
        timestamp=1234.5, algorithm="DCJ", k=8, r_size=60, s_size=90,
        predicted={"seconds": 0.5, "comparisons": 900, "replicated": 200},
        observed={"seconds": 1.0, "comparisons": 1000, "replicated": 200},
        errors=errors if errors is not None else {
            "seconds": 0.5, "comparisons": 0.1, "replicated": 0.0,
        },
    )


class TestComputeDrift:
    def test_signed_errors_per_key(self):
        prediction = {"seconds": 0.5, "comparisons": 900, "replicated": 100}
        record = compute_drift(prediction, make_metrics(), wall=lambda: 7.0)
        assert record.timestamp == 7.0
        assert record.algorithm == "DCJ" and record.k == 8
        # total observed time 1.0s vs predicted 0.5s → model undershot.
        assert record.errors["seconds"] == pytest.approx(0.5)
        assert record.errors["comparisons"] == pytest.approx(0.1)
        assert record.errors["replicated"] == pytest.approx(0.5)

    def test_accepts_metrics_style_key_aliases(self):
        prediction = {
            "seconds": 1.0,
            "signature_comparisons": 1000,
            "replicated_signatures": 200,
        }
        record = compute_drift(prediction, make_metrics(), wall=lambda: 0.0)
        assert record.errors["comparisons"] == 0.0
        assert record.errors["replicated"] == 0.0

    def test_missing_prediction_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="missing"):
            compute_drift({"seconds": 1.0}, make_metrics(), wall=lambda: 0.0)

    def test_zero_observation_handling(self):
        metrics = make_metrics(replicated_signatures=0)
        record = compute_drift(
            {"seconds": 1.0, "comparisons": 1000, "replicated": 50},
            metrics, wall=lambda: 0.0,
        )
        # Observed zero with non-zero prediction: no meaningful ratio.
        assert record.errors["replicated"] is None


class TestRecordDrift:
    def test_publishes_counter_gauges_and_histograms(self):
        registry = MetricsRegistry()
        record_drift(make_record(), registry=registry)
        assert registry.get("setjoin_drift_records_total").value == 1
        for key in DRIFT_KEYS:
            gauge = registry.get(f"setjoin_drift_last_{key}_relative_error")
            assert gauge is not None, key
            histogram = registry.get(f"setjoin_drift_{key}_abs_error")
            assert histogram.count == 1, key
        assert registry.get(
            "setjoin_drift_last_seconds_relative_error"
        ).value == pytest.approx(0.5)

    def test_histogram_sees_absolute_errors(self):
        registry = MetricsRegistry()
        record_drift(make_record(errors={"seconds": -0.5}), registry=registry)
        assert registry.get(
            "setjoin_drift_seconds_abs_error"
        ).sum == pytest.approx(0.5)
        # The gauge keeps the sign (last join over-predicted).
        assert registry.get(
            "setjoin_drift_last_seconds_relative_error"
        ).value == pytest.approx(-0.5)

    def test_none_errors_are_skipped(self):
        registry = MetricsRegistry()
        record_drift(
            make_record(errors={"seconds": None, "comparisons": 0.1}),
            registry=registry,
        )
        assert registry.get("setjoin_drift_last_seconds_relative_error") is None
        assert registry.get(
            "setjoin_drift_last_comparisons_relative_error"
        ).value == pytest.approx(0.1)


class TestJsonlHistory:
    def test_append_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "drift.jsonl")
        append_drift_jsonl(make_record(), path)
        append_drift_jsonl(make_record(), path)
        records = read_drift_jsonl(path)
        assert len(records) == 2
        assert records[0].to_dict() == make_record().to_dict()

    def test_lines_are_json_objects(self, tmp_path):
        path = str(tmp_path / "drift.jsonl")
        append_drift_jsonl(make_record(), path)
        with open(path) as handle:
            (line,) = [l for l in handle if l.strip()]
        document = json.loads(line)
        assert document["algorithm"] == "DCJ"
        assert document["errors"]["seconds"] == 0.5

    def test_malformed_record_is_a_configuration_error(self, tmp_path):
        path = str(tmp_path / "drift.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"timestamp": 1.0}) + "\n")
        with pytest.raises(ConfigurationError, match="malformed drift record"):
            read_drift_jsonl(path)

    def test_from_dict_rejects_non_dict_fields(self):
        document = make_record().to_dict()
        document["predicted"] = "not-a-dict"
        with pytest.raises(ConfigurationError, match="malformed drift record"):
            DriftRecord.from_dict(document)


class TestSummarizeDrift:
    def test_mean_abs_bias_and_max(self):
        records = [
            make_record(errors={"seconds": 0.2}),
            make_record(errors={"seconds": -0.4}),
        ]
        summary = summarize_drift(records)
        assert summary["records"] == 2
        assert summary["seconds"]["mean_abs_error"] == pytest.approx(0.3)
        assert summary["seconds"]["bias"] == pytest.approx(-0.1)
        assert summary["seconds"]["max_abs_error"] == pytest.approx(0.4)

    def test_keys_without_errors_are_none(self):
        summary = summarize_drift([make_record(errors={"seconds": 0.1})])
        assert summary["comparisons"] is None
        assert summary["replicated"] is None

    def test_empty_history(self):
        summary = summarize_drift([])
        assert summary["records"] == 0
        assert all(summary[key] is None for key in DRIFT_KEYS)


class TestCalibrationResiduals:
    def test_residuals_match_the_model(self):
        sample = CalibrationSample(
            comparisons=10_000, replicated_signatures=500,
            num_partitions=16, seconds=0.02,
        )
        (row,) = calibration_residuals(PAPER_TIME_MODEL, [sample])
        predicted = PAPER_TIME_MODEL.predict(10_000, 500, 16)
        assert row["predicted_seconds"] == pytest.approx(predicted)
        assert row["observed_seconds"] == 0.02
        assert row["relative_error"] == pytest.approx(
            (0.02 - predicted) / 0.02
        )

    def test_perfect_prediction_has_zero_residual(self):
        predicted = PAPER_TIME_MODEL.predict(10_000, 500, 16)
        sample = CalibrationSample(
            comparisons=10_000, replicated_signatures=500,
            num_partitions=16, seconds=predicted,
        )
        (row,) = calibration_residuals(PAPER_TIME_MODEL, [sample])
        assert row["relative_error"] == pytest.approx(0.0)


class TestRotateDriftJsonl:
    """Startup rotation: size caps and environment fingerprinting."""

    def write_history(self, path, n):
        for __ in range(n):
            append_drift_jsonl(make_record(), str(path))

    def test_missing_file_writes_meta_sidecar_only(self, tmp_path):
        from repro.obs.drift import rotate_drift_jsonl

        path = tmp_path / "drift.jsonl"
        out = rotate_drift_jsonl(str(path))
        assert out == {"archived": False, "rotated": False,
                       "kept": 0, "dropped": 0}
        assert not path.exists()
        meta = json.loads((tmp_path / "drift.jsonl.meta.json").read_text())
        assert set(meta["fingerprint"]) == {
            "platform", "machine", "python", "cpus"
        }

    def test_small_file_under_cap_untouched(self, tmp_path):
        from repro.obs.drift import rotate_drift_jsonl

        path = tmp_path / "drift.jsonl"
        self.write_history(path, 5)
        before = path.read_text()
        out = rotate_drift_jsonl(str(path), max_bytes=1 << 20)
        assert not out["rotated"]
        assert path.read_text() == before

    def test_oversize_file_compacts_to_newest_records(self, tmp_path):
        from repro.obs.drift import rotate_drift_jsonl

        path = tmp_path / "drift.jsonl"
        self.write_history(path, 50)
        out = rotate_drift_jsonl(str(path), max_bytes=100, keep=10)
        assert out["rotated"]
        assert out["kept"] == 10 and out["dropped"] == 40
        assert len(read_drift_jsonl(str(path))) == 10

    def test_compaction_sheds_malformed_lines(self, tmp_path):
        from repro.obs.drift import rotate_drift_jsonl

        path = tmp_path / "drift.jsonl"
        self.write_history(path, 5)
        with open(path, "a") as handle:
            handle.write("{not json}\n")
            handle.write('{"timestamp": 1}\n')  # missing required keys
        rotate_drift_jsonl(str(path), max_bytes=10, keep=100)
        assert len(read_drift_jsonl(str(path))) == 5  # all valid, no junk

    def test_foreign_fingerprint_archives_the_history(self, tmp_path):
        from repro.obs.drift import environment_fingerprint, rotate_drift_jsonl

        path = tmp_path / "drift.jsonl"
        self.write_history(path, 3)
        # Stamp the sidecar as if written on another machine.
        alien = dict(environment_fingerprint(), machine="vax780")
        (tmp_path / "drift.jsonl.meta.json").write_text(
            json.dumps({"fingerprint": alien})
        )
        out = rotate_drift_jsonl(str(path))
        assert out["archived"]
        assert not path.exists()  # moved aside, not silently reused
        assert len(read_drift_jsonl(str(path) + ".stale")) == 3
        # The sidecar now names the current environment.
        meta = json.loads((tmp_path / "drift.jsonl.meta.json").read_text())
        assert meta["fingerprint"] == environment_fingerprint()

    def test_matching_fingerprint_keeps_the_history(self, tmp_path):
        from repro.obs.drift import rotate_drift_jsonl

        path = tmp_path / "drift.jsonl"
        self.write_history(path, 3)
        rotate_drift_jsonl(str(path))   # stamps the current fingerprint
        out = rotate_drift_jsonl(str(path))  # second startup: same machine
        assert not out["archived"]
        assert len(read_drift_jsonl(str(path))) == 3
