"""Shared JSONL rotation with fingerprint sidecars (repro.obs.rotation)."""

import json
import os

from repro.obs.drift import rotate_drift_jsonl
from repro.obs.rotation import environment_fingerprint, rotate_jsonl


def write_lines(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestEnvironmentFingerprint:
    def test_has_the_invalidating_dimensions(self):
        fingerprint = environment_fingerprint()
        assert set(fingerprint) == {"platform", "machine", "python", "cpus"}
        assert fingerprint["cpus"] >= 1

    def test_is_stable_within_a_process(self):
        assert environment_fingerprint() == environment_fingerprint()


class TestRotateJsonl:
    def test_missing_file_writes_only_the_sidecar(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        out = rotate_jsonl(path, wall=lambda: 123.0)
        assert out == {
            "archived": False, "rotated": False, "kept": 0, "dropped": 0,
        }
        assert not os.path.exists(path)
        with open(path + ".meta.json") as handle:
            meta = json.load(handle)
        assert meta["stamped"] == 123.0
        assert meta["fingerprint"] == environment_fingerprint()

    def test_small_file_is_untouched(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        write_lines(path, [{"n": i} for i in range(5)])
        before = open(path).read()
        out = rotate_jsonl(path, max_bytes=1 << 20)
        assert out["rotated"] is False
        assert open(path).read() == before

    def test_oversize_file_keeps_newest(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        write_lines(path, [{"n": i} for i in range(100)])
        out = rotate_jsonl(path, max_bytes=10, keep=7)
        assert out["rotated"] is True
        assert out["kept"] == 7
        assert out["dropped"] == 93
        kept = [json.loads(line) for line in open(path)]
        assert [record["n"] for record in kept] == list(range(93, 100))

    def test_compaction_drops_malformed_lines(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"n": 1}) + "\n")
            handle.write("not json\n")
            handle.write(json.dumps([1, 2]) + "\n")  # not an object
            handle.write(json.dumps({"n": 2}) + "\n")
        rotate_jsonl(path, max_bytes=1, keep=100)
        kept = [json.loads(line) for line in open(path)]
        assert kept == [{"n": 1}, {"n": 2}]

    def test_parse_hook_canonicalizes(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        write_lines(path, [{"n": i} for i in range(3)])

        def parse(line):
            record = json.loads(line)
            if record["n"] == 1:
                raise ValueError("rejected")
            return {"n": record["n"] * 10}

        rotate_jsonl(path, max_bytes=1, keep=100, parse=parse)
        kept = [json.loads(line) for line in open(path)]
        assert kept == [{"n": 0}, {"n": 20}]

    def test_foreign_fingerprint_archives_to_stale(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        write_lines(path, [{"n": 1}])
        rotate_jsonl(path, fingerprint={"host": "other-machine"})
        out = rotate_jsonl(path, fingerprint={"host": "this-machine"})
        assert out["archived"] is True
        assert not os.path.exists(path)
        assert os.path.exists(path + ".stale")
        stale = [json.loads(line) for line in open(path + ".stale")]
        assert stale == [{"n": 1}]

    def test_matching_fingerprint_keeps_history(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        write_lines(path, [{"n": 1}])
        rotate_jsonl(path, fingerprint={"host": "same"})
        out = rotate_jsonl(path, fingerprint={"host": "same"})
        assert out["archived"] is False
        assert os.path.exists(path)

    def test_unreadable_meta_is_treated_as_absent(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        write_lines(path, [{"n": 1}])
        with open(path + ".meta.json", "w") as handle:
            handle.write("garbage")
        out = rotate_jsonl(path, fingerprint={"host": "a"})
        assert out["archived"] is False
        assert os.path.exists(path)


class TestDriftDelegation:
    def test_rotate_drift_jsonl_uses_shared_rotation(self, tmp_path):
        path = str(tmp_path / "drift.jsonl")
        record = {
            "timestamp": 0.0, "algorithm": "PSJ", "k": 8,
            "r_size": 10, "s_size": 10,
            "predicted": {}, "observed": {}, "errors": {},
        }
        with open(path, "w") as handle:
            for __ in range(50):
                handle.write(json.dumps(record) + "\n")
            handle.write("not a drift record\n")
        out = rotate_drift_jsonl(path, max_bytes=10, keep=5)
        assert out["rotated"] is True
        assert out["kept"] == 5
        assert os.path.exists(path + ".meta.json")
        kept = [json.loads(line) for line in open(path)]
        assert len(kept) == 5
        assert all(line["algorithm"] == "PSJ" for line in kept)


class TestConcurrentWriters:
    """The service appends trace/capture lines from a lock-guarded
    handle, but nothing stops several processes (or a service plus a
    tail -f style tool) from appending to the same history.  Rotation
    must stay safe against whole-line interleavings: every surviving
    record is intact and the newest-K window is honored."""

    def test_interleaved_appends_rotate_cleanly(self, tmp_path):
        import threading

        path = str(tmp_path / "trace.jsonl")
        barrier = threading.Barrier(4)
        errors = []

        def writer(worker: int) -> None:
            try:
                barrier.wait()
                for sequence in range(100):
                    # One os-level write per line: the POSIX append
                    # guarantee the service's locked handle also relies
                    # on, line-buffered so lines land whole.
                    with open(path, "a") as handle:
                        handle.write(json.dumps(
                            {"worker": worker, "sequence": sequence}
                        ) + "\n")
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        out = rotate_jsonl(path, max_bytes=10, keep=50)
        assert out["rotated"] is True
        assert out["kept"] == 50
        kept = [json.loads(line) for line in open(path)]
        assert len(kept) == 50
        # Every surviving line is a whole record with both fields.
        assert all(set(record) == {"worker", "sequence"} for record in kept)
        # Per-writer order survives compaction (newest-K is a suffix of
        # the appended stream, and each writer appended in order).
        for worker in range(4):
            sequences = [
                record["sequence"] for record in kept
                if record["worker"] == worker
            ]
            assert sequences == sorted(sequences)

    def test_rotation_during_live_appends_loses_no_sidecar(self, tmp_path):
        import threading

        path = str(tmp_path / "trace.jsonl")
        write_lines(path, [{"n": index} for index in range(200)])
        stop = threading.Event()

        def churn() -> None:
            while not stop.is_set():
                with open(path, "a") as handle:
                    handle.write(json.dumps({"n": -1}) + "\n")

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            for __ in range(5):
                rotate_jsonl(path, max_bytes=10, keep=20)
        finally:
            stop.set()
            thread.join()
        assert os.path.exists(path + ".meta.json")
        # Whatever survived the concurrent churn still parses per line.
        for line in open(path):
            assert isinstance(json.loads(line), dict)
