"""Tests for the in-memory factor simulator."""

import pytest

from repro.analysis.simulate import (
    FactorObservation,
    make_partitioner,
    monte_carlo_selectivity,
    simulate_factors,
)
from repro.core.dcj import DCJPartitioner
from repro.core.lsj import LSJPartitioner
from repro.core.psj import PSJPartitioner
from repro.data.workloads import uniform_workload
from repro.errors import ConfigurationError


class TestMakePartitioner:
    def test_builds_each_kind(self):
        assert isinstance(make_partitioner("PSJ", 8, 10, 20), PSJPartitioner)
        assert isinstance(make_partitioner("DCJ", 8, 10, 20), DCJPartitioner)
        assert isinstance(make_partitioner("LSJ", 8, 10, 20), LSJPartitioner)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_partitioner("SHJ", 8, 10, 20)


class TestSimulateFactors:
    def test_observation_fields(self):
        lhs, rhs = uniform_workload(
            200, 200, 10, 20, domain_size=50_000, seed=2
        ).materialize()
        observation = simulate_factors("DCJ", lhs, rhs, 16, seed=1)
        assert observation.algorithm == "DCJ"
        assert observation.k == 16
        assert 0 < observation.measured_comparison <= 1
        assert observation.measured_replication >= 1
        assert observation.comparison_error >= 0
        assert observation.replication_error >= 0

    def test_defaults_use_measured_cardinalities(self):
        lhs, rhs = uniform_workload(
            100, 100, 10, 20, domain_size=50_000, seed=2
        ).materialize()
        default = simulate_factors("PSJ", lhs, rhs, 8, seed=1)
        explicit = simulate_factors(
            "PSJ", lhs, rhs, 8, seed=1, theta_r=10, theta_s=20
        )
        assert default.predicted_comparison == pytest.approx(
            explicit.predicted_comparison, rel=1e-6
        )

    def test_zero_measured_errors(self):
        observation = FactorObservation("DCJ", 8, 0.0, 0.0, 0.5, 1.5)
        assert observation.comparison_error == 0.0
        assert observation.replication_error == 0.0


class TestMonteCarlo:
    def test_subset_always_when_equal_domain(self):
        assert monte_carlo_selectivity(3, 3, 3, trials=100) == 1.0

    def test_seeded_reproducibility(self):
        a = monte_carlo_selectivity(2, 4, 10, trials=2000, seed=5)
        b = monte_carlo_selectivity(2, 4, 10, trials=2000, seed=5)
        assert a == b
