"""Tests for closed-loop calibration (repro.obs.adaptive).

The acceptance scenario for the loop: a clock that makes every join look
twice as slow as the model predicts must, after ≥20 joins of accumulated
drift, trigger a refit that cuts the mean absolute prediction error by
at least half — and the drift-aware optimizer must be able to flip its
DCJ/PSJ choice — while the executed joins stay bit-identical (pairs and
the paper's x/y counters) with adaptation on or off.
"""

import json
import time

import pytest

from repro.analysis.timemodel import PAPER_TIME_MODEL, TimeModel
from repro.core.api import containment_join
from repro.core.optimizer import choose_plan, resolve_drift_corrections
from repro.errors import ConfigurationError
from repro.obs.adaptive import (
    ModelStore,
    ModelVersion,
    Recalibrator,
    drift_corrections,
    publish_model,
    samples_from_history,
)
from repro.obs.drift import DriftRecord, append_drift_jsonl
from repro.obs.registry import MetricsRegistry


def make_record(
    algorithm="DCJ",
    k=16,
    x=200_000.0,
    y=30_000.0,
    factor=2.0,
    model=PAPER_TIME_MODEL,
    timestamp=0.0,
):
    """A drift record whose observed wall time is ``factor`` × predicted."""
    predicted_seconds = model.predict(x, y, k)
    predicted = {"seconds": predicted_seconds, "comparisons": x,
                 "replicated": y}
    observed = {"seconds": predicted_seconds * factor, "comparisons": x,
                "replicated": y}
    errors = {
        key: (observed[key] - predicted[key]) / observed[key]
        if observed[key] else 0.0
        for key in predicted
    }
    return DriftRecord(
        timestamp=timestamp, algorithm=algorithm, k=k,
        r_size=10_000, s_size=10_000,
        predicted=predicted, observed=observed, errors=errors,
    )


def skewed_history(count=24, factor=2.0, algorithm="DCJ"):
    """``count`` varied workloads, all observed ``factor`` × predicted."""
    shapes = [
        (120_000.0, 20_000.0, 8),
        (240_000.0, 35_000.0, 16),
        (400_000.0, 60_000.0, 32),
        (90_000.0, 15_000.0, 64),
    ]
    return [
        make_record(
            algorithm=algorithm,
            x=shapes[i % len(shapes)][0] * (1.0 + 0.01 * i),
            y=shapes[i % len(shapes)][1] * (1.0 + 0.01 * i),
            k=shapes[i % len(shapes)][2],
            factor=factor,
            timestamp=float(i),
        )
        for i in range(count)
    ]


class TestSamplesFromHistory:
    def test_converts_observed_quantities(self):
        samples = samples_from_history([make_record(x=1000.0, y=100.0, k=4)])
        assert len(samples) == 1
        sample = samples[0]
        assert sample.comparisons == 1000.0
        assert sample.replicated_signatures == 100.0
        assert sample.num_partitions == 4
        assert sample.seconds == pytest.approx(
            2.0 * PAPER_TIME_MODEL.predict(1000.0, 100.0, 4)
        )

    def test_skips_unusable_records(self):
        bad = make_record()
        bad.observed["seconds"] = 0.0
        missing = make_record()
        del missing.observed["comparisons"]
        assert samples_from_history([bad, missing]) == []


class TestModelStore:
    def test_in_memory_falls_back_to_base_model(self):
        store = ModelStore()
        assert store.active == PAPER_TIME_MODEL
        assert store.active_version == 0

    def test_add_version_advances_active(self):
        store = ModelStore()
        fitted = TimeModel(1e-6, 2e-6, 0.7)
        version = store.add_version(
            fitted, records=24, window=200,
            mean_abs_error_before=0.5, mean_abs_error_after=0.01,
            wall=lambda: 123.0,
        )
        assert version.version == 1
        assert version.fitted_at == 123.0
        assert store.active == fitted
        assert store.active_version == 1

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "models.json")
        store = ModelStore(path)
        fitted = TimeModel(1e-6, 2e-6, 0.7)
        store.add_version(
            fitted, records=24, window=200,
            mean_abs_error_before=0.5, mean_abs_error_after=0.01,
            residuals=[0.01, -0.02], wall=lambda: 1.0,
        )
        reloaded = ModelStore(path)
        assert reloaded.active == fitted
        assert reloaded.active_version == 1
        assert reloaded.versions[0].residuals == (0.01, -0.02)
        assert reloaded.versions[0].mean_abs_error_before == 0.5

    def test_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "models.json"
        path.write_text(json.dumps({"schema": 99, "versions": []}))
        with pytest.raises(ConfigurationError):
            ModelStore(str(path))

    def test_malformed_version_record_raises(self, tmp_path):
        path = tmp_path / "models.json"
        path.write_text(json.dumps(
            {"schema": 1, "versions": [{"version": 1}]}
        ))
        with pytest.raises(ConfigurationError):
            ModelStore(str(path))


class TestPublishModel:
    def test_gauges_expose_active_coefficients(self):
        registry = MetricsRegistry()
        publish_model(TimeModel(1.0, 2.0, 3.0), 7, registry=registry)
        values = registry.snapshot()
        assert values["setjoin_model_c1"]["value"] == 1.0
        assert values["setjoin_model_c2"]["value"] == 2.0
        assert values["setjoin_model_c3"]["value"] == 3.0
        assert values["setjoin_model_version"]["value"] == 7


class TestRecalibrator:
    def test_thin_history_does_not_refit(self):
        recalibrator = Recalibrator(registry=MetricsRegistry())
        outcome = recalibrator.maybe_recalibrate(skewed_history(count=5))
        assert not outcome.refit
        assert "too thin" in outcome.reason

    def test_bias_within_threshold_does_not_refit(self):
        recalibrator = Recalibrator(registry=MetricsRegistry())
        outcome = recalibrator.maybe_recalibrate(
            skewed_history(count=24, factor=1.05)
        )
        assert not outcome.refit
        assert "within threshold" in outcome.reason
        assert recalibrator.store.active_version == 0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            Recalibrator(bias_threshold=0.0)
        with pytest.raises(ConfigurationError):
            Recalibrator(window=5, min_records=20)

    def test_two_times_skew_triggers_refit_cutting_mae(self):
        """≥20 joins under a 2× clock: refit must halve the error."""
        registry = MetricsRegistry()
        recalibrator = Recalibrator(registry=registry)
        history = skewed_history(count=24, factor=2.0)
        outcome = recalibrator.maybe_recalibrate(history, wall=lambda: 5.0)

        assert outcome.refit, outcome.reason
        version = outcome.version
        assert version.version == 1
        assert version.mean_abs_error_before == pytest.approx(0.5, abs=1e-6)
        assert version.mean_abs_error_after <= 0.5 * version.mean_abs_error_before
        # The fit recovers the true machine: exactly 2× the paper's
        # linear coefficients (the exponent c3 is scale-free).
        assert version.model.c1 == pytest.approx(
            2.0 * PAPER_TIME_MODEL.c1, rel=1e-3
        )
        assert version.model.c2 == pytest.approx(
            2.0 * PAPER_TIME_MODEL.c2, rel=1e-3
        )

        values = registry.snapshot()
        assert values["setjoin_model_refits_total"]["value"] == 1
        assert values["setjoin_model_version"]["value"] == 1
        assert values["setjoin_model_c1"]["value"] == pytest.approx(
            version.model.c1
        )

    def test_refitted_model_generalizes_to_held_out_joins(self):
        """The MAE cut holds on joins the fit never saw."""
        recalibrator = Recalibrator(registry=MetricsRegistry())
        outcome = recalibrator.maybe_recalibrate(skewed_history(count=24))
        assert outcome.refit
        held_out = samples_from_history([
            make_record(x=777_000.0, y=88_000.0, k=24, factor=2.0),
            make_record(x=55_000.0, y=9_000.0, k=48, factor=2.0),
        ])
        stale_error = PAPER_TIME_MODEL.mean_prediction_error(held_out)
        fresh_error = outcome.model.mean_prediction_error(held_out)
        assert fresh_error <= 0.5 * stale_error

    def test_reads_history_from_jsonl_path(self, tmp_path):
        path = str(tmp_path / "drift.jsonl")
        for record in skewed_history(count=24):
            append_drift_jsonl(record, path)
        store = ModelStore(str(tmp_path / "models.json"))
        outcome = Recalibrator(
            store=store, registry=MetricsRegistry()
        ).maybe_recalibrate(path)
        assert outcome.refit
        # The refit persisted: a fresh store resumes from the new model.
        assert ModelStore(str(tmp_path / "models.json")).active_version == 1

    def test_second_pass_on_corrected_history_stays_put(self):
        """Once the machine is modeled, a matching history needs no refit."""
        recalibrator = Recalibrator(registry=MetricsRegistry())
        outcome = recalibrator.maybe_recalibrate(skewed_history(count=24))
        assert outcome.refit
        fresh = recalibrator.model
        # New joins drift-checked against the *refitted* model show no bias.
        settled = [
            make_record(x=100_000.0 * (1 + i), y=20_000.0, k=16,
                        factor=1.0, model=fresh, timestamp=float(i))
            for i in range(24)
        ]
        again = recalibrator.maybe_recalibrate(settled)
        assert not again.refit
        assert "within threshold" in again.reason


class TestFakeClockClosedLoop:
    def test_real_joins_under_2x_clock_refit_and_correct(
        self, tmp_path, monkeypatch, small_workload
    ):
        """End to end: 21 analyzed joins under a 2× clock → refit →
        the next EXPLAIN plans with corrected predictions."""
        from repro.obs.explain import analyze_join, explain_join

        real = time.perf_counter
        epoch = real()
        monkeypatch.setattr(
            time, "perf_counter",
            lambda: epoch + (real() - epoch) * 2.0,
        )

        lhs, rhs = small_workload
        drift_path = str(tmp_path / "drift.jsonl")
        for __ in range(21):
            analysis = analyze_join(
                lhs, rhs, "DCJ", 8, model=PAPER_TIME_MODEL,
                drift_path=drift_path, registry=MetricsRegistry(),
            )
        assert analysis.drift.observed["seconds"] > 0

        store = ModelStore(str(tmp_path / "models.json"))
        outcome = Recalibrator(
            store=store, registry=MetricsRegistry()
        ).maybe_recalibrate(drift_path)
        assert outcome.refit, outcome.reason
        version = outcome.version
        assert version.mean_abs_error_after <= (
            0.5 * version.mean_abs_error_before
        )

        report = explain_join(
            lhs, rhs, "DCJ", 8, model=store.active,
            drift_history=drift_path,
        )
        rendered = report.render()
        assert "drift_correction" in rendered
        assert report.root.corrected.get("seconds") is not None


class TestDriftCorrections:
    def test_empty_history_means_no_corrections(self):
        assert drift_corrections(None) == {}
        assert drift_corrections([]) == {}

    def test_consistent_2x_history_inflates_with_shrinkage(self):
        history = [make_record(factor=2.0) for __ in range(20)]
        corrections = drift_corrections(history)
        # ratio 2.0 over n=20 with prior strength 8: (20·2 + 8) / 28.
        assert corrections["DCJ"] == pytest.approx(48.0 / 28.0)

    def test_thin_history_barely_moves_the_factor(self):
        corrections = drift_corrections([make_record(factor=2.0)])
        assert corrections["DCJ"] == pytest.approx(10.0 / 9.0)

    def test_ratios_are_clamped(self):
        # e = −24 → raw ratio 0.04, clamped to 0.1 per record.
        history = [make_record(factor=0.04) for __ in range(1000)]
        corrections = drift_corrections(history, window=1000)
        assert corrections["DCJ"] == pytest.approx((1000 * 0.1 + 8.0) / 1008.0)

    def test_unusable_error_records_are_skipped(self):
        record = make_record()
        record.errors["seconds"] = 1.0  # would mean predicted 0
        assert drift_corrections([record]) == {}

    def test_negative_prior_rejected(self):
        with pytest.raises(ConfigurationError):
            drift_corrections([make_record()], prior_strength=-1.0)


class TestDriftAwarePlanChoice:
    def test_corrections_flip_the_winner(self, small_workload):
        lhs, rhs = small_workload
        baseline = choose_plan(lhs, rhs, PAPER_TIME_MODEL)
        loser = "PSJ" if baseline.algorithm == "DCJ" else "DCJ"
        flipped = choose_plan(
            lhs, rhs, PAPER_TIME_MODEL,
            drift_history={baseline.algorithm: 50.0, loser: 1.0},
        )
        assert flipped.algorithm == loser
        assert flipped.drift_corrections[baseline.algorithm] == 50.0

    def test_corrections_scale_predictions_not_raw(self, small_workload):
        lhs, rhs = small_workload
        plain = choose_plan(lhs, rhs, PAPER_TIME_MODEL)
        corrected = choose_plan(
            lhs, rhs, PAPER_TIME_MODEL, drift_history={"DCJ": 2.0, "PSJ": 2.0}
        )
        for before, after in zip(plain.candidates, corrected.candidates):
            assert after.raw_seconds == pytest.approx(before.raw_seconds)
            assert after.predicted_seconds == pytest.approx(
                after.raw_seconds * after.drift_correction
            )

    def test_resolve_accepts_every_history_shape(self, tmp_path):
        assert resolve_drift_corrections(None) == {}
        assert resolve_drift_corrections({"DCJ": 1.5}) == {"DCJ": 1.5}
        records = [make_record(factor=2.0) for __ in range(20)]
        from_records = resolve_drift_corrections(records)
        path = str(tmp_path / "drift.jsonl")
        for record in records:
            append_drift_jsonl(record, path)
        assert resolve_drift_corrections(path) == pytest.approx(from_records)
        # A path that does not exist yet is an empty history, not an error.
        assert resolve_drift_corrections(str(tmp_path / "missing.jsonl")) == {}


class TestExecutionUnchangedByAdaptation:
    """Adaptation steers *planning* only: the executed join is untouched."""

    @pytest.mark.parametrize("algorithm", ["DCJ", "PSJ"])
    def test_forced_algorithm_bit_identical(self, small_workload, algorithm):
        lhs, rhs = small_workload
        plain_pairs, plain = containment_join(
            lhs, rhs, algorithm, 8
        )
        adapted_pairs, adapted = containment_join(
            lhs, rhs, algorithm, 8,
            drift_history={"DCJ": 3.0, "PSJ": 0.5},
        )
        assert adapted_pairs == plain_pairs
        assert adapted.signature_comparisons == plain.signature_comparisons
        assert adapted.replicated_signatures == plain.replicated_signatures
        assert adapted.candidates == plain.candidates

    def test_auto_with_agreeing_history_bit_identical(self, small_workload):
        lhs, rhs = small_workload
        plain_pairs, plain = containment_join(lhs, rhs, "auto")
        adapted_pairs, adapted = containment_join(
            lhs, rhs, "auto", drift_history={}
        )
        assert adapted_pairs == plain_pairs
        assert adapted.algorithm == plain.algorithm
        assert adapted.signature_comparisons == plain.signature_comparisons
        assert adapted.replicated_signatures == plain.replicated_signatures
