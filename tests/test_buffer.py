"""Tests for the buffer pool: caching, pinning, eviction, writeback."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BufferPoolError
from repro.storage.buffer import REPLACEMENT_POLICIES, BufferPool
from repro.storage.pager import InMemoryDiskManager


def make_pool(capacity=4, policy="lru", page_size=128):
    disk = InMemoryDiskManager(page_size)
    return disk, BufferPool(disk, capacity=capacity, policy=policy)


class TestBasics:
    def test_new_page_is_pinned_and_dirty(self):
        __, pool = make_pool()
        frame = pool.new_page()
        assert frame.pin_count == 1
        assert frame.dirty

    def test_fetch_hit_does_not_touch_disk(self):
        disk, pool = make_pool()
        frame = pool.new_page()
        pool.unpin(frame.page_id)
        before = disk.stats.page_reads
        pool.fetch(frame.page_id)
        assert disk.stats.page_reads == before
        assert pool.stats.hits == 1

    def test_fetch_miss_reads_from_disk(self):
        disk, pool = make_pool(capacity=1)
        first = pool.new_page()
        pool.unpin(first.page_id, dirty=True)
        second = pool.new_page()  # evicts first
        pool.unpin(second.page_id, dirty=True)
        pool.fetch(first.page_id)
        assert pool.stats.misses == 1
        assert disk.stats.page_reads == 1

    def test_dirty_eviction_writes_back(self):
        disk, pool = make_pool(capacity=1)
        frame = pool.new_page()
        frame.data[0] = 0xEE
        pool.unpin(frame.page_id, dirty=True)
        other = pool.new_page()  # forces eviction of the dirty frame
        pool.unpin(other.page_id)
        assert disk.read_page(frame.page_id)[0] == 0xEE
        assert pool.stats.dirty_writebacks == 1

    def test_pinned_frames_never_evicted(self):
        __, pool = make_pool(capacity=2)
        first = pool.new_page()  # stays pinned
        second = pool.new_page()
        pool.unpin(second.page_id)
        third = pool.new_page()  # must evict `second`, not `first`
        assert first.page_id in pool._frames
        assert second.page_id not in pool._frames
        assert third.page_id in pool._frames

    def test_all_pinned_raises(self):
        __, pool = make_pool(capacity=2)
        pool.new_page()
        pool.new_page()
        with pytest.raises(BufferPoolError):
            pool.new_page()

    def test_unpin_errors(self):
        __, pool = make_pool()
        with pytest.raises(BufferPoolError):
            pool.unpin(99)
        frame = pool.new_page()
        pool.unpin(frame.page_id)
        with pytest.raises(BufferPoolError):
            pool.unpin(frame.page_id)

    def test_flush_all_clears_dirty(self):
        disk, pool = make_pool()
        frame = pool.new_page()
        frame.data[:2] = b"ok"
        pool.unpin(frame.page_id, dirty=True)
        pool.flush_all()
        assert disk.read_page(frame.page_id)[:2] == b"ok"
        assert not pool._frames[frame.page_id].dirty

    def test_drop_all_requires_unpinned(self):
        __, pool = make_pool()
        frame = pool.new_page()
        with pytest.raises(BufferPoolError):
            pool.drop_all()
        pool.unpin(frame.page_id)
        pool.drop_all()
        assert len(pool) == 0

    def test_free_page_drops_cached_frame(self):
        disk, pool = make_pool()
        frame = pool.new_page()
        frame.data[0] = 0xAA
        pool.unpin(frame.page_id, dirty=True)
        pool.free_page(frame.page_id)  # no writeback: data is dead
        assert frame.page_id not in pool._frames
        assert disk.num_free_pages == 1

    def test_free_pinned_page_rejected(self):
        __, pool = make_pool()
        frame = pool.new_page()
        with pytest.raises(BufferPoolError):
            pool.free_page(frame.page_id)

    def test_invalid_configuration(self):
        disk = InMemoryDiskManager(128)
        with pytest.raises(BufferPoolError):
            BufferPool(disk, capacity=0)
        with pytest.raises(BufferPoolError):
            BufferPool(disk, policy="mru")

    def test_memory_bytes(self):
        __, pool = make_pool(capacity=4, page_size=128)
        frame = pool.new_page()
        pool.unpin(frame.page_id)
        assert pool.memory_bytes == pool.disk.payload_size


@pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
class TestPolicies:
    def test_capacity_never_exceeded(self, policy):
        __, pool = make_pool(capacity=3, policy=policy)
        for __ in range(10):
            frame = pool.new_page()
            pool.unpin(frame.page_id)
        assert len(pool) <= 3

    def test_data_survives_eviction_cycles(self, policy):
        disk, pool = make_pool(capacity=3, policy=policy)
        rng = random.Random(7)
        page_ids = []
        for value in range(8):
            frame = pool.new_page()
            frame.data[0] = value
            pool.unpin(frame.page_id, dirty=True)
            page_ids.append(frame.page_id)
        for __ in range(100):
            page_id = rng.choice(page_ids)
            frame = pool.fetch(page_id)
            pool.unpin(page_id)
            assert frame.data[0] == page_id

    def test_lru_evicts_least_recent(self, policy):
        if policy != "lru":
            pytest.skip("LRU-specific ordering check")
        __, pool = make_pool(capacity=2, policy="lru")
        a = pool.new_page()
        pool.unpin(a.page_id)
        b = pool.new_page()
        pool.unpin(b.page_id)
        pool.fetch(a.page_id)  # a becomes most recent
        pool.unpin(a.page_id)
        c = pool.new_page()  # should evict b
        pool.unpin(c.page_id)
        assert a.page_id in pool._frames
        assert b.page_id not in pool._frames


@settings(max_examples=25, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 255)), min_size=1, max_size=60
    ),
    policy=st.sampled_from(REPLACEMENT_POLICIES),
    capacity=st.integers(min_value=2, max_value=5),
)
def test_pool_never_loses_committed_writes(operations, policy, capacity):
    """Property: reads through the pool always see the latest write."""
    disk = InMemoryDiskManager(128)
    pool = BufferPool(disk, capacity=capacity, policy=policy)
    for __ in range(10):
        frame = pool.new_page()
        pool.unpin(frame.page_id, dirty=True)
    expected = {page_id: 0 for page_id in range(10)}
    for page_id, value in operations:
        frame = pool.fetch(page_id)
        frame.data[0] = value
        pool.unpin(page_id, dirty=True)
        expected[page_id] = value
    for page_id, value in expected.items():
        frame = pool.fetch(page_id)
        assert frame.data[0] == value
        pool.unpin(page_id)
    pool.flush_all()
    for page_id, value in expected.items():
        assert disk.read_page(page_id)[0] == value
