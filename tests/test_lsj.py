"""Tests for the Lattice Set Join (LSJ) partitioner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import BitstringHashFamily, paper_table4_family
from repro.core.lsj import LSJPartitioner, submasks
from repro.core.partitioning import PartitionAssignment
from repro.core.sets import Relation, containment_pairs_nested_loop
from repro.errors import ConfigurationError


class TestSubmasks:
    def test_zero(self):
        assert submasks(0) == [0]

    def test_full_lattice(self):
        assert submasks(0b101) == [0b000, 0b001, 0b100, 0b101]

    def test_count_is_power_of_popcount(self):
        for mask in (0b1, 0b11, 0b1011, 0b11111):
            assert len(submasks(mask)) == 2 ** bin(mask).count("1")

    @given(st.integers(min_value=0, max_value=2**10 - 1))
    def test_all_results_are_submasks(self, mask):
        for sub in submasks(mask):
            assert sub & ~mask == 0


class TestLSJ:
    def test_r_single_partition(self):
        partitioner = LSJPartitioner(BitstringHashFamily(32, num_functions=4))
        assert len(partitioner.assign_r(frozenset({1, 2, 3}))) == 1

    def test_s_replicates_to_lattice(self):
        partitioner = LSJPartitioner(paper_table4_family())
        # B has mask 101 -> partitions {000, 001, 100, 101}
        assert partitioner.assign_s(frozenset({8, 10, 13})) == [0, 1, 4, 5]

    def test_r_index_is_hash_vector(self):
        partitioner = LSJPartitioner(paper_table4_family())
        assert partitioner.assign_r(frozenset({10, 13})) == [0b001]

    def test_empty_s_set_goes_to_partition_zero(self):
        partitioner = LSJPartitioner(BitstringHashFamily(16, num_functions=3))
        assert partitioner.assign_s(frozenset()) == [0]

    def test_empty_r_meets_every_s(self):
        partitioner = LSJPartitioner(BitstringHashFamily(16, num_functions=3))
        empty_home = partitioner.assign_r(frozenset())[0]
        for elements in ({1}, {5, 9}, set(range(16))):
            assert empty_home in partitioner.assign_s(frozenset(elements))

    def test_same_comparison_partitioning_as_dcj(self, paper_r, paper_s):
        """LSJ and DCJ generate the same number of comparisons (same hash
        values co-locate the same pairs — comp_LSJ = comp_DCJ)."""
        from repro.core.dcj import DCJPartitioner

        lsj = PartitionAssignment.compute(
            LSJPartitioner(paper_table4_family()), paper_r, paper_s
        )
        dcj = PartitionAssignment.compute(
            DCJPartitioner(paper_table4_family()), paper_r, paper_s
        )
        assert lsj.comparisons == dcj.comparisons

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LSJPartitioner(BitstringHashFamily(8, num_functions=2), num_levels=5)
        with pytest.raises(ConfigurationError):
            LSJPartitioner.for_cardinalities(48, 10, 20)
        partitioner = LSJPartitioner.for_cardinalities(16, 10, 20)
        assert partitioner.num_partitions == 16
        assert "LSJ" in partitioner.describe()


@settings(max_examples=40, deadline=None)
@given(
    r_sets=st.lists(st.frozensets(st.integers(0, 400), max_size=8), max_size=12),
    s_sets=st.lists(st.frozensets(st.integers(0, 400), max_size=12), max_size=12),
    levels=st.integers(min_value=1, max_value=5),
)
def test_lsj_partitioning_is_correct(r_sets, s_sets, levels):
    """Property: every joining pair is co-located in R's home partition."""
    lhs = Relation.from_sets(r_sets)
    rhs = Relation.from_sets(s_sets)
    partitioner = LSJPartitioner(BitstringHashFamily(41, num_functions=levels))
    assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
    assert assignment.covers(containment_pairs_nested_loop(lhs, rhs))
