"""Tests for signatures and the bitwise-inclusion filter."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.signatures import (
    bitwise_included,
    expected_bit_density,
    false_positive_probability,
    included_in_any_matrix,
    pack_signatures,
    popcount,
    signature_of,
    signatures_of,
)
from repro.errors import ConfigurationError


class TestSignatureOf:
    def test_paper_table2(self, paper_r, paper_s):
        """Table 2's 4-bit signatures, MSB-first as printed in the paper."""
        expected_r = ["0010", "0110", "1010", "1001"]
        expected_s = ["1010", "0111", "1010", "1101"]
        for row, expected in zip(paper_r, expected_r):
            assert format(signature_of(row.elements, 4), "04b") == expected
        for row, expected in zip(paper_s, expected_s):
            assert format(signature_of(row.elements, 4), "04b") == expected

    def test_empty_set_has_zero_signature(self):
        assert signature_of(set(), 160) == 0

    def test_width_validation(self):
        with pytest.raises(ConfigurationError):
            signature_of({1}, 0)

    def test_signatures_of_many(self):
        assert signatures_of([{0}, {1}], 4) == [1, 2]

    def test_collisions_fold_modulo_width(self):
        assert signature_of({1}, 4) == signature_of({5}, 4) == signature_of({1, 5}, 4)


class TestBitwiseInclusion:
    def test_paper_filter_example(self):
        # sig(d) ⊄ᵇ sig(A): d={8,19} -> 1001, A={1,5,7} -> 1010
        sig_d = signature_of({8, 19}, 4)
        sig_a = signature_of({1, 5, 7}, 4)
        assert not bitwise_included(sig_d, sig_a)

    def test_reflexive(self):
        signature = signature_of({3, 17, 99}, 32)
        assert bitwise_included(signature, signature)

    def test_zero_included_in_everything(self):
        assert bitwise_included(0, 0b1011)
        assert bitwise_included(0, 0)

    @given(
        st.frozensets(st.integers(0, 10_000), max_size=40),
        st.frozensets(st.integers(0, 10_000), max_size=40),
        st.sampled_from([4, 32, 64, 160]),
    )
    def test_soundness_no_false_negatives(self, x, y, bits):
        """The filter property: x ⊆ y implies sig(x) ⊆ᵇ sig(y)."""
        if x <= y:
            assert bitwise_included(signature_of(x, bits), signature_of(y, bits))

    @given(
        st.frozensets(st.integers(0, 200), min_size=1, max_size=20),
        st.frozensets(st.integers(0, 200), max_size=20),
    )
    def test_filter_rejections_are_correct(self, x, y):
        """If the filter rejects, the sets truly do not join."""
        bits = 160  # wide enough that element -> bit is injective here
        if not bitwise_included(signature_of(x, bits), signature_of(y, bits)):
            assert not x <= y


class TestEstimates:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_expected_bit_density_limits(self):
        assert expected_bit_density(0, 160) == 0.0
        assert expected_bit_density(1, 1) == 1.0
        assert 0.0 < expected_bit_density(100, 160) < 1.0

    def test_density_matches_paper_example(self):
        # b=200, |s|=100 -> ~0.4 (Section 3)
        assert expected_bit_density(100, 200) == pytest.approx(0.394, abs=0.01)

    def test_false_positive_probability_monotone_in_bits(self):
        narrow = false_positive_probability(50, 100, 64)
        wide = false_positive_probability(50, 100, 1024)
        assert wide < narrow

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            expected_bit_density(10, 0)


class TestPackedSignatures:
    def test_pack_roundtrip_words(self):
        signatures = [(1 << 159) | 1, 0, (1 << 64) | (1 << 63)]
        packed = pack_signatures(signatures, 160)
        assert packed.shape == (3, 3)
        assert packed[0, 0] == 1
        assert packed[0, 2] == 1 << (159 - 128)

    @given(
        st.lists(st.integers(0, (1 << 160) - 1), min_size=1, max_size=16),
        st.integers(0, (1 << 160) - 1),
    )
    def test_vectorized_matches_scalar(self, signatures, probe):
        packed = pack_signatures(signatures, 160)
        vector = included_in_any_matrix(probe, packed, 160)
        expected = np.array(
            [bitwise_included(probe, signature) for signature in signatures]
        )
        assert (vector == expected).all()
