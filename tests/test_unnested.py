"""Tests for the SQL-on-unnested-representation baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sets import Relation, containment_pairs_nested_loop
from repro.core.unnested import sql_unnested_join, unnest


class TestUnnest:
    def test_one_row_per_member(self):
        relation = Relation.from_sets([{3, 1}, {2}])
        rows = unnest(relation)
        assert sorted(rows) == [(0, 1), (0, 3), (1, 2)]

    def test_sorted_by_element(self):
        relation = Relation.from_sets([{5, 1}, {3}])
        elements = [element for __, element in unnest(relation)]
        assert elements == sorted(elements)

    def test_empty_sets_produce_no_rows(self):
        relation = Relation.from_sets([set(), {1}])
        assert len(unnest(relation)) == 1


class TestSqlUnnestedJoin:
    def test_paper_example(self, paper_r, paper_s, paper_truth):
        result, metrics = sql_unnested_join(paper_r, paper_s)
        assert result == paper_truth
        assert metrics.algorithm == "SQL-unnested"

    def test_empty_r_set_workaround(self):
        lhs = Relation.from_sets([set(), {1}])
        rhs = Relation.from_sets([{2}, {1, 3}])
        result, __ = sql_unnested_join(lhs, rhs)
        # The empty set is contained in everything (HAVING COUNT can't
        # see it; the explicit workaround must).
        assert result == {(0, 0), (0, 1), (1, 1)}

    def test_intermediate_blowup_is_counted(self):
        """The plan's cost driver: the element-level join result can be
        orders of magnitude larger than the set-level output."""
        shared = set(range(50))
        lhs = Relation.from_sets([shared | {1000 + i} for i in range(10)])
        rhs = Relation.from_sets([shared | {2000 + i} for i in range(10)])
        result, metrics = sql_unnested_join(lhs, rhs)
        assert result == set()  # no containment (distinct private elements)
        assert metrics.signature_comparisons >= 10 * 10 * 50  # join rows
        assert metrics.candidates == 100  # aggregated groups

    def test_duplicate_tuples(self):
        lhs = Relation.from_sets([{1, 2}] * 3)
        rhs = Relation.from_sets([{1, 2, 3}] * 2)
        result, __ = sql_unnested_join(lhs, rhs)
        assert result == {(r, s) for r in range(3) for s in range(2)}


@settings(max_examples=50, deadline=None)
@given(
    r_sets=st.lists(st.frozensets(st.integers(0, 60), max_size=8), max_size=10),
    s_sets=st.lists(st.frozensets(st.integers(0, 60), max_size=10), max_size=10),
)
def test_sql_plan_equals_brute_force(r_sets, s_sets):
    """Property: the relational plan computes exactly the containment join."""
    lhs = Relation.from_sets(r_sets)
    rhs = Relation.from_sets(s_sets)
    result, __ = sql_unnested_join(lhs, rhs)
    assert result == containment_pairs_nested_loop(lhs, rhs)
