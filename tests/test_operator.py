"""Integration tests for the disk-based set-containment-join operator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.simulate import make_partitioner
from repro.core.dcj import DCJPartitioner
from repro.core.hashing import BitstringHashFamily
from repro.core.lsj import LSJPartitioner
from repro.core.operator import SetContainmentJoin, Testbed, run_disk_join
from repro.core.psj import PSJPartitioner
from repro.core.sets import Relation, containment_pairs_nested_loop
from repro.errors import ConfigurationError


def all_partitioners(k=8, theta_r=8, theta_s=16):
    return [
        DCJPartitioner.for_cardinalities(k, theta_r, theta_s),
        PSJPartitioner(k, seed=5),
        LSJPartitioner.for_cardinalities(k, theta_r, theta_s),
    ]


class TestEndToEnd:
    @pytest.mark.parametrize("engine", ["python", "numpy"])
    def test_all_algorithms_match_brute_force(self, small_workload, engine):
        lhs, rhs = small_workload
        expected = containment_pairs_nested_loop(lhs, rhs)
        for partitioner in all_partitioners():
            result, metrics = run_disk_join(
                lhs, rhs, partitioner, engine=engine
            )
            assert result == expected, partitioner.describe()
            assert metrics.result_size == len(expected)
            assert metrics.false_positives >= 0

    def test_paper_example_on_disk(self, paper_r, paper_s, paper_truth):
        for partitioner in all_partitioners(k=8, theta_r=2, theta_s=3):
            result, __ = run_disk_join(
                paper_r, paper_s, partitioner, signature_bits=4
            )
            assert result == paper_truth

    def test_file_backed_testbed(self, tmp_path, small_workload):
        lhs, rhs = small_workload
        expected = containment_pairs_nested_loop(lhs, rhs)
        result, __ = run_disk_join(
            lhs, rhs, PSJPartitioner(4, seed=1),
            path=str(tmp_path / "join.db"),
        )
        assert result == expected
        assert (tmp_path / "join.db").stat().st_size > 0

    def test_engines_agree_on_metrics(self, small_workload):
        lhs, rhs = small_workload
        results = {}
        for engine in ("python", "numpy"):
            partitioner = DCJPartitioner.for_cardinalities(8, 8, 16)
            result, metrics = run_disk_join(lhs, rhs, partitioner, engine=engine)
            results[engine] = (result, metrics.signature_comparisons,
                               metrics.replicated_signatures, metrics.candidates)
        assert results["python"] == results["numpy"]


class TestMetricsConsistency:
    def test_comparisons_match_partition_assignment(self, small_workload):
        """The operator performs exactly Σ|R_i|·|S_i| signature comparisons."""
        from repro.core.partitioning import PartitionAssignment

        lhs, rhs = small_workload
        partitioner = DCJPartitioner.for_cardinalities(16, 8, 16)
        assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
        __, metrics = run_disk_join(lhs, rhs, partitioner)
        assert metrics.signature_comparisons == assignment.comparisons
        assert metrics.replicated_signatures == assignment.replicated_signatures
        assert metrics.comparison_factor == pytest.approx(
            assignment.comparison_factor
        )

    def test_phase_metrics_populated(self, small_workload):
        lhs, rhs = small_workload
        __, metrics = run_disk_join(lhs, rhs, PSJPartitioner(8, seed=2))
        assert metrics.partitioning.seconds > 0
        assert metrics.joining.seconds > 0
        assert metrics.partitioning.page_writes > 0
        assert metrics.total_seconds == pytest.approx(
            metrics.partitioning.seconds
            + metrics.joining.seconds
            + metrics.verification.seconds
        )

    def test_candidates_bound_results(self, small_workload):
        lhs, rhs = small_workload
        __, metrics = run_disk_join(lhs, rhs, PSJPartitioner(8, seed=2))
        assert metrics.result_size + metrics.false_positives == metrics.candidates


class TestOperatorConfiguration:
    def test_requires_loaded_testbed(self):
        testbed = Testbed()
        with pytest.raises(ConfigurationError):
            SetContainmentJoin(testbed, PSJPartitioner(4))

    def test_engine_validated(self, paper_r, paper_s):
        with Testbed() as testbed:
            testbed.load(paper_r, paper_s)
            with pytest.raises(ConfigurationError):
                SetContainmentJoin(testbed, PSJPartitioner(4), engine="cuda")
            with pytest.raises(ConfigurationError):
                SetContainmentJoin(testbed, PSJPartitioner(4), block_entries=0)

    def test_block_nested_loop_small_blocks(self, small_workload):
        """Tiny block budget forces multiple S re-scans; result unchanged."""
        lhs, rhs = small_workload
        expected = containment_pairs_nested_loop(lhs, rhs)
        with Testbed() as testbed:
            testbed.load(lhs, rhs)
            join = SetContainmentJoin(
                testbed, PSJPartitioner(4, seed=1), block_entries=8
            )
            result, metrics = join.run()
        assert result == expected
        assert metrics.signature_comparisons >= len(lhs) * 1  # sanity

    def test_warm_cache_runs(self, small_workload):
        lhs, rhs = small_workload
        with Testbed() as testbed:
            testbed.load(lhs, rhs)
            join = SetContainmentJoin(testbed, PSJPartitioner(4, seed=1))
            first, __ = join.run(cold_cache=True)
            second, __ = join.run(cold_cache=False)
        assert first == second

    def test_small_buffer_pool(self, small_workload):
        lhs, rhs = small_workload
        expected = containment_pairs_nested_loop(lhs, rhs)
        result, metrics = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1), buffer_pages=16
        )
        assert result == expected
        assert metrics.total_page_reads > 0  # misses force real reads

    @pytest.mark.parametrize("policy", ["lru", "clock", "fifo"])
    def test_buffer_policies(self, small_workload, policy):
        lhs, rhs = small_workload
        expected = containment_pairs_nested_loop(lhs, rhs)
        result, __ = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            buffer_pages=24, buffer_policy=policy,
        )
        assert result == expected


class TestEdgeCases:
    def test_empty_relations(self):
        empty = Relation(name="R")
        other = Relation.from_sets([{1, 2}], name="S")
        result, metrics = run_disk_join(empty, other, PSJPartitioner(4))
        assert result == set()
        assert metrics.signature_comparisons == 0

    def test_empty_sets_in_relations(self):
        lhs = Relation.from_sets([set(), {1}])
        rhs = Relation.from_sets([set(), {1, 2}])
        expected = containment_pairs_nested_loop(lhs, rhs)
        for partitioner in all_partitioners(k=4, theta_r=1, theta_s=2):
            result, __ = run_disk_join(lhs, rhs, partitioner, signature_bits=8)
            assert result == expected, partitioner.describe()

    def test_duplicate_sets(self):
        lhs = Relation.from_sets([{1, 2}] * 5)
        rhs = Relation.from_sets([{1, 2, 3}] * 4)
        result, __ = run_disk_join(lhs, rhs, PSJPartitioner(4, seed=3))
        assert result == {(r, s) for r in range(5) for s in range(4)}

    def test_large_sets_exceeding_page_size(self):
        """Sets bigger than one B-tree record round-trip via chunking."""
        lhs = Relation.from_sets([set(range(0, 9000, 3))])
        rhs = Relation.from_sets([set(range(9000))])
        result, __ = run_disk_join(
            lhs, rhs, PSJPartitioner(4, seed=1), payload_size=100
        )
        assert result == {(0, 0)}


@settings(max_examples=15, deadline=None)
@given(
    r_sets=st.lists(st.frozensets(st.integers(0, 150), max_size=8), max_size=12),
    s_sets=st.lists(st.frozensets(st.integers(0, 150), max_size=12), max_size=12),
    algorithm=st.sampled_from(["DCJ", "PSJ", "LSJ"]),
    k=st.sampled_from([2, 4, 16]),
)
def test_disk_join_equals_brute_force(r_sets, s_sets, algorithm, k):
    """Property: the full disk pipeline computes exactly the join."""
    lhs = Relation.from_sets(r_sets)
    rhs = Relation.from_sets(s_sets)
    partitioner = make_partitioner(algorithm, k, 5, 8, seed=1)
    result, __ = run_disk_join(lhs, rhs, partitioner, signature_bits=32)
    assert result == containment_pairs_nested_loop(lhs, rhs)
