"""Admission queue + ticket semantics (repro.service.queue)."""

import threading

import pytest

from repro.errors import ConfigurationError, DeadlineExceeded, ServiceError
from repro.obs.registry import MetricsRegistry
from repro.service.queue import AdmissionQueue, Query, QueryTicket


def make_ticket(kind="probe", **params):
    return QueryTicket(Query(kind=kind, params=params))


class TestAdmissionQueue:
    def test_fifo_order(self):
        queue = AdmissionQueue(4, registry=MetricsRegistry())
        tickets = [make_ticket() for _ in range(3)]
        for ticket in tickets:
            assert queue.offer(ticket)
        taken = [queue.take(timeout=0.1) for _ in range(3)]
        assert [t.query_id for t in taken] == [t.query_id for t in tickets]

    def test_full_queue_sheds_and_counts(self):
        registry = MetricsRegistry()
        queue = AdmissionQueue(2, registry=registry)
        assert queue.offer(make_ticket())
        assert queue.offer(make_ticket())
        assert not queue.offer(make_ticket())  # shed, not blocked
        assert not queue.offer(make_ticket())
        snapshot = registry.snapshot()
        assert snapshot["setjoin_service_shed_total"]["value"] == 2
        assert snapshot["setjoin_service_admitted_total"]["value"] == 2
        assert snapshot["setjoin_service_queue_depth"]["value"] == 2

    def test_depth_gauge_tracks_take(self):
        registry = MetricsRegistry()
        queue = AdmissionQueue(4, registry=registry)
        queue.offer(make_ticket())
        queue.offer(make_ticket())
        queue.take(timeout=0.1)
        assert registry.snapshot()["setjoin_service_queue_depth"]["value"] == 1

    def test_take_times_out_empty(self):
        queue = AdmissionQueue(2, registry=MetricsRegistry())
        assert queue.take(timeout=0.01) is None

    def test_closed_queue_rejects_offers_but_drains(self):
        queue = AdmissionQueue(4, registry=MetricsRegistry())
        admitted = make_ticket()
        queue.offer(admitted)
        queue.close()
        assert queue.closed
        assert not queue.offer(make_ticket())
        # Already-admitted work stays takeable — that's the drain.
        assert queue.take(timeout=0.1) is admitted
        assert queue.take(timeout=0.1) is None

    def test_close_does_not_count_as_shed(self):
        registry = MetricsRegistry()
        queue = AdmissionQueue(4, registry=registry)
        queue.close()
        queue.offer(make_ticket())
        assert registry.snapshot()["setjoin_service_shed_total"]["value"] == 0

    def test_drain_now_returns_abandoned_tickets(self):
        queue = AdmissionQueue(4, registry=MetricsRegistry())
        tickets = [make_ticket() for _ in range(3)]
        for ticket in tickets:
            queue.offer(ticket)
        abandoned = queue.drain_now()
        assert abandoned == tickets
        assert len(queue) == 0
        assert queue.closed

    def test_close_wakes_blocked_taker(self):
        queue = AdmissionQueue(2, registry=MetricsRegistry())
        results = []

        def taker():
            results.append(queue.take(timeout=5.0))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_depth_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="depth"):
            AdmissionQueue(0, registry=MetricsRegistry())


class TestQueryTicket:
    def test_resolve_delivers_result(self):
        ticket = make_ticket()
        assert not ticket.done()
        ticket.resolve([1, 2, 3])
        assert ticket.done()
        assert ticket.result(timeout=0.1) == [1, 2, 3]

    def test_reject_reraises_typed_error(self):
        ticket = make_ticket()
        ticket.reject(DeadlineExceeded("too slow"))
        assert ticket.error is not None
        with pytest.raises(DeadlineExceeded, match="too slow"):
            ticket.result(timeout=0.1)

    def test_result_wait_timeout_is_typed(self):
        ticket = make_ticket()
        with pytest.raises(ServiceError, match="still pending"):
            ticket.result(timeout=0.01)

    def test_result_blocks_until_resolution(self):
        ticket = make_ticket()
        threading.Timer(0.05, ticket.resolve, args=("done",)).start()
        assert ticket.result(timeout=5.0) == "done"

    def test_query_ids_are_unique_and_increasing(self):
        first, second = make_ticket(), make_ticket()
        assert second.query_id > first.query_id
