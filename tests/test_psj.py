"""Tests for the Partitioning Set Join (PSJ) partitioner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning import PartitionAssignment
from repro.core.psj import PSJPartitioner
from repro.core.sets import Relation, containment_pairs_nested_loop
from repro.errors import ConfigurationError


class TestPaperExample:
    PINNED = {
        frozenset({1, 5}): 5,
        frozenset({10, 13}): 10,
        frozenset({1, 3}): 3,
        frozenset({8, 19}): 19,
    }

    def make_partitioner(self):
        return PSJPartitioner(
            8, choose_element=lambda elements: self.PINNED[frozenset(elements)]
        )

    def test_figure1_counts(self, paper_r, paper_s):
        """Figure 1: 9 comparisons, 16 replicated signatures (k=8)."""
        assignment = PartitionAssignment.compute(
            self.make_partitioner(), paper_r, paper_s
        )
        assert assignment.comparisons == 9
        assert assignment.replicated_signatures == 16

    def test_figure1_assignments(self, paper_r, paper_s):
        """Section 2.2's walkthrough: a→R5, b→R2, c,d→R3; A→S1,S5,S7 etc."""
        partitioner = self.make_partitioner()
        assert partitioner.assign_r(paper_r[0].elements) == [5]
        assert partitioner.assign_r(paper_r[1].elements) == [2]
        assert partitioner.assign_r(paper_r[2].elements) == [3]
        assert partitioner.assign_r(paper_r[3].elements) == [3]
        assert partitioner.assign_s(paper_s[0].elements) == [1, 5, 7]
        assert partitioner.assign_s(paper_s[1].elements) == [0, 2, 5]

    def test_figure1_covers_join(self, paper_r, paper_s, paper_truth):
        assignment = PartitionAssignment.compute(
            self.make_partitioner(), paper_r, paper_s
        )
        assert assignment.covers(paper_truth)


class TestBehaviour:
    def test_r_goes_to_exactly_one_partition(self):
        partitioner = PSJPartitioner(16, seed=3)
        for elements in ({1, 2, 3}, {500}, set(range(100))):
            assert len(partitioner.assign_r(frozenset(elements))) == 1

    def test_s_partitions_are_distinct_and_sorted(self):
        partitioner = PSJPartitioner(4, seed=3)
        parts = partitioner.assign_s(frozenset(range(100)))
        assert parts == sorted(set(parts)) == [0, 1, 2, 3]

    def test_empty_r_set_broadcast(self):
        partitioner = PSJPartitioner(4)
        assert partitioner.assign_r(frozenset()) == [0, 1, 2, 3]
        assert partitioner.assign_s(frozenset()) == [0]

    def test_seed_reproducibility(self):
        a = PSJPartitioner(8, seed=42)
        b = PSJPartitioner(8, seed=42)
        sets = [frozenset({i, i * 7, i * 13}) for i in range(50)]
        assert [a.assign_r(s) for s in sets] == [b.assign_r(s) for s in sets]

    def test_hashed_elements_mode(self):
        """With hash_elements, skewed values still spread over partitions."""
        partitioner = PSJPartitioner(8, seed=1, hash_elements=True)
        # All elements ≡ 0 mod 8 — raw modulo would hit partition 0 only.
        parts = partitioner.assign_s(frozenset(range(0, 800, 8)))
        assert len(parts) == 8

    def test_invalid_partition_count(self):
        with pytest.raises(ConfigurationError):
            PSJPartitioner(0)


@settings(max_examples=40, deadline=None)
@given(
    r_sets=st.lists(st.frozensets(st.integers(0, 300), max_size=8), max_size=12),
    s_sets=st.lists(st.frozensets(st.integers(0, 300), max_size=12), max_size=12),
    k=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=5),
)
def test_psj_partitioning_is_correct(r_sets, s_sets, k, seed):
    """Property: every joining pair is co-located (any k, any seed)."""
    lhs = Relation.from_sets(r_sets)
    rhs = Relation.from_sets(s_sets)
    partitioner = PSJPartitioner(k, seed=seed)
    assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
    assert assignment.covers(containment_pairs_nested_loop(lhs, rhs))
