"""Tests for the benchmark baseline harness (benchmarks/baseline.py).

The harness is a script, not a package module, so it is loaded via
importlib straight from the benchmarks/ directory.  Suites run at a
small ``--scale`` to keep the tests quick; the regression logic itself
is exercised on doctored snapshots (injected slowdowns, flipped
counters) so both failure paths are proven, not just the happy path.
"""

import copy
import importlib.util
import json
import pathlib

import pytest

BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.py"
)


@pytest.fixture(scope="module")
def baseline():
    spec = importlib.util.spec_from_file_location("bench_baseline", BASELINE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def snapshot(baseline):
    return baseline.run_suite(scale=0.1)


class TestSuite:
    def test_covers_all_canonical_workloads(self, baseline, snapshot):
        names = {spec["name"] for spec in baseline.canonical_workloads(0.1)}
        assert set(snapshot["workloads"]) == names
        assert {"auto_uniform", "dcj_k16", "psj_k16",
                "dcj_k16_workers2"} == names

    def test_workloads_produce_actual_results(self, snapshot):
        # The canonical inputs are tuned so containments exist — the
        # snapshot must cover verification, not just the filter path.
        for name, record in snapshot["workloads"].items():
            assert record["results"] > 0, name
            assert record["signature_comparisons"] > 0, name

    def test_counters_are_deterministic_across_runs(self, baseline, snapshot):
        again = baseline.run_suite(scale=0.1)
        for name, record in snapshot["workloads"].items():
            for key in baseline.COUNTER_KEYS:
                assert again["workloads"][name][key] == record[key], (
                    name, key,
                )

    def test_parallel_workload_matches_serial_counters(self, snapshot):
        serial = snapshot["workloads"]["dcj_k16"]
        parallel = snapshot["workloads"]["dcj_k16_workers2"]
        for key in ("signature_comparisons", "replicated_signatures",
                    "candidates", "results"):
            assert parallel[key] == serial[key], key

    def test_snapshot_roundtrips_through_json(
        self, baseline, snapshot, tmp_path
    ):
        path = str(tmp_path / "BENCH_joins.json")
        baseline.write_baseline(snapshot, path)
        assert baseline.load_baseline(path) == json.loads(
            json.dumps(snapshot)
        )


class TestCheckRegression:
    def test_identical_snapshots_pass(self, baseline, snapshot):
        assert baseline.check_regression(snapshot, snapshot) == []

    def test_injected_2x_slowdown_fails_the_time_check(
        self, baseline, snapshot
    ):
        # Halving the baseline's wall times makes the (unchanged) current
        # run look twice as slow — well past the 25% default threshold.
        slower_world = copy.deepcopy(snapshot)
        for record in slower_world["workloads"].values():
            record["wall_seconds"] /= 2.0
        failures = baseline.check_regression(snapshot, slower_world)
        assert failures, "a 2x slowdown must be flagged"
        assert all("wall time regressed" in f for f in failures)
        assert len(failures) == len(snapshot["workloads"])

    def test_counters_only_ignores_the_slowdown(self, baseline, snapshot):
        slower_world = copy.deepcopy(snapshot)
        for record in slower_world["workloads"].values():
            record["wall_seconds"] /= 2.0
        assert baseline.check_regression(
            snapshot, slower_world, counters_only=True
        ) == []

    def test_threshold_is_respected(self, baseline, snapshot):
        slightly_slower = copy.deepcopy(snapshot)
        for record in slightly_slower["workloads"].values():
            record["wall_seconds"] *= 1.10
        assert baseline.check_regression(
            slightly_slower, snapshot, time_threshold=0.25
        ) == []
        failures = baseline.check_regression(
            slightly_slower, snapshot, time_threshold=0.05
        )
        assert failures and "wall time regressed" in failures[0]

    def test_counter_drift_fails_even_counters_only(self, baseline, snapshot):
        doctored = copy.deepcopy(snapshot)
        doctored["workloads"]["dcj_k16"]["signature_comparisons"] += 1
        failures = baseline.check_regression(
            doctored, snapshot, counters_only=True
        )
        assert len(failures) == 1
        assert "dcj_k16: signature_comparisons changed" in failures[0]

    def test_missing_workload_is_flagged(self, baseline, snapshot):
        partial = copy.deepcopy(snapshot)
        del partial["workloads"]["psj_k16"]
        failures = baseline.check_regression(partial, snapshot)
        assert ["psj_k16: missing from current run"] == failures

    def test_schema_and_scale_mismatches_short_circuit(
        self, baseline, snapshot
    ):
        other_schema = dict(snapshot, schema=snapshot["schema"] + 1)
        failures = baseline.check_regression(snapshot, other_schema)
        assert len(failures) == 1 and "schema mismatch" in failures[0]
        other_scale = dict(snapshot, scale=snapshot["scale"] * 2)
        failures = baseline.check_regression(snapshot, other_scale)
        assert len(failures) == 1 and "scale mismatch" in failures[0]


class TestMain:
    def test_writes_snapshot_and_passes_self_check(
        self, baseline, tmp_path, capsys
    ):
        out = str(tmp_path / "BENCH_joins.json")
        assert baseline.main(["--out", out, "--scale", "0.1"]) == 0
        first = baseline.load_baseline(out)
        assert set(first["workloads"]) == {
            "auto_uniform", "dcj_k16", "psj_k16", "dcj_k16_workers2",
        }
        # Checking a fresh run against that snapshot passes (counters
        # are deterministic; timing noise is excluded).
        assert baseline.main([
            "--out", out, "--scale", "0.1", "--check", out, "--counters-only",
        ]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_exits_nonzero_on_regression(self, baseline, tmp_path, capsys):
        out = str(tmp_path / "BENCH_joins.json")
        assert baseline.main(["--out", out, "--scale", "0.1"]) == 0
        doctored = baseline.load_baseline(out)
        doctored["workloads"]["dcj_k16"]["results"] += 7
        doctored_path = str(tmp_path / "doctored.json")
        baseline.write_baseline(doctored, doctored_path)
        assert baseline.main([
            "--out", out, "--scale", "0.1",
            "--check", doctored_path, "--counters-only",
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_trace_option_writes_a_valid_trace(self, baseline, tmp_path):
        out = str(tmp_path / "BENCH_joins.json")
        trace = str(tmp_path / "trace.jsonl")
        assert baseline.main([
            "--out", out, "--scale", "0.1", "--trace", trace,
        ]) == 0
        from repro.obs.export import read_trace_jsonl

        records = read_trace_jsonl(trace)  # validates schema + linkage
        assert any(record["name"] == "join" for record in records)


class TestHistory:
    def test_append_and_load_roundtrip(self, baseline, snapshot, tmp_path):
        path = str(tmp_path / "BENCH_history.jsonl")
        assert baseline.load_history(path) == []  # missing file = no history
        baseline.append_history(snapshot, path)
        baseline.append_history(snapshot, path)
        history = baseline.load_history(path)
        assert len(history) == 2
        assert all("recorded_at" in record for record in history)
        assert history[0]["workloads"] == snapshot["workloads"]

    def test_rolling_median_is_per_workload(self, baseline, snapshot):
        history = []
        for factor in (1.0, 2.0, 3.0):
            run = copy.deepcopy(snapshot)
            for record in run["workloads"].values():
                record["wall_seconds"] *= factor
            history.append(run)
        medians = baseline.rolling_medians(history, snapshot)
        for name, record in snapshot["workloads"].items():
            assert medians[name] == pytest.approx(
                record["wall_seconds"] * 2.0
            )

    def test_rolling_median_window_drops_old_runs(self, baseline, snapshot):
        slow = copy.deepcopy(snapshot)
        for record in slow["workloads"].values():
            record["wall_seconds"] *= 100.0
        history = [slow] + [copy.deepcopy(snapshot) for __ in range(5)]
        medians = baseline.rolling_medians(history, snapshot, window=5)
        for name, record in snapshot["workloads"].items():
            assert medians[name] == pytest.approx(record["wall_seconds"])

    def test_incompatible_history_is_ignored(self, baseline, snapshot):
        foreign = copy.deepcopy(snapshot)
        foreign["scale"] = snapshot["scale"] * 3
        assert baseline.rolling_medians([foreign], snapshot) == {}

    def test_sustained_slowdown_fails_the_rolling_check(
        self, baseline, snapshot
    ):
        fast_history = []
        for __ in range(5):
            run = copy.deepcopy(snapshot)
            for record in run["workloads"].values():
                record["wall_seconds"] /= 2.0
            fast_history.append(run)
        failures = baseline.check_regression(
            snapshot, snapshot, history=fast_history
        )
        assert failures, "2x above the rolling median must be flagged"
        assert all("rolling median" in failure for failure in failures)
        # counters_only (the CI mode) skips the rolling timing check too.
        assert baseline.check_regression(
            snapshot, snapshot, counters_only=True, history=fast_history
        ) == []

    def test_main_appends_history_and_checks_against_it(
        self, baseline, tmp_path, capsys
    ):
        out = str(tmp_path / "BENCH_joins.json")
        history = str(tmp_path / "BENCH_history.jsonl")
        assert baseline.main([
            "--out", out, "--scale", "0.1", "--history", history,
        ]) == 0
        # Second run: check against the first snapshot AND the history.
        assert baseline.main([
            "--out", out, "--scale", "0.1", "--history", history,
            "--check", out, "--counters-only",
        ]) == 0
        assert len(baseline.load_history(history)) == 2
        assert "history: run 2 appended" in capsys.readouterr().out
