"""Tests for modulo folding (non-power-of-two partition counts)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dcj import DCJPartitioner
from repro.core.hashing import BitstringHashFamily
from repro.core.lsj import LSJPartitioner
from repro.core.modulo import ModuloFoldPartitioner, dcj_with_any_k, lsj_with_any_k
from repro.core.operator import run_disk_join
from repro.core.partitioning import PartitionAssignment
from repro.core.psj import PSJPartitioner
from repro.core.sets import Relation, containment_pairs_nested_loop
from repro.errors import ConfigurationError


class TestFolding:
    def test_indices_in_folded_range(self):
        base = DCJPartitioner(BitstringHashFamily(32, num_functions=6))
        folded = ModuloFoldPartitioner(base, 48)  # the paper's "say k = 48"
        assert folded.num_partitions == 48
        for elements in ({1, 2}, set(range(64)), set()):
            for index in folded.assign_r(frozenset(elements)):
                assert 0 <= index < 48
            for index in folded.assign_s(frozenset(elements)):
                assert 0 <= index < 48

    def test_duplicates_merged(self):
        """Folding can only reduce replication."""
        base = DCJPartitioner(BitstringHashFamily(32, num_functions=6))
        folded = ModuloFoldPartitioner(base, 5)
        for elements in ({3, 7, 50}, set(range(40))):
            base_copies = len(base.assign_s(frozenset(elements)))
            folded_copies = len(folded.assign_s(frozenset(elements)))
            assert folded_copies <= base_copies
            assert folded_copies <= 5

    def test_cannot_fold_upwards(self):
        base = PSJPartitioner(4)
        with pytest.raises(ConfigurationError):
            ModuloFoldPartitioner(base, 8)

    def test_describe_and_name(self):
        base = DCJPartitioner(BitstringHashFamily(16, num_functions=4))
        folded = ModuloFoldPartitioner(base, 10)
        assert folded.name == "DCJ-mod"
        assert "folded to k=10" in folded.describe()


class TestConvenienceBuilders:
    def test_power_of_two_passthrough(self):
        partitioner = dcj_with_any_k(64, 10, 20)
        assert isinstance(partitioner, DCJPartitioner)
        assert partitioner.num_partitions == 64

    def test_arbitrary_k(self):
        partitioner = dcj_with_any_k(48, 10, 20)
        assert partitioner.num_partitions == 48
        lsj = lsj_with_any_k(12, 10, 20)
        assert lsj.num_partitions == 12

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            dcj_with_any_k(0, 10, 20)

    def test_end_to_end_join(self, small_workload):
        lhs, rhs = small_workload
        expected = containment_pairs_nested_loop(lhs, rhs)
        for k in (3, 12, 48):
            result, metrics = run_disk_join(lhs, rhs, dcj_with_any_k(k, 8, 16))
            assert result == expected, k
            assert metrics.num_partitions == k


@settings(max_examples=30, deadline=None)
@given(
    r_sets=st.lists(st.frozensets(st.integers(0, 300), max_size=8), max_size=10),
    s_sets=st.lists(st.frozensets(st.integers(0, 300), max_size=12), max_size=10),
    k=st.integers(min_value=1, max_value=20),
)
def test_folded_partitioning_is_correct(r_sets, s_sets, k):
    """Property: folding preserves co-location of every joining pair."""
    lhs = Relation.from_sets(r_sets)
    rhs = Relation.from_sets(s_sets)
    partitioner = dcj_with_any_k(k, 5, 8)
    assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
    assert assignment.covers(containment_pairs_nested_loop(lhs, rhs))
