"""Tests for the setjoins command-line interface."""

import pytest

from repro.cli import load_relation_file, main


@pytest.fixture()
def set_files(tmp_path):
    r_file = tmp_path / "r.txt"
    s_file = tmp_path / "s.txt"
    # The paper's example relations.
    r_file.write_text("1 5\n10 13\n1 3\n8 19\n")
    s_file.write_text("1 5 7\n8 10 13\n1 3 13\n# comment\n\n2 3 4\n")
    return str(r_file), str(s_file)


class TestLoadRelationFile:
    def test_parses_sets_with_line_number_tids(self, set_files):
        r_path, s_path = set_files
        relation = load_relation_file(r_path)
        assert relation.tids() == [0, 1, 2, 3]
        assert relation[0].elements == frozenset({1, 5})

    def test_skips_comments_and_blanks(self, set_files):
        __, s_path = set_files
        relation = load_relation_file(s_path)
        assert len(relation) == 4
        assert relation[5].elements == frozenset({2, 3, 4})  # line 5 (0-based)


class TestCommands:
    def test_join_outputs_pairs(self, set_files, capsys):
        r_path, s_path = set_files
        assert main(["join", r_path, s_path, "--algorithm", "dcj", "-k", "8"]) == 0
        output = capsys.readouterr().out
        pairs = {tuple(map(int, line.split())) for line in output.splitlines()}
        assert pairs == {(0, 0), (1, 1), (2, 2)}

    def test_join_auto_plans(self, set_files, capsys):
        r_path, s_path = set_files
        assert main(["join", r_path, s_path]) == 0
        err = capsys.readouterr().err
        assert "planned:" in err

    @pytest.mark.parametrize("algorithm", ["psj", "lsj"])
    def test_join_other_algorithms(self, set_files, capsys, algorithm):
        r_path, s_path = set_files
        assert main(["join", r_path, s_path, "--algorithm", algorithm]) == 0
        output = capsys.readouterr().out
        pairs = {tuple(map(int, line.split())) for line in output.splitlines()}
        assert pairs == {(0, 0), (1, 1), (2, 2)}

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_join_parallel_workers(self, set_files, capsys, backend):
        r_path, s_path = set_files
        assert main([
            "join", r_path, s_path, "--algorithm", "dcj", "-k", "8",
            "--workers", "2", "--parallel-backend", backend,
        ]) == 0
        captured = capsys.readouterr()
        pairs = {tuple(map(int, line.split()))
                 for line in captured.out.splitlines()}
        assert pairs == {(0, 0), (1, 1), (2, 2)}
        assert f"2 workers, {backend} backend" in captured.err

    def test_plan_reports_choice(self, set_files, capsys):
        r_path, s_path = set_files
        assert main(["plan", r_path, s_path]) == 0
        output = capsys.readouterr().out
        assert "algorithm:" in output
        assert "partitions:" in output

    def test_experiment_command(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "Comparison factor" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "DCJ comparisons" in output

    def test_stats_command(self, set_files, capsys):
        r_path, s_path = set_files
        assert main(["stats", r_path, s_path]) == 0
        output = capsys.readouterr().out
        assert "relation R" in output
        assert "join estimates" in output
        assert "signature width" in output

    def test_stats_single_file(self, set_files, capsys):
        r_path, __ = set_files
        assert main(["stats", r_path]) == 0
        assert "cardinality" in capsys.readouterr().out

    def test_generate_roundtrips_through_join(self, tmp_path, capsys):
        out_r = str(tmp_path / "gen_r.txt")
        out_s = str(tmp_path / "gen_s.txt")
        assert main(["generate", out_r, "--size", "30", "--theta", "4",
                     "--domain", "200", "--seed", "1"]) == 0
        assert main(["generate", out_s, "--size", "30", "--theta", "12",
                     "--domain", "200", "--seed", "2",
                     "--distribution", "zipf"]) == 0
        capsys.readouterr()
        assert main(["join", out_r, out_s, "--algorithm", "psj"]) == 0

    def test_generate_distributions(self, tmp_path):
        for distribution in ("selfsimilar", "normal", "clustered"):
            out = str(tmp_path / f"{distribution}.txt")
            assert main(["generate", out, "--size", "15",
                         "--distribution", distribution,
                         "--cardinality", "bimodal"]) == 0

    def test_db_workflow(self, set_files, capsys, tmp_path):
        r_path, s_path = set_files
        db_path = str(tmp_path / "cli.db")
        assert main(["db", db_path, "load", "R", r_path]) == 0
        assert main(["db", db_path, "load", "S", s_path]) == 0
        capsys.readouterr()
        assert main(["db", db_path, "list"]) == 0
        assert "R\t4 tuples" in capsys.readouterr().out
        assert main(["db", db_path, "explain", "R", "S"]) == 0
        assert "chosen:" in capsys.readouterr().out
        assert main(["db", db_path, "join", "R", "S"]) == 0
        pairs = {
            tuple(map(int, line.split()))
            for line in capsys.readouterr().out.splitlines()
        }
        assert pairs == {(0, 0), (1, 1), (2, 2)}
        assert main(["db", db_path, "drop", "R"]) == 0
        capsys.readouterr()
        assert main(["db", db_path, "list"]) == 0
        assert "R\t" not in capsys.readouterr().out

    def test_db_bad_usage(self, tmp_path, capsys):
        db_path = str(tmp_path / "cli.db")
        assert main(["db", db_path, "load", "onlyname"]) == 2
        assert main(["db", db_path, "join", "R"]) == 2
        assert main(["db", db_path, "drop"]) == 2

    def test_missing_file_is_error(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.txt")
        assert main(["join", missing, missing]) == 1

    def test_unknown_experiment_is_error(self, capsys):
        assert main(["experiment", "fig99"]) == 1


class TestPlanInspectorFlags:
    def test_explain_prints_the_plan_without_executing(self, set_files, capsys):
        r_path, s_path = set_files
        assert main(["join", r_path, s_path, "--algorithm", "dcj",
                     "-k", "8", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "set containment join" in out
        assert "α(h1)" in out
        assert "predicted" in out
        assert "observed" not in out
        # No result pairs: EXPLAIN does not run the join.
        assert "\t" not in out

    def test_analyze_prints_predicted_and_observed(self, set_files, capsys):
        r_path, s_path = set_files
        assert main(["join", r_path, s_path, "--algorithm", "dcj",
                     "-k", "8", "--analyze"]) == 0
        captured = capsys.readouterr()
        assert "observed" in captured.out and "err" in captured.out
        assert "phase.verify" in captured.out
        # The usual run summary still lands on stderr.
        assert "signature comparisons" in captured.err

    def test_analyze_writes_drift_jsonl(self, set_files, capsys, tmp_path):
        r_path, s_path = set_files
        drift_path = str(tmp_path / "drift.jsonl")
        assert main(["join", r_path, s_path, "--algorithm", "psj",
                     "-k", "4", "--analyze", "--drift", drift_path]) == 0
        from repro.obs.drift import read_drift_jsonl

        (record,) = read_drift_jsonl(drift_path)
        assert record.algorithm == "PSJ"
        assert "drift record appended" in capsys.readouterr().err

    def test_drift_without_analyze_is_usage_error(self, set_files, capsys):
        r_path, s_path = set_files
        assert main(["join", r_path, s_path, "--drift", "x.jsonl"]) == 2
        assert "--drift requires --analyze" in capsys.readouterr().err

    def test_metrics_to_stdout(self, set_files, capsys):
        r_path, s_path = set_files
        assert main(["join", r_path, s_path, "--algorithm", "dcj",
                     "-k", "8", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE setjoin_joins_total counter" in out
        assert "setjoin_signature_comparisons_total" in out

    def test_metrics_to_file(self, set_files, capsys, tmp_path):
        r_path, s_path = set_files
        metrics_path = str(tmp_path / "metrics.prom")
        assert main(["join", r_path, s_path, "--algorithm", "dcj",
                     "-k", "8", "--metrics", metrics_path]) == 0
        text = open(metrics_path).read()
        assert "setjoin_joins_total" in text
        captured = capsys.readouterr()
        assert "setjoin_joins_total" not in captured.out
        assert "metrics written to" in captured.err

    def test_analyze_with_metrics_exposes_drift_series(
        self, set_files, capsys, tmp_path
    ):
        r_path, s_path = set_files
        metrics_path = str(tmp_path / "metrics.prom")
        assert main(["join", r_path, s_path, "--algorithm", "dcj", "-k", "8",
                     "--analyze", "--metrics", metrics_path]) == 0
        text = open(metrics_path).read()
        assert "setjoin_drift_records_total" in text
        assert "setjoin_drift_seconds_abs_error" in text

    def test_trace_summary_without_trace_file(self, set_files, capsys):
        r_path, s_path = set_files
        assert main(["join", r_path, s_path, "--algorithm", "dcj",
                     "-k", "8", "--trace-summary"]) == 0
        err = capsys.readouterr().err
        assert "join" in err and "phase.partition" in err
        # p50/p95/p99 session latencies ride along with the summary.
        assert "p50=" in err and "p99=" in err

    def test_db_explain_renders_the_plan_tree(
        self, set_files, capsys, tmp_path
    ):
        r_path, s_path = set_files
        db_path = str(tmp_path / "cli.db")
        assert main(["db", db_path, "load", "R", r_path]) == 0
        assert main(["db", db_path, "load", "S", s_path]) == 0
        capsys.readouterr()
        assert main(["db", db_path, "explain", "R", "S"]) == 0
        out = capsys.readouterr().out
        assert "chosen:" in out
        assert "phase.partition" in out and "phase.verify" in out

    def test_serve_parser_accepts_host_and_port(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0"]
        )
        assert arguments.command == "serve"
        assert arguments.host == "0.0.0.0"
        assert arguments.port == 0
        db_arguments = build_parser().parse_args(
            ["db", "x.db", "stats", "--serve", "--port", "0"]
        )
        assert db_arguments.serve and db_arguments.port == 0


class TestAdaptiveFlags:
    def test_recalibrate_requires_analyze_and_drift(self, set_files, capsys):
        r_path, s_path = set_files
        assert main([
            "join", r_path, s_path, "--analyze", "--recalibrate",
        ]) == 2
        assert "--recalibrate requires" in capsys.readouterr().err

    def test_recalibrate_reports_thin_history(
        self, set_files, capsys, tmp_path
    ):
        r_path, s_path = set_files
        drift = str(tmp_path / "drift.jsonl")
        assert main([
            "join", r_path, s_path, "--algorithm", "dcj", "--partitions", "4",
            "--analyze", "--drift", drift, "--recalibrate",
        ]) == 0
        err = capsys.readouterr().err
        assert "# recalibration: history too thin" in err

    def test_model_store_survives_across_invocations(
        self, set_files, capsys, tmp_path
    ):
        from repro.analysis.timemodel import TimeModel
        from repro.obs.adaptive import ModelStore

        r_path, s_path = set_files
        store_path = str(tmp_path / "models.json")
        store = ModelStore(store_path)
        store.add_version(
            TimeModel(1e-6, 2e-6, 0.7), records=24, window=200,
            mean_abs_error_before=0.5, mean_abs_error_after=0.01,
            wall=lambda: 1.0,
        )
        assert main([
            "join", r_path, s_path, "--algorithm", "dcj", "--partitions", "4",
            "--model-store", store_path,
        ]) == 0
        err = capsys.readouterr().err
        assert "planning with recalibrated model v1" in err

    def test_explain_with_drift_history_shows_corrections(
        self, set_files, capsys, tmp_path
    ):
        from repro.analysis.timemodel import PAPER_TIME_MODEL
        from repro.obs.drift import DriftRecord, append_drift_jsonl

        r_path, s_path = set_files
        drift = str(tmp_path / "drift.jsonl")
        for i in range(20):
            predicted = PAPER_TIME_MODEL.predict(1000.0, 100.0, 4)
            append_drift_jsonl(DriftRecord(
                timestamp=float(i), algorithm="DCJ", k=4,
                r_size=4, s_size=4,
                predicted={"seconds": predicted, "comparisons": 1000.0,
                           "replicated": 100.0},
                observed={"seconds": predicted * 2, "comparisons": 1000.0,
                          "replicated": 100.0},
                errors={"seconds": 0.5, "comparisons": 0.0,
                        "replicated": 0.0},
            ), drift)
        assert main([
            "join", r_path, s_path, "--algorithm", "dcj", "--partitions", "4",
            "--explain", "--drift", drift,
        ]) == 0
        out = capsys.readouterr().out
        assert "corrected" in out
        assert "drift_correction" in out

    def test_join_parser_accepts_adaptive_flags(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args([
            "join", "r.txt", "s.txt", "--analyze", "--drift", "d.jsonl",
            "--recalibrate", "--model-store", "m.json",
        ])
        assert arguments.recalibrate
        assert arguments.model_store == "m.json"

    def test_serve_parser_accepts_bind_alias_and_token(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["serve", "--bind", "0.0.0.0", "--token", "s3cret"]
        )
        assert arguments.host == "0.0.0.0"
        assert arguments.token == "s3cret"
