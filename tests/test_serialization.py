"""Unit and property tests for the binary record encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.storage.serialization import (
    decode_partition_entry,
    decode_set,
    decode_tuple_record,
    decode_uvarint,
    encode_partition_entry,
    encode_set,
    encode_tuple_record,
    encode_uvarint,
    partition_entry_size,
)


class TestUvarint:
    def test_zero(self):
        assert encode_uvarint(0) == b"\x00"
        assert decode_uvarint(b"\x00") == (0, 1)

    def test_single_byte_boundary(self):
        assert encode_uvarint(127) == b"\x7f"
        assert len(encode_uvarint(128)) == 2

    def test_known_value(self):
        # 300 = 0b100101100 -> LEB128: 0xAC 0x02
        assert encode_uvarint(300) == b"\xac\x02"

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_uvarint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(SerializationError):
            decode_uvarint(b"\x80")

    def test_overlong_rejected(self):
        with pytest.raises(SerializationError):
            decode_uvarint(b"\xff" * 12)

    def test_decode_at_offset(self):
        data = b"\x01" + encode_uvarint(999)
        value, end = decode_uvarint(data, 1)
        assert value == 999
        assert end == len(data)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, value):
        encoded = encode_uvarint(value)
        assert decode_uvarint(encoded) == (value, len(encoded))


class TestSetEncoding:
    def test_empty_set(self):
        encoded = encode_set(frozenset())
        assert decode_set(encoded) == (frozenset(), len(encoded))

    def test_delta_coding_is_compact(self):
        dense = encode_set(set(range(1000, 1100)))
        sparse = encode_set({i * 10_000 for i in range(100)})
        assert len(dense) < len(sparse)

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_set({-1, 2})

    @given(st.frozensets(st.integers(min_value=0, max_value=2**40), max_size=200))
    def test_roundtrip(self, elements):
        encoded = encode_set(elements)
        decoded, end = decode_set(encoded)
        assert decoded == elements
        assert end == len(encoded)


class TestTupleRecord:
    def test_roundtrip_with_payload(self):
        record = encode_tuple_record(42, {1, 5, 9}, b"x" * 100)
        assert decode_tuple_record(record) == (42, frozenset({1, 5, 9}), b"x" * 100)

    def test_empty_payload(self):
        record = encode_tuple_record(0, set(), b"")
        assert decode_tuple_record(record) == (0, frozenset(), b"")

    def test_truncated_payload_rejected(self):
        record = encode_tuple_record(1, {2}, b"abcdef")
        with pytest.raises(SerializationError):
            decode_tuple_record(record[:-2])

    @given(
        st.integers(min_value=0, max_value=2**50),
        st.frozensets(st.integers(min_value=0, max_value=2**30), max_size=50),
        st.binary(max_size=120),
    )
    def test_roundtrip_property(self, tid, elements, payload):
        record = encode_tuple_record(tid, elements, payload)
        assert decode_tuple_record(record) == (tid, elements, payload)


class TestPartitionEntry:
    def test_fixed_width(self):
        assert partition_entry_size(20) == 28
        entry = encode_partition_entry(0xABCDEF, 7, 20)
        assert len(entry) == 28

    def test_roundtrip(self):
        entry = encode_partition_entry((1 << 159) | 5, 123456, 20)
        assert decode_partition_entry(entry, 0, 20) == ((1 << 159) | 5, 123456)

    def test_signature_overflow_rejected(self):
        with pytest.raises(SerializationError):
            encode_partition_entry(1 << 200, 1, 20)

    def test_truncated_rejected(self):
        entry = encode_partition_entry(1, 1, 20)
        with pytest.raises(SerializationError):
            decode_partition_entry(entry, 4, 20)

    @given(
        st.integers(min_value=0, max_value=(1 << 160) - 1),
        st.integers(min_value=0, max_value=2**60),
    )
    def test_roundtrip_property(self, signature, tid):
        entry = encode_partition_entry(signature, tid, 20)
        assert decode_partition_entry(entry, 0, 20) == (signature, tid)
