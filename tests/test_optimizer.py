"""Tests for the 5-step algorithm-selection procedure."""

import pytest

from repro.analysis.timemodel import PAPER_TIME_MODEL
from repro.core.dcj import DCJPartitioner
from repro.core.lsj import LSJPartitioner
from repro.core.optimizer import JoinPlan, choose_plan
from repro.core.psj import PSJPartitioner
from repro.core.sets import Relation
from repro.data.workloads import uniform_workload
from repro.errors import ConfigurationError


def make_relations(size, theta_r, theta_s, seed=3):
    return uniform_workload(
        size, size, theta_r, theta_s, domain_size=100_000, seed=seed
    ).materialize()


class TestChoosePlan:
    def test_large_sets_choose_dcj(self):
        lhs, rhs = make_relations(1000, 50, 100)
        plan = choose_plan(lhs, rhs, PAPER_TIME_MODEL)
        assert plan.algorithm == "DCJ"
        assert plan.k >= 2

    def test_small_sets_large_relations_choose_psj(self):
        # The paper's example: θ = 10 at |R| = 100000 → PSJ.  Planning
        # needs only sizes and cardinalities, so synthesize directly.
        lhs = Relation.from_sets([{i, i + 1} for i in range(300)])
        plan_small = choose_plan(lhs, lhs, PAPER_TIME_MODEL)
        # At only 300 tuples DCJ is still fine; scale up via a fake
        # relation of the same cardinality profile but many tuples.
        big = Relation.from_sets(
            [{j % 1000, (j * 7) % 1000, (j * 13) % 1000} for j in range(20_000)]
        )
        plan_big = choose_plan(big, big, PAPER_TIME_MODEL)
        assert plan_big.predicted_seconds > plan_small.predicted_seconds
        assert plan_big.algorithm == "PSJ"

    def test_candidates_cover_grid(self):
        lhs, rhs = make_relations(500, 20, 40)
        plan = choose_plan(lhs, rhs, PAPER_TIME_MODEL, levels=(1, 2, 3))
        assert len(plan.candidates) == 2 * 3  # two algorithms, three levels
        best = min(plan.candidates, key=lambda c: c.predicted_seconds)
        assert plan.algorithm == best.algorithm
        assert plan.k == best.k

    def test_statistics_recorded(self):
        lhs, rhs = make_relations(400, 20, 40)
        plan = choose_plan(lhs, rhs, PAPER_TIME_MODEL)
        assert plan.r_size == plan.s_size == 400
        assert plan.theta_r == pytest.approx(20, abs=1)
        assert plan.theta_s == pytest.approx(40, abs=1)

    def test_sampling_mode(self):
        lhs, rhs = make_relations(400, 20, 40)
        plan = choose_plan(lhs, rhs, PAPER_TIME_MODEL, sample_size=50)
        assert plan.theta_r == pytest.approx(20, abs=3)

    def test_lsj_can_be_included_but_never_wins(self):
        lhs, rhs = make_relations(800, 30, 60)
        plan = choose_plan(
            lhs, rhs, PAPER_TIME_MODEL, algorithms=("DCJ", "PSJ", "LSJ")
        )
        assert plan.algorithm != "LSJ"

    def test_empty_relation_rejected(self):
        lhs, __ = make_relations(10, 5, 10)
        with pytest.raises(ConfigurationError):
            choose_plan(Relation(), lhs, PAPER_TIME_MODEL)

    def test_empty_sets_only_rejected(self):
        degenerate = Relation.from_sets([set(), set()])
        with pytest.raises(ConfigurationError):
            choose_plan(degenerate, degenerate, PAPER_TIME_MODEL)


class TestBuildPartitioner:
    def plan_for(self, algorithm):
        return JoinPlan(
            algorithm=algorithm, k=16, predicted_seconds=1.0,
            theta_r=10, theta_s=20, r_size=100, s_size=100,
        )

    def test_builds_each_algorithm(self):
        assert isinstance(self.plan_for("DCJ").build_partitioner(), DCJPartitioner)
        assert isinstance(self.plan_for("PSJ").build_partitioner(), PSJPartitioner)
        assert isinstance(self.plan_for("LSJ").build_partitioner(), LSJPartitioner)

    def test_partition_count_propagates(self):
        partitioner = self.plan_for("DCJ").build_partitioner()
        assert partitioner.num_partitions == 16

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            self.plan_for("XYZ").build_partitioner()

    def test_planned_join_is_correct(self, small_workload):
        from repro.core.operator import run_disk_join
        from repro.core.sets import containment_pairs_nested_loop

        lhs, rhs = small_workload
        plan = choose_plan(lhs, rhs, PAPER_TIME_MODEL)
        result, __ = run_disk_join(lhs, rhs, plan.build_partitioner())
        assert result == containment_pairs_nested_loop(lhs, rhs)
