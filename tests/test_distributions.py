"""Tests for the synthetic element and cardinality distributions."""

import random

import pytest

from repro.data.distributions import (
    CARDINALITY_DISTRIBUTIONS,
    ELEMENT_DISTRIBUTIONS,
    BimodalCardinality,
    ClusteredElements,
    ConstantCardinality,
    NormalCardinality,
    NormalElements,
    SelfSimilarElements,
    UniformCardinality,
    UniformElements,
    ZipfCardinality,
    ZipfElements,
    cardinality_distribution,
    element_distribution,
)
from repro.errors import ConfigurationError


class TestElementDistributions:
    @pytest.mark.parametrize("name", ELEMENT_DISTRIBUTIONS)
    def test_registry_builds_and_draws_in_domain(self, name):
        distribution = element_distribution(name, 1000)
        rng = random.Random(5)
        for __ in range(500):
            assert 0 <= distribution.draw(rng) < 1000

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            element_distribution("exotic", 100)

    def test_sample_set_distinct_elements(self):
        distribution = UniformElements(50)
        rng = random.Random(1)
        for cardinality in (0, 1, 25, 50):
            sample = distribution.sample_set(rng, cardinality)
            assert len(sample) == cardinality

    def test_sample_set_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformElements(10).sample_set(random.Random(0), 11)

    def test_skewed_distribution_terminates_on_tiny_support(self):
        """Clustered draws cover a small slice of the domain; rejection
        sampling must still terminate by topping up uniformly."""
        distribution = ClusteredElements(100, num_clusters=1,
                                         cluster_fraction=0.05)
        sample = distribution.sample_set(random.Random(2), 50)
        assert len(sample) == 50

    def test_zipf_mass_concentrates_on_low_ranks(self):
        distribution = ZipfElements(1000, skew=1.0)
        rng = random.Random(3)
        draws = [distribution.draw(rng) for __ in range(3000)]
        low = sum(1 for value in draws if value < 100)
        assert low / len(draws) > 0.5

    def test_selfsimilar_8020(self):
        distribution = SelfSimilarElements(1000, h=0.2)
        rng = random.Random(4)
        draws = [distribution.draw(rng) for __ in range(5000)]
        in_first_fifth = sum(1 for value in draws if value < 200)
        assert in_first_fifth / len(draws) == pytest.approx(0.8, abs=0.05)

    def test_normal_centered(self):
        distribution = NormalElements(1000, spread=0.1)
        rng = random.Random(5)
        draws = [distribution.draw(rng) for __ in range(3000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(500, abs=30)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            UniformElements(0)
        with pytest.raises(ConfigurationError):
            ZipfElements(100, skew=0)
        with pytest.raises(ConfigurationError):
            SelfSimilarElements(100, h=1.5)
        with pytest.raises(ConfigurationError):
            NormalElements(100, spread=0)
        with pytest.raises(ConfigurationError):
            ClusteredElements(100, num_clusters=0)


class TestCardinalityDistributions:
    @pytest.mark.parametrize("name", CARDINALITY_DISTRIBUTIONS)
    def test_registry_builds_positive_draws(self, name):
        distribution = cardinality_distribution(name, theta=20)
        rng = random.Random(7)
        draws = [distribution.draw(rng) for __ in range(300)]
        assert all(value >= 1 for value in draws)

    @pytest.mark.parametrize("name", CARDINALITY_DISTRIBUTIONS)
    def test_mean_close_to_empirical(self, name):
        distribution = cardinality_distribution(name, theta=20)
        rng = random.Random(8)
        draws = [distribution.draw(rng) for __ in range(8000)]
        empirical = sum(draws) / len(draws)
        assert empirical == pytest.approx(distribution.mean(), rel=0.1)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            cardinality_distribution("exotic", 10)

    def test_constant(self):
        distribution = ConstantCardinality(7)
        assert distribution.draw(random.Random(0)) == 7
        assert distribution.mean() == 7.0

    def test_uniform_band(self):
        distribution = UniformCardinality(45, 55)
        rng = random.Random(1)
        draws = {distribution.draw(rng) for __ in range(1000)}
        assert min(draws) >= 45 and max(draws) <= 55
        assert distribution.mean() == 50.0

    def test_bimodal_mixture(self):
        distribution = BimodalCardinality(10, 100, high_fraction=0.25)
        assert distribution.mean() == pytest.approx(0.25 * 100 + 0.75 * 10)
        rng = random.Random(2)
        assert {distribution.draw(rng) for __ in range(200)} == {10, 100}

    def test_normal_floor(self):
        distribution = NormalCardinality(2, 5)
        rng = random.Random(3)
        assert all(distribution.draw(rng) >= 1 for __ in range(500))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ConstantCardinality(-1)
        with pytest.raises(ConfigurationError):
            UniformCardinality(10, 5)
        with pytest.raises(ConfigurationError):
            NormalCardinality(0, 1)
        with pytest.raises(ConfigurationError):
            ZipfCardinality(5, 2)
        with pytest.raises(ConfigurationError):
            BimodalCardinality(10, 5)
        with pytest.raises(ConfigurationError):
            BimodalCardinality(5, 10, high_fraction=2.0)
