"""Smoke tests: every example script runs cleanly end to end.

Examples are the repository's public face; these tests keep them green as
the library evolves.  Each script is executed in-process (``runpy``) with
its module-level size constants shrunk so the whole file stays fast.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: per-script overrides shrinking workloads for test speed
OVERRIDES = {
    "course_prerequisites.py": {"NUM_COURSES": 60, "NUM_STUDENTS": 50},
    "job_matching.py": {"NUM_CANDIDATES": 80},
    "gene_expression.py": {"NUM_GENES": 800, "NUM_PATHWAYS": 30,
                           "NUM_SNAPSHOTS": 10},
    "vendor_parts.py": {"NUM_VENDORS": 30, "NUM_PROJECTS": 40,
                        "NUM_PARTS": 500},
    "document_search.py": {"NUM_DOCUMENTS": 80, "NUM_QUERIES": 30,
                           "VOCABULARY_SIZE": 800},
    "quickstart.py": {},
}


def run_example(script_name: str, capsys) -> str:
    """Execute one example with shrunken constants; returns its stdout."""
    path = EXAMPLES_DIR / script_name
    assert path.exists(), f"missing example {script_name}"
    # Import the module body WITHOUT running main, patch sizes, then main().
    namespace = runpy.run_path(str(path), run_name="not_main")
    for constant, value in OVERRIDES[script_name].items():
        assert constant in namespace, (script_name, constant)
    # Re-execute with the overrides applied at module scope.
    source = path.read_text()
    module_globals = {"__name__": "not_main", "__file__": str(path)}
    exec(compile(source, str(path), "exec"), module_globals)
    module_globals.update(OVERRIDES[script_name])
    module_globals["main"]()
    return capsys.readouterr().out


@pytest.mark.parametrize("script_name", sorted(OVERRIDES))
def test_example_runs(script_name, capsys):
    output = run_example(script_name, capsys)
    assert output.strip(), f"{script_name} produced no output"


def test_quickstart_reports_paper_result(capsys):
    output = run_example("quickstart.py", capsys)
    assert "('a', 'A')" in output
    assert "('b', 'B')" in output
    assert "('c', 'C')" in output


def test_examples_directory_is_fully_covered():
    """Every example script on disk has a smoke test entry."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(OVERRIDES)
