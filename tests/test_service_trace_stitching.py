"""End-to-end trace stitching: one tree per query across processes.

The PR-8 acceptance bar: a query admitted by the service, retried after
a chaos worker kill, fanned out across shards, and executed by process
workers must leave exactly one stitched span tree — admission root,
attempt spans as siblings (the killed attempt carries its error), the
coordinator fan-out, per-shard joins, and the workers' own spans — all
tagged with the service ``query_id``.
"""

import pytest

from repro.database import SetJoinDatabase
from repro.obs.export import read_trace_jsonl, validate_trace_records
from repro.obs.registry import MetricsRegistry
from repro.parallel.executor import ProcessBackend
from repro.service import QueryService


class KillOnce:
    """Shard hook that kills exactly one worker, then behaves."""

    def __init__(self):
        self.killed = False
        self.on_event = None

    def __call__(self, spec):
        if not self.killed:
            self.killed = True
            spec.chaos_kill = True
            if self.on_event is not None:
                self.on_event("worker_kill", getattr(spec, "index", None))


def trees_by_root(records):
    """Group flat records into ``{root_record: [records...]}`` trees."""
    by_id = {record["span_id"]: record for record in records}

    def root_of(record):
        while record["parent_id"] is not None:
            record = by_id[record["parent_id"]]
        return record

    trees = {}
    for record in records:
        root = root_of(record)
        trees.setdefault(root["span_id"], (root, []))[1].append(record)
    return list(trees.values())


def spans_named(records, name):
    return [record for record in records if record["name"] == name]


@pytest.fixture()
def trace_path(tmp_path):
    return str(tmp_path / "trace.jsonl")


def service_kwargs(**overrides):
    kwargs = {"workers": 2, "backend": "thread",
              "registry": MetricsRegistry(), "flight_recorder": 16}
    kwargs.update(overrides)
    return kwargs


class TestSingleDatabaseStitching:
    def test_each_query_yields_exactly_one_tree(self, small_workload,
                                                trace_path):
        lhs, rhs = small_workload
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            with QueryService(
                db, trace_path=trace_path, **service_kwargs()
            ) as service:
                service.join("r", "s")
                service.join("r", "s")
        records = read_trace_jsonl(trace_path)
        validate_trace_records(records)
        trees = trees_by_root(records)
        assert len(trees) == 2
        query_ids = set()
        for root, members in trees:
            assert root["name"] == "query"
            assert root["attrs"]["kind"] == "join"
            query_ids.add(root["attrs"]["query_id"])
            names = {record["name"] for record in members}
            assert {"query", "attempt", "join", "phase.partition",
                    "phase.join"} <= names
        assert len(query_ids) == 2

    def test_flight_recorder_sees_the_same_tree(self, small_workload):
        lhs, rhs = small_workload
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            with QueryService(db, **service_kwargs()) as service:
                service.join("r", "s")
                entry = service.debug_queries()[0]
                detail = service.debug_query(entry["query_id"])
        validate_trace_records(detail["spans"])
        trees = trees_by_root(detail["spans"])
        assert len(trees) == 1
        root, __ = trees[0]
        assert root["attrs"]["query_id"] == detail["query_id"]


@pytest.mark.skipif(not ProcessBackend(2).available(),
                    reason="process backend unavailable in this sandbox")
class TestProcessBackendStitching:
    def test_worker_spans_ship_across_the_process_boundary(
        self, tmp_path, small_workload, trace_path
    ):
        lhs, rhs = small_workload
        path = str(tmp_path / "single.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        with QueryService(
            path, trace_path=trace_path,
            **service_kwargs(backend="process"),
        ) as service:
            pairs, __ = service.join("r", "s")
        assert pairs
        records = read_trace_jsonl(trace_path)
        validate_trace_records(records)
        (root, members), = trees_by_root(records)
        shards = spans_named(members, "shard")
        assert len(shards) >= 2  # one span per process worker shard
        assert all(
            span["attrs"]["query_id"] == root["attrs"]["query_id"]
            for span in shards
        )

    def test_killed_attempt_is_a_sibling_span_in_the_same_tree(
        self, tmp_path, small_workload, trace_path
    ):
        lhs, rhs = small_workload
        path = str(tmp_path / "killed.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            expected, __ = db.join("r", "s")
        chaos = KillOnce()
        with QueryService(
            path, trace_path=trace_path,
            **service_kwargs(backend="process", chaos=chaos),
        ) as service:
            pairs, __ = service.join("r", "s")
            detail = service.debug_query(service.debug_queries()
                                         [0]["query_id"])
        assert pairs == expected  # retried run is bit-identical
        assert chaos.killed
        records = read_trace_jsonl(trace_path)
        validate_trace_records(records)
        (root, members), = trees_by_root(records)
        attempts = spans_named(members, "attempt")
        assert len(attempts) == 2
        assert all(
            span["parent_id"] == root["span_id"] for span in attempts
        )
        by_number = {span["attrs"]["number"]: span for span in attempts}
        assert by_number[1]["attrs"]["error"] == "ParallelExecutionError"
        assert "error" not in by_number[2]["attrs"]
        # The chaos event and the retry are on the recorder timeline.
        events = [event["event"] for event in detail["timeline"]]
        assert "chaos" in events
        assert "retry" in events
        assert detail["status"] == "ok"
        assert detail["attempts"] == 2


@pytest.mark.skipif(not ProcessBackend(2).available(),
                    reason="process backend unavailable in this sandbox")
class TestShardedStitching:
    def test_chaos_kill_across_shards_stitches_one_tree(
        self, small_workload, trace_path
    ):
        lhs, rhs = small_workload
        chaos = KillOnce()
        with QueryService(
            None, shards=2, trace_path=trace_path,
            **service_kwargs(backend="process", chaos=chaos),
        ) as service:
            service.create_relation("r", lhs)
            service.create_relation("s", rhs)
            pairs, __ = service.join("r", "s")
            query_id = service.debug_queries()[0]["query_id"]
            detail = service.debug_query(query_id)
        assert pairs
        assert chaos.killed
        records = read_trace_jsonl(trace_path)
        validate_trace_records(records)
        (root, members), = trees_by_root(records)
        assert root["name"] == "query"
        assert root["attrs"]["query_id"] == query_id

        # Admission → attempts → coordinator → shard → worker, one tree.
        attempts = spans_named(members, "attempt")
        assert len(attempts) == 2
        dist_joins = spans_named(members, "dist.join")
        assert dist_joins  # the coordinator fan-out span
        shard_spans = spans_named(members, "dist.shard")
        shard_ids = {span["attrs"]["shard_id"] for span in shard_spans}
        assert shard_ids == {0, 1}
        assert all(
            span["attrs"]["query_id"] == query_id for span in shard_spans
        )
        worker_spans = spans_named(members, "shard")
        assert worker_spans  # process workers inside each shard
        assert all(
            span["attrs"]["query_id"] == query_id for span in worker_spans
        )
        assert detail["attempts"] == 2
        assert detail["status"] == "ok"
