"""Flight recorder: query contexts, the ring, and postmortems."""

import json
import os

import pytest

from repro.database import SetJoinDatabase
from repro.obs.flight import FlightRecorder, QueryContext
from repro.obs.registry import MetricsRegistry
from repro.service import ChaosConfig, ChaosInjector, QueryService


class FakeWall:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        self.now += 1.0
        return self.now


def make_recorder(**kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("wall", FakeWall())
    return FlightRecorder(**kwargs)


class TestQueryContext:
    def test_timeline_events_are_wall_stamped_in_order(self):
        context = QueryContext(7, "join", wall=FakeWall())
        context.event("admitted")
        context.event("attempt", number=1, backend="thread")
        kinds = [event["event"] for event in context.timeline]
        assert kinds == ["admitted", "attempt"]
        stamps = [event["at"] for event in context.timeline]
        assert stamps == sorted(stamps)
        assert context.timeline[1]["backend"] == "thread"

    def test_snapshot_is_a_deep_copy(self):
        context = QueryContext(7, "join", wall=FakeWall())
        context.event("admitted")
        context.plan = {"algorithm": "PSJ"}
        snapshot = context.snapshot()
        snapshot["timeline"][0]["event"] = "mutated"
        snapshot["plan"]["algorithm"] = "mutated"
        assert context.timeline[0]["event"] == "admitted"
        assert context.plan["algorithm"] == "PSJ"


class TestFlightRecorderRing:
    def test_capacity_bounds_the_ring(self):
        recorder = make_recorder(capacity=3)
        for query_id in range(1, 8):
            context = QueryContext(query_id, "join", wall=FakeWall())
            recorder.record(context, status="ok", seconds=0.1)
        entries = recorder.entries()
        assert [entry["query_id"] for entry in entries] == [7, 6, 5]
        assert recorder.get(1) is None
        assert recorder.get(7)["status"] == "ok"

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            make_recorder(capacity=0)

    def test_entries_are_newest_first_summaries(self):
        recorder = make_recorder()
        recorder.record(
            QueryContext(1, "probe", wall=FakeWall()),
            status="ok", seconds=0.5, attempts=1,
        )
        recorder.record(
            QueryContext(2, "join", wall=FakeWall()),
            status="error", seconds=1.5, attempts=3,
        )
        first, second = recorder.entries()
        assert first == {
            "query_id": 2, "kind": "join", "status": "error",
            "seconds": 1.5, "attempts": 3, "postmortem": True,
        }
        assert second["query_id"] == 1
        assert second["postmortem"] is False


class TestPostmortems:
    def test_failure_statuses_freeze_postmortems(self):
        recorder = make_recorder()
        for query_id, status in enumerate(
            ("deadline_exceeded", "error", "internal_error"), start=1
        ):
            recorder.record(
                QueryContext(query_id, "join", wall=FakeWall()),
                status=status, seconds=0.1,
            )
        assert recorder.postmortems() == [1, 2, 3]

    def test_ok_within_objective_is_not_a_postmortem(self):
        recorder = make_recorder()
        recorder.record(
            QueryContext(1, "join", wall=FakeWall()),
            status="ok", seconds=0.1, objective=1.0,
        )
        assert recorder.postmortems() == []

    def test_slow_ok_query_becomes_a_postmortem(self):
        recorder = make_recorder()
        recorder.record(
            QueryContext(1, "join", wall=FakeWall()),
            status="ok", seconds=2.0, objective=1.0,
        )
        assert recorder.postmortems() == [1]
        postmortem = recorder.get(1)
        assert postmortem["postmortem_reason"] == "latency_objective_exceeded"
        assert postmortem["objective_seconds"] == 1.0
        assert "environment" in postmortem

    def test_postmortems_survive_ring_eviction(self):
        recorder = make_recorder(capacity=2)
        recorder.record(
            QueryContext(1, "join", wall=FakeWall()),
            status="error", seconds=0.1,
            error=RuntimeError("worker died"),
        )
        for query_id in range(2, 6):
            recorder.record(
                QueryContext(query_id, "join", wall=FakeWall()),
                status="ok", seconds=0.1,
            )
        # Evicted from the ring, still retrievable as a postmortem.
        assert all(e["query_id"] != 1 for e in recorder.entries())
        postmortem = recorder.get(1)
        assert postmortem["error"] == {
            "type": "RuntimeError", "detail": "worker died",
        }

    def test_postmortem_dumped_to_disk(self, tmp_path):
        recorder = make_recorder(postmortem_dir=str(tmp_path / "pm"))
        recorder.record(
            QueryContext(9, "join", wall=FakeWall()),
            status="error", seconds=0.1,
        )
        path = tmp_path / "pm" / "postmortem-q9.json"
        assert path.exists()
        dumped = json.loads(path.read_text())
        assert dumped["query_id"] == 9
        assert dumped["postmortem_reason"] == "error"
        assert not os.path.exists(str(path) + ".tmp")


class TestRingEvictionOrdering:
    def test_mixed_ok_and_failed_evict_strictly_oldest_first(self):
        """Ring eviction is insertion-ordered regardless of status; the
        postmortem map is what privileges failures, not the ring."""
        recorder = make_recorder(capacity=4)
        statuses = {}
        for query_id in range(1, 11):
            status = "error" if query_id % 3 == 0 else "ok"
            statuses[query_id] = status
            recorder.record(
                QueryContext(query_id, "join", wall=FakeWall()),
                status=status, seconds=0.1,
            )
        entries = recorder.entries()
        assert [entry["query_id"] for entry in entries] == [10, 9, 8, 7]
        assert [entry["status"] for entry in entries] == [
            statuses[query_id] for query_id in (10, 9, 8, 7)
        ]
        # Evicted ok queries are gone; evicted failures survive as
        # postmortems and the summaries flag which entries have one.
        assert recorder.get(1) is None
        assert recorder.get(3)["postmortem_reason"] == "error"
        assert recorder.postmortems() == [3, 6, 9]
        flagged = {e["query_id"] for e in entries if e["postmortem"]}
        assert flagged == {9}

    def test_postmortem_map_evicts_oldest_failure_first(self):
        recorder = make_recorder(capacity=2)
        for query_id in range(1, 6):
            recorder.record(
                QueryContext(query_id, "join", wall=FakeWall()),
                status="error", seconds=0.1,
            )
        assert recorder.postmortems() == [4, 5]
        assert recorder.get(3) is None


class TestPostmortemDumpBudget:
    @staticmethod
    def dump_failures(recorder, query_ids):
        for query_id in query_ids:
            recorder.record(
                QueryContext(query_id, "join", wall=FakeWall()),
                status="error", seconds=0.1,
            )

    @staticmethod
    def listing(directory):
        live = sorted(
            name for name in os.listdir(directory)
            if name.endswith(".json") and name.startswith("postmortem-q")
        )
        stale = sorted(
            name for name in os.listdir(directory)
            if name.endswith(".json.stale")
        )
        return live, stale

    def test_rejects_nonpositive_max_files(self, tmp_path):
        with pytest.raises(ValueError, match="postmortem_max_files"):
            make_recorder(postmortem_dir=str(tmp_path),
                          postmortem_max_files=0)

    def test_file_count_cap_archives_oldest_to_stale(self, tmp_path):
        directory = str(tmp_path / "pm")
        recorder = make_recorder(
            postmortem_dir=directory, postmortem_max_files=3,
        )
        self.dump_failures(recorder, range(1, 9))
        live, stale = self.listing(directory)
        # Newest three stay live; older dumps moved aside, not deleted.
        assert live == [f"postmortem-q{n}.json" for n in (6, 7, 8)]
        assert len(stale) == 3  # stale pool bounded at max_files too
        assert stale == [f"postmortem-q{n}.json.stale" for n in (3, 4, 5)]

    def test_byte_cap_archives_until_under_budget(self, tmp_path):
        directory = str(tmp_path / "pm")
        recorder = make_recorder(
            postmortem_dir=directory, postmortem_max_files=100,
            postmortem_max_bytes=1,
        )
        self.dump_failures(recorder, range(1, 4))
        live, stale = self.listing(directory)
        # Every dump busts a 1-byte budget, so nothing stays live.
        assert live == []
        assert stale == [f"postmortem-q{n}.json.stale" for n in (1, 2, 3)]

    def test_archived_dumps_still_parse(self, tmp_path):
        directory = str(tmp_path / "pm")
        recorder = make_recorder(
            postmortem_dir=directory, postmortem_max_files=1,
        )
        self.dump_failures(recorder, [1, 2])
        stale_path = os.path.join(directory, "postmortem-q1.json.stale")
        assert json.loads(open(stale_path).read())["query_id"] == 1

    def test_directory_has_a_hard_file_ceiling(self, tmp_path):
        directory = str(tmp_path / "pm")
        recorder = make_recorder(
            postmortem_dir=directory, postmortem_max_files=2,
        )
        self.dump_failures(recorder, range(1, 30))
        live, stale = self.listing(directory)
        assert len(live) + len(stale) <= 4  # 2 × max_files


@pytest.fixture()
def loaded_db(small_workload):
    lhs, rhs = small_workload
    with SetJoinDatabase.open() as db:
        db.create_relation("r", lhs)
        db.create_relation("s", rhs)
        yield db


def make_service(db, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backend", "thread")
    return QueryService(db, **kwargs)


class TestServiceIntegration:
    def test_results_bit_identical_with_recorder_and_profiler_on(
        self, loaded_db
    ):
        with make_service(loaded_db) as plain:
            expected, expected_metrics = plain.join("r", "s")
        with make_service(
            loaded_db, flight_recorder=8,
            slo={"join": 30.0}, profile_hz=200.0,
        ) as observed:
            pairs, metrics = observed.join("r", "s")
        assert pairs == expected
        assert (
            metrics.signature_comparisons
            == expected_metrics.signature_comparisons
        )
        assert (
            metrics.replicated_signatures
            == expected_metrics.replicated_signatures
        )

    def test_join_records_full_evidence(self, loaded_db):
        with make_service(
            loaded_db, flight_recorder=8, plan_cache_size=4,
        ) as service:
            service.join("r", "s")
            entries = service.debug_queries()
            assert entries[0]["kind"] == "join"
            assert entries[0]["status"] == "ok"
            detail = service.debug_query(entries[0]["query_id"])
        events = [event["event"] for event in detail["timeline"]]
        assert events[:2] == ["admitted", "attempt"]
        assert "attempt.ok" in events
        assert detail["plan"]["algorithm"] in ("DCJ", "PSJ", "LSJ", "SHJ")
        assert any(line for line in detail["plan"]["explain"])
        span_names = {span["name"] for span in detail["spans"]}
        assert {"query", "attempt", "join"} <= span_names
        assert all(
            span["attrs"].get("query_id") is not None
            for span in detail["spans"] if span["parent_id"] is None
        )
        assert isinstance(detail["registry_delta"], dict)

    def test_failed_query_gets_a_postmortem_with_chaos_timeline(
        self, loaded_db, tmp_path
    ):
        chaos = ChaosInjector(
            ChaosConfig(worker_kill_rate=1.0), seed=3,
            registry=MetricsRegistry(),
        )
        postmortem_dir = str(tmp_path / "pm")
        with make_service(
            loaded_db, chaos=chaos, flight_recorder=8,
            postmortem_dir=postmortem_dir,
        ) as service:
            chaos.arm()
            with pytest.raises(Exception):
                service.join("r", "s")
            chaos.disarm()
            frozen = service._flight.postmortems()
            assert len(frozen) == 1
            postmortem = service.debug_query(frozen[0])
        assert postmortem["status"] == "error"
        assert postmortem["attempts"] >= 3
        events = [event["event"] for event in postmortem["timeline"]]
        assert "chaos" in events
        assert "retry" in events
        assert "attempt.failed" in events
        chaos_events = [
            event for event in postmortem["timeline"]
            if event["event"] == "chaos"
        ]
        assert all(
            event["fault"] == "worker_kill" for event in chaos_events
        )
        files = os.listdir(postmortem_dir)
        assert files == [f"postmortem-q{postmortem['query_id']}.json"]

    def test_untracked_service_has_no_debug_surface(self, loaded_db):
        with make_service(loaded_db) as service:
            service.join("r", "s")
            assert service.debug_queries() is None
            assert service.debug_query(1) is None
            assert service.profile_report() is None

    def test_postmortem_dir_implies_recorder(self, loaded_db, tmp_path):
        with make_service(
            loaded_db, postmortem_dir=str(tmp_path / "pm"),
        ) as service:
            service.join("r", "s")
            assert service.debug_queries() is not None
