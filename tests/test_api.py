"""Tests for the high-level one-call join API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import (
    containment_join,
    self_containment_join,
    overlap_join,
    set_equality_join,
    superset_join,
)
from repro.core.sets import Relation, containment_pairs_nested_loop
from repro.errors import ConfigurationError


class TestContainmentJoin:
    def test_auto(self, small_workload):
        lhs, rhs = small_workload
        result, metrics = containment_join(lhs, rhs)
        assert result == containment_pairs_nested_loop(lhs, rhs)
        assert metrics.algorithm in ("DCJ", "PSJ")

    @pytest.mark.parametrize("algorithm", ["DCJ", "PSJ", "LSJ"])
    def test_forced_algorithm(self, small_workload, algorithm):
        lhs, rhs = small_workload
        result, metrics = containment_join(lhs, rhs, algorithm=algorithm)
        assert result == containment_pairs_nested_loop(lhs, rhs)

    @pytest.mark.parametrize("algorithm", ["DCJ", "LSJ"])
    def test_non_power_of_two_k(self, small_workload, algorithm):
        lhs, rhs = small_workload
        result, metrics = containment_join(
            lhs, rhs, algorithm=algorithm, num_partitions=12
        )
        assert result == containment_pairs_nested_loop(lhs, rhs)
        assert metrics.num_partitions == 12

    def test_empty_relations(self):
        result, metrics = containment_join(Relation(), Relation())
        assert result == set()
        assert metrics.result_size == 0

    def test_unknown_algorithm(self, small_workload):
        lhs, rhs = small_workload
        with pytest.raises(ConfigurationError):
            containment_join(lhs, rhs, algorithm="SHJ")


class TestSupersetJoin:
    def test_swapped_semantics(self):
        big = Relation.from_sets([{1, 2, 3}, {9}])
        small = Relation.from_sets([{1, 2}, {3}, {9}])
        result, __ = superset_join(big, small, algorithm="PSJ")
        assert result == {(0, 0), (0, 1), (1, 2)}

    def test_inverse_of_containment(self, small_workload):
        lhs, rhs = small_workload
        forward, __ = containment_join(lhs, rhs, algorithm="PSJ")
        backward, __ = superset_join(rhs, lhs, algorithm="PSJ")
        assert backward == {(s, r) for r, s in forward}


class TestSelfContainmentJoin:
    def test_strict_drops_reflexive_pairs(self):
        relation = Relation.from_sets([{1}, {1, 2}, {1, 2, 3}, {9}])
        pairs, metrics = self_containment_join(relation, algorithm="PSJ")
        assert pairs == {(0, 1), (0, 2), (1, 2)}
        assert metrics.result_size == 3

    def test_non_strict_keeps_reflexive_pairs(self):
        relation = Relation.from_sets([{1}, {2}])
        pairs, __ = self_containment_join(
            relation, algorithm="PSJ", strict=False
        )
        assert pairs == {(0, 0), (1, 1)}

    def test_duplicate_sets_both_directions(self):
        relation = Relation.from_sets([{5, 6}, {5, 6}])
        pairs, __ = self_containment_join(relation, algorithm="PSJ")
        assert pairs == {(0, 1), (1, 0)}


class TestEqualityJoin:
    def test_exact_matches_only(self):
        lhs = Relation.from_sets([{1, 2}, {3}, {4, 5}])
        rhs = Relation.from_sets([{1, 2}, {4, 5, 6}, {3}])
        result, metrics = set_equality_join(lhs, rhs)
        assert result == {(0, 0), (1, 2)}
        assert metrics.false_positives == 0  # wide signatures, tiny sets

    def test_duplicates(self):
        lhs = Relation.from_sets([{7}] * 3)
        rhs = Relation.from_sets([{7}] * 2)
        result, __ = set_equality_join(lhs, rhs)
        assert len(result) == 6

    def test_narrow_signature_false_positives_verified_away(self):
        lhs = Relation.from_sets([{0}, {4}])
        rhs = Relation.from_sets([{4}])
        result, metrics = set_equality_join(lhs, rhs, signature_bits=4)
        assert result == {(1, 0)}
        assert metrics.false_positives == 1  # {0} collides with {4} mod 4

    def test_empty_sets_equal(self):
        lhs = Relation.from_sets([set()])
        rhs = Relation.from_sets([set(), {1}])
        result, __ = set_equality_join(lhs, rhs)
        assert result == {(0, 0)}


class TestOverlapExport:
    def test_overlap_join_reexported(self):
        lhs = Relation.from_sets([{1, 2}])
        rhs = Relation.from_sets([{2, 3}, {4}])
        result, __ = overlap_join(lhs, rhs)
        assert result == {(0, 0)}


@settings(max_examples=20, deadline=None)
@given(
    r_sets=st.lists(st.frozensets(st.integers(0, 80), max_size=6), max_size=8),
    s_sets=st.lists(st.frozensets(st.integers(0, 80), max_size=8), max_size=8),
)
def test_equality_join_is_exact(r_sets, s_sets):
    lhs = Relation.from_sets(r_sets)
    rhs = Relation.from_sets(s_sets)
    result, __ = set_equality_join(lhs, rhs)
    expected = {
        (r.tid, s.tid) for r in lhs for s in rhs if r.elements == s.elements
    }
    assert result == expected
