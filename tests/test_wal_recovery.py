"""Crash consistency: WAL unit tests, recovery, and full crash sweeps.

The acceptance bar for the reliability layer:

* crashing ``create_relation`` at *every* physical I/O index and
  reopening always yields either the old or the new catalog state, with
  all checksums valid;
* a single flipped bit in any live page raises ``CorruptPageError`` on
  the next read of that page.
"""

import os

import pytest

from repro.errors import ConfigurationError, CorruptPageError, WALError
from repro.storage.faults import CrashSimulator, FaultInjectingDiskManager
from repro.storage.pager import FileDiskManager, InMemoryDiskManager
from repro.storage.wal import WAL_MAGIC, WALDiskManager, WriteAheadLog


def rows(count, start=0, width=5):
    return [(tid, set(range(tid, tid + width))) for tid in range(start, start + count)]


# ----------------------------------------------------------------------
# WriteAheadLog unit tests
# ----------------------------------------------------------------------


class TestWriteAheadLog:
    def test_commit_recover_roundtrip(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path, page_size=256)
        frames = {3: b"\x03" * 240, 1: b"\x01" * 240}
        lsns = wal.log_transaction(frames)
        assert sorted(lsns) == [1, 3]
        assert len(set(lsns.values())) == 2  # distinct, monotonic LSNs
        wal.close()

        reopened = WriteAheadLog(path, page_size=256)
        recovered = reopened.recover()
        assert {pid: img for pid, (img, __) in recovered.items()} == frames
        for pid, (__, lsn) in recovered.items():
            assert lsn == lsns[pid]
        reopened.close()

    def test_frames_without_commit_are_discarded(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path, page_size=256)
        wal.log_transaction({0: b"\xaa" * 240})
        committed_size = wal.size_bytes
        # Append a frame by hand with no COMMIT after it: a crash between
        # the frame append and the commit append.
        import struct
        import zlib

        body = struct.pack(">BQQI", 0x01, 9, 99, 240) + b"\xbb" * 240
        with open(path, "ab") as handle:
            handle.write(body + zlib.crc32(body).to_bytes(4, "big"))
        wal.kill()

        reopened = WriteAheadLog(path, page_size=256)
        recovered = reopened.recover()
        assert set(recovered) == {0}  # only the committed frame
        assert reopened.size_bytes > committed_size
        reopened.close()

    def test_torn_tail_is_discarded(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path, page_size=256)
        wal.log_transaction({0: b"\xaa" * 240})
        wal.log_transaction({1: b"\xbb" * 240})
        wal.close()
        # Tear the file mid-way through the second transaction's records.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 100)

        reopened = WriteAheadLog(path, page_size=256)
        recovered = reopened.recover()
        assert set(recovered) == {0}
        reopened.close()

    def test_corrupt_record_stops_the_scan(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path, page_size=256)
        wal.log_transaction({0: b"\xaa" * 240})
        wal.log_transaction({1: b"\xbb" * 240})
        wal.close()
        # Flip one bit inside the second transaction's frame payload.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 50)
            byte = handle.read(1)[0]
            handle.seek(size - 50)
            handle.write(bytes([byte ^ 0x10]))

        reopened = WriteAheadLog(path, page_size=256)
        assert set(reopened.recover()) == {0}
        reopened.close()

    def test_reset_empties_the_log(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path, page_size=256)
        wal.log_transaction({0: b"\xaa" * 240})
        assert wal.size_bytes > 0
        wal.reset()
        assert wal.size_bytes == 0
        assert wal.recover() == {}
        wal.close()

    def test_in_memory_log_is_ephemeral(self):
        wal = WriteAheadLog(None, page_size=256)
        wal.log_transaction({0: b"\xaa" * 240})
        assert wal.size_bytes > 0
        assert wal.recover() == {}  # nothing survives, by design
        wal.reset()
        assert wal.size_bytes == 0
        wal.close()

    def test_page_size_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "log.wal")
        WriteAheadLog(path, page_size=256).close()
        other = WriteAheadLog(path, page_size=512)
        with pytest.raises(WALError):
            other.recover()
        other.close()

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "log.wal")
        with open(path, "wb") as handle:
            handle.write(b"NOTAWAL\x00" + bytes(8))
        wal = WriteAheadLog(path, page_size=256)
        with pytest.raises(WALError):
            wal.recover()
        wal.close()

    def test_magic_constant_shape(self):
        assert len(WAL_MAGIC) == 8


# ----------------------------------------------------------------------
# WALDiskManager unit tests
# ----------------------------------------------------------------------


class TestWALDiskManager:
    def test_passthrough_outside_transaction(self):
        inner = InMemoryDiskManager(256)
        disk = WALDiskManager(inner)
        page_id = disk.allocate_page()
        disk.write_page(page_id, b"\x11" * disk.payload_size)
        assert inner.read_page(page_id) == b"\x11" * disk.payload_size

    def test_buffered_until_commit(self):
        inner = InMemoryDiskManager(256)
        disk = WALDiskManager(inner)
        disk.begin()
        page_id = disk.allocate_page()
        disk.write_page(page_id, b"\x22" * disk.payload_size)
        # Nothing has reached the inner store yet.
        assert inner.num_pages == 0
        assert disk.read_page(page_id) == b"\x22" * disk.payload_size
        disk.commit()
        assert inner.num_pages == 1
        assert inner.read_page(page_id) == b"\x22" * disk.payload_size

    def test_rollback_discards_everything(self):
        inner = InMemoryDiskManager(256)
        disk = WALDiskManager(inner)
        keep = disk.allocate_page()
        disk.write_page(keep, b"\x33" * disk.payload_size)
        disk.begin()
        grown = disk.allocate_page()
        disk.write_page(grown, b"\x44" * disk.payload_size)
        disk.write_page(keep, b"\x55" * disk.payload_size)
        disk.rollback()
        assert disk.num_pages == 1
        assert disk.read_page(keep) == b"\x33" * disk.payload_size

    def test_rollback_restores_free_list(self):
        inner = InMemoryDiskManager(256)
        disk = WALDiskManager(inner)
        page_id = disk.allocate_page()
        disk.free_page(page_id)
        disk.begin()
        reused = disk.allocate_page()
        assert reused == page_id
        disk.rollback()
        assert disk.num_free_pages == 1
        assert disk.allocate_page() == page_id

    def test_nested_begin_rejected(self):
        disk = WALDiskManager(InMemoryDiskManager(256))
        disk.begin()
        with pytest.raises(WALError):
            disk.begin()

    def test_commit_without_begin_rejected(self):
        disk = WALDiskManager(InMemoryDiskManager(256))
        with pytest.raises(WALError):
            disk.commit()
        with pytest.raises(WALError):
            disk.rollback()

    def test_commit_replays_after_crash(self, tmp_path):
        db_path = str(tmp_path / "data.db")
        wal_path = db_path + ".wal"
        inner = FileDiskManager(db_path, 256, fsync=False)
        disk = WALDiskManager(inner, WriteAheadLog(wal_path, 256, fsync=False))
        disk.begin()
        page_id = disk.allocate_page()
        payload = b"\x66" * disk.payload_size
        disk.write_page(page_id, payload)
        # Log the transaction but crash before the checkpoint by writing
        # the WAL directly and killing the stack.
        assert disk.wal is not None
        disk.wal.log_transaction({page_id: payload})
        disk.kill()
        assert os.path.getsize(db_path) == 0  # checkpoint never ran

        recovered = WALDiskManager(
            FileDiskManager(db_path, 256, fsync=False),
            WriteAheadLog(wal_path, 256, fsync=False),
        )
        assert recovered.num_pages == 1
        assert recovered.read_page(page_id) == payload
        assert recovered.wal.size_bytes == 0  # log reset after replay
        recovered.close()

    def test_checkpoint_failure_wedges(self, tmp_path):
        db_path = str(tmp_path / "data.db")
        fault = FaultInjectingDiskManager(
            FileDiskManager(db_path, 256, fsync=False, buffering=0)
        )
        wal = WriteAheadLog(db_path + ".wal", 256, fsync=False)
        disk = WALDiskManager(fault, wal)
        disk.begin()
        page_id = disk.allocate_page()
        payload = b"\x77" * disk.payload_size
        disk.write_page(page_id, payload)
        # All inner-disk writes fail; the WAL (not routed through the
        # fault layer here) accepts the commit record first, so the
        # failure lands *after* the commit point.
        fault.fail_after(0, ops=("write",))
        with pytest.raises(Exception):
            disk.commit()
        assert disk.wedged
        with pytest.raises(WALError):
            disk.begin()
        with pytest.raises(WALError):
            disk.read_page(page_id)
        disk.kill()

        # Reopening finishes the redo from the WAL.
        recovered = WALDiskManager(
            FileDiskManager(db_path, 256, fsync=False),
            WriteAheadLog(db_path + ".wal", 256, fsync=False),
        )
        assert recovered.read_page(page_id) == payload
        recovered.close()


# ----------------------------------------------------------------------
# Database-level atomicity (no crash, just exceptions)
# ----------------------------------------------------------------------


class TestDatabaseAtomicity:
    def test_failed_create_rolls_back(self, tmp_path):
        from repro.database import SetJoinDatabase

        path = str(tmp_path / "atomic.db")
        with SetJoinDatabase.open(path, page_size=512) as db:
            db.create_relation("base", rows(20))
            pages_before = db.disk.num_pages

            def poisoned():
                yield from rows(5)
                raise RuntimeError("ingest died")

            with pytest.raises(RuntimeError):
                db.create_relation("doomed", poisoned())
            assert db.relation_names() == ["base"]
            assert db.disk.num_pages == pages_before
            # The database remains fully usable.
            db.create_relation("after", rows(10))
            assert sorted(db.relation_names()) == ["after", "base"]

        with SetJoinDatabase.open(path, page_size=512) as db:
            assert sorted(db.relation_names()) == ["after", "base"]
            db.verify_integrity()

    def test_in_memory_database_is_exception_atomic(self):
        from repro.database import SetJoinDatabase

        with SetJoinDatabase.open() as db:
            db.create_relation("base", rows(20))

            def poisoned():
                yield from rows(5)
                raise RuntimeError("ingest died")

            with pytest.raises(RuntimeError):
                db.create_relation("doomed", poisoned())
            assert db.relation_names() == ["base"]
            assert len(db.read_relation("base")) == 20

    def test_duplicate_name_still_rejected(self, tmp_path):
        from repro.database import SetJoinDatabase

        with SetJoinDatabase.open(str(tmp_path / "dup.db")) as db:
            db.create_relation("r", rows(5))
            with pytest.raises(ConfigurationError):
                db.create_relation("r", rows(5))


# ----------------------------------------------------------------------
# Full crash sweeps (the acceptance criterion)
# ----------------------------------------------------------------------


class TestCrashSweeps:
    def test_create_relation_crash_sweep(self, tmp_path):
        sim = CrashSimulator(tmp_path)

        def prepare(db):
            db.create_relation("base", rows(15))

        def operation(db):
            db.create_relation("fresh", rows(15, start=100))

        def check(db, crashed):
            names = sorted(db.relation_names())
            assert names in (["base"], ["base", "fresh"])
            if not crashed:
                assert names == ["base", "fresh"]
            if "fresh" in names:
                assert len(db.read_relation("fresh")) == 15
            assert len(db.read_relation("base")) == 15
            db.verify_integrity()

        assert sim.sweep(prepare, operation, check) > 0

    def test_drop_relation_crash_sweep(self, tmp_path):
        sim = CrashSimulator(tmp_path)

        def prepare(db):
            db.create_relation("keep", rows(10))
            db.create_relation("victim", rows(10, start=50))

        def operation(db):
            db.drop_relation("victim")

        def check(db, crashed):
            names = sorted(db.relation_names())
            assert names in (["keep"], ["keep", "victim"])
            if not crashed:
                assert names == ["keep"]
            assert len(db.read_relation("keep")) == 10
            if "victim" in names:
                assert len(db.read_relation("victim")) == 10
            db.verify_integrity()

        assert sim.sweep(prepare, operation, check) > 0

    def test_join_crash_never_corrupts_catalog(self, tmp_path):
        # Temporary partition data is deliberately unlogged; a crash mid
        # join may leak pages but must never damage the stored relations.
        sim = CrashSimulator(tmp_path, buffer_pages=8)

        def prepare(db):
            db.create_relation("r", rows(12, width=3))
            db.create_relation("s", rows(12, width=6))

        def operation(db):
            db.join("r", "s", algorithm="PSJ", num_partitions=4)

        expected = {
            (r_tid, s_tid)
            for r_tid, r_set in rows(12, width=3)
            for s_tid, s_set in rows(12, width=6)
            if r_set <= s_set
        }

        def check(db, crashed):
            assert sorted(db.relation_names()) == ["r", "s"]
            db.verify_integrity()
            pairs, __ = db.join("r", "s", algorithm="PSJ", num_partitions=4)
            assert pairs == expected

        assert sim.sweep(prepare, operation, check, max_points=40) > 0


class TestCorruptionDetection:
    def test_any_flipped_bit_in_any_live_page_is_detected(self, tmp_path):
        """The literal acceptance criterion: corrupt each live page in
        turn (one bit each) and require CorruptPageError on read."""
        from repro.database import SetJoinDatabase

        path = str(tmp_path / "victim.db")
        with SetJoinDatabase.open(path, page_size=512) as db:
            db.create_relation("r", rows(30))
            num_pages = db.disk.num_pages
        assert num_pages > 2

        for page_id in range(num_pages):
            disk = FileDiskManager(path, 512, fsync=False)
            if page_id in disk._free_pages:
                disk.close()
                continue
            raw = disk._read_physical(page_id)
            bit = (page_id * 997) % (len(raw) * 8)  # vary the bit position
            torn = bytearray(raw)
            torn[bit // 8] ^= 1 << (bit % 8)
            disk._write_physical(page_id, bytes(torn))
            disk.close()

            # Catalog pages fail at open itself; others at verify time.
            with pytest.raises(CorruptPageError):
                db = SetJoinDatabase.open(path, page_size=512)
                try:
                    db.verify_integrity()
                finally:
                    db.close()

            # Undo the flip so the next iteration starts from a clean file.
            disk = FileDiskManager(path, 512, fsync=False)
            disk._write_physical(page_id, raw)
            disk.close()

    def test_verify_integrity_passes_on_clean_database(self, tmp_path):
        from repro.database import SetJoinDatabase

        path = str(tmp_path / "clean.db")
        with SetJoinDatabase.open(path, page_size=512) as db:
            db.create_relation("r", rows(30))
        with SetJoinDatabase.open(path, page_size=512) as db:
            report = db.verify_integrity()
            assert report["relations"] == 1
            assert report["tuples"] == 30
            assert report["pages_read"] > 0
