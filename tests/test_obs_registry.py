"""Tests for the metrics registry (repro.obs.registry)."""

import pytest

from repro.core.metrics import JoinMetrics, PhaseMetrics
from repro.errors import ConfigurationError
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    record_join,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        counter = Counter("c_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(11.5)


class TestHistogram:
    def test_observe_and_cumulative(self):
        histogram = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 0.7, 3.0, 20.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(24.2)
        assert histogram.cumulative() == [(1.0, 2), (5.0, 3), (10.0, 3)]

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 5.0))
        histogram.observe(1.0)  # le="1.0" is inclusive
        assert histogram.cumulative() == [(1.0, 1), (5.0, 1)]

    def test_rejects_unsorted_or_empty_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())


class TestHistogramPercentile:
    def test_empty_histogram_has_no_percentile(self):
        assert Histogram("h", buckets=(1.0, 5.0)).percentile(0.5) is None

    def test_interpolates_within_the_owning_bucket(self):
        histogram = Histogram("h", buckets=(10.0, 20.0, 30.0))
        for value in (12.0, 14.0, 16.0, 18.0):  # all in (10, 20]
            histogram.observe(value)
        # Rank 2 of 4 → halfway through the (10, 20] bucket.
        assert histogram.percentile(0.5) == pytest.approx(15.0)
        assert histogram.percentile(1.0) == pytest.approx(20.0)

    def test_spread_across_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            histogram.observe(value)
        # p25 lands in the first bucket, p75 in the third.
        assert histogram.percentile(0.25) <= 1.0
        assert 2.0 < histogram.percentile(0.75) <= 4.0

    def test_overflow_clamps_to_last_finite_bound(self):
        histogram = Histogram("h", buckets=(1.0, 5.0))
        histogram.observe(100.0)  # +Inf bucket
        assert histogram.percentile(0.99) == 5.0

    def test_q_outside_unit_interval_rejected(self):
        histogram = Histogram("h", buckets=(1.0,))
        with pytest.raises(ConfigurationError):
            histogram.percentile(-0.1)
        with pytest.raises(ConfigurationError):
            histogram.percentile(1.5)

    def test_monotone_in_q(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 2.5, 3.0, 5.0, 7.0):
            histogram.observe(value)
        quantiles = [histogram.percentile(q)
                     for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help text")
        second = registry.counter("c_total")
        assert first is second
        assert second.help == "help text"

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ConfigurationError):
            registry.gauge("m")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad name")
        with pytest.raises(ConfigurationError):
            registry.counter("0leading_digit")

    def test_as_dict_expands_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.as_dict()
        assert snapshot["c_total"] == 3
        assert snapshot["g"] == 1.5
        assert snapshot["h_sum"] == 0.5
        assert snapshot["h_count"] == 1

    def test_reset_zeroes_but_preserves_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h", buckets=(1.0,))
        counter.inc(7)
        gauge.set(4.0)
        histogram.observe(0.5)
        registry.reset()
        assert registry.counter("c_total") is counter
        assert counter.value == 0
        assert gauge.value == 0.0
        assert histogram.count == 0 and histogram.sum == 0.0
        assert histogram.bucket_counts == [0]
        # Cached handles keep working after the reset.
        counter.inc()
        assert registry.counter("c_total").value == 1

    def test_process_wide_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestRecordJoin:
    def make_metrics(self):
        metrics = JoinMetrics(
            algorithm="DCJ", num_partitions=8, r_size=100, s_size=200,
            signature_bits=64,
        )
        metrics.signature_comparisons = 5000
        metrics.replicated_signatures = 300
        metrics.candidates = 40
        metrics.false_positives = 10
        metrics.result_size = 30
        metrics.buffer_hits = 90
        metrics.buffer_misses = 10
        metrics.partitioning = PhaseMetrics(0.5, 20, 15)
        metrics.joining = PhaseMetrics(1.0, 5, 0)
        metrics.verification = PhaseMetrics(0.25, 8, 0)
        return metrics

    def test_publishes_paper_accounting(self):
        registry = MetricsRegistry()
        record_join(self.make_metrics(), registry)
        snapshot = registry.as_dict()
        assert snapshot["setjoin_joins_total"] == 1
        assert snapshot["setjoin_signature_comparisons_total"] == 5000
        assert snapshot["setjoin_replicated_signatures_total"] == 300
        assert snapshot["setjoin_candidates_total"] == 40
        assert snapshot["setjoin_false_positives_total"] == 10
        assert snapshot["setjoin_result_pairs_total"] == 30

    def test_publishes_io_and_buffer_behaviour(self):
        registry = MetricsRegistry()
        record_join(self.make_metrics(), registry)
        snapshot = registry.as_dict()
        assert snapshot["setjoin_page_reads_total"] == 33
        assert snapshot["setjoin_page_writes_total"] == 15
        assert snapshot["setjoin_phase_partitioning_page_reads_total"] == 20
        assert snapshot["setjoin_phase_joining_seconds_total"] == 1.0
        assert snapshot["setjoin_buffer_hits_total"] == 90
        assert snapshot["setjoin_buffer_misses_total"] == 10
        assert snapshot["setjoin_last_buffer_hit_rate"] == pytest.approx(0.9)

    def test_accumulates_across_joins(self):
        registry = MetricsRegistry()
        record_join(self.make_metrics(), registry)
        record_join(self.make_metrics(), registry)
        snapshot = registry.as_dict()
        assert snapshot["setjoin_joins_total"] == 2
        assert snapshot["setjoin_signature_comparisons_total"] == 10000
        assert snapshot["setjoin_join_seconds_count"] == 2

    def test_does_not_mutate_the_join_metrics(self):
        registry = MetricsRegistry()
        metrics = self.make_metrics()
        record_join(metrics, registry)
        assert metrics.signature_comparisons == 5000
        assert metrics.joining.seconds == 1.0


class TestSnapshotDeltaMerge:
    """The multiprocess aggregation protocol: snapshot → delta → merge."""

    def build(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c").inc(10)
        registry.gauge("g", "g").set(2.5)
        registry.histogram("h", "h", buckets=(1.0, 5.0)).observe(0.5)
        return registry

    def test_snapshot_is_plain_data(self):
        snapshot = self.build().snapshot()
        assert snapshot["c_total"] == {
            "kind": "counter", "help": "c", "value": 10,
        }
        assert snapshot["g"]["kind"] == "gauge"
        assert snapshot["h"]["bucket_counts"] == [1, 0]
        assert snapshot["h"]["count"] == 1

    def test_delta_contains_only_changes(self):
        registry = self.build()
        baseline = registry.snapshot()
        registry.counter("c_total", "c").inc(5)
        registry.histogram("h", "h", buckets=(1.0, 5.0)).observe(3.0)
        delta = registry.delta(baseline)
        assert delta["c_total"]["value"] == 5
        assert delta["h"]["bucket_counts"] == [0, 1]
        assert delta["h"]["count"] == 1
        assert "g" not in delta  # unchanged gauge is omitted

    def test_delta_against_empty_baseline_is_everything(self):
        registry = self.build()
        delta = registry.delta({})
        assert delta["c_total"]["value"] == 10
        assert delta["g"]["value"] == 2.5

    def test_merge_delta_adds_counters_and_histograms(self):
        parent = self.build()
        worker = self.build()
        baseline = worker.snapshot()
        worker.counter("c_total", "c").inc(7)
        worker.counter("new_total", "n").inc(2)
        worker.histogram("h", "h", buckets=(1.0, 5.0)).observe(9.0)
        worker.gauge("g", "g").set(4.0)
        parent.merge_delta(worker.delta(baseline))
        assert parent.counter("c_total", "c").value == 17
        assert parent.counter("new_total", "n").value == 2
        assert parent.gauge("g", "g").value == 4.0
        histogram = parent.histogram("h", "h", buckets=(1.0, 5.0))
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(9.5)

    def test_merge_rejects_bucket_mismatch(self):
        parent = self.build()
        other = MetricsRegistry()
        other.histogram("h", "h", buckets=(2.0, 4.0)).observe(1.0)
        with pytest.raises(ConfigurationError):
            parent.merge_delta(other.delta({}))

    def test_merge_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().merge_delta(
                {"x": {"kind": "summary", "help": "", "value": 1}}
            )

    def test_roundtrip_is_lossless(self):
        """parent + (worker − baseline) == the serial-equivalent totals."""
        parent = self.build()
        worker = self.build()  # fork: worker starts as a copy of parent
        baseline = worker.snapshot()
        worker.counter("c_total", "c").inc(3)
        parent.merge_delta(worker.delta(baseline))
        # The worker's pre-fork counts must NOT be double-counted.
        assert parent.counter("c_total", "c").value == 13
