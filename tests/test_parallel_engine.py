"""Tests for the partition-parallel execution engine.

The contract under test: for any worker count and any backend, the join
produces the identical result set, identically ordered at the merge
boundary, with identical paper-accounting counts (``x`` = signature
comparisons, ``y`` = replicated signatures) to the serial operator.
"""

import pytest

from repro.core.operator import SetContainmentJoin, Testbed, run_disk_join
from repro.core.psj import PSJPartitioner
from repro.core.sets import containment_pairs_nested_loop
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.parallel.executor import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.parallel.merge import merge_shard_pairs
from repro.parallel.worker import ShardResult


@pytest.fixture(scope="module")
def workload():
    from repro.data.workloads import uniform_workload

    return uniform_workload(
        120, 140, 8, 16, domain_size=5_000, seed=13, planted_pairs=6
    ).materialize()


@pytest.fixture(scope="module")
def serial_run(workload):
    lhs, rhs = workload
    return run_disk_join(lhs, rhs, PSJPartitioner(8, seed=1))


class TestResultInvariance:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_memory_backed(self, workload, serial_run, workers, backend):
        lhs, rhs = workload
        expected, baseline = serial_run
        pairs, metrics = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            workers=workers, backend=backend,
        )
        assert pairs == expected
        assert metrics.signature_comparisons == baseline.signature_comparisons
        assert metrics.replicated_signatures == baseline.replicated_signatures
        assert metrics.candidates == baseline.candidates
        assert metrics.false_positives == baseline.false_positives
        assert metrics.set_comparisons == baseline.set_comparisons

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_file_backed_reopen_path(self, tmp_path, workload, serial_run,
                                     backend):
        """Workers open their own read-only FileDiskManager views."""
        lhs, rhs = workload
        expected, baseline = serial_run
        pairs, metrics = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            path=str(tmp_path / f"{backend}.db"),
            workers=4, backend=backend,
        )
        assert pairs == expected
        assert metrics.signature_comparisons == baseline.signature_comparisons
        assert metrics.replicated_signatures == baseline.replicated_signatures

    def test_correct_against_nested_loop(self, workload):
        lhs, rhs = workload
        pairs, __ = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1), workers=3, backend="process"
        )
        assert pairs == containment_pairs_nested_loop(lhs, rhs)

    def test_resident_partitions_shipped_inline(self, workload, serial_run):
        lhs, rhs = workload
        expected, baseline = serial_run
        pairs, metrics = run_disk_join(
            lhs, rhs, PSJPartitioner(8, seed=1),
            workers=2, backend="thread", resident_partitions=4,
        )
        assert pairs == expected
        assert metrics.signature_comparisons == baseline.signature_comparisons

    def test_dcj_cross_shard_duplicates_collapse(self, workload):
        """DCJ replicates tuples into several partitions; pairs found by
        different shards must dedup at the merge boundary."""
        from repro.core.dcj import DCJPartitioner

        lhs, rhs = workload
        partitioner = DCJPartitioner.for_cardinalities(16, 8, 16)
        expected, baseline = run_disk_join(lhs, rhs, partitioner)
        pairs, metrics = run_disk_join(
            lhs, rhs, partitioner, workers=4, backend="process"
        )
        assert pairs == expected
        assert metrics.candidates == baseline.candidates
        assert metrics.signature_comparisons == baseline.signature_comparisons


class TestDeterministicOrdering:
    @pytest.mark.parametrize("engine", ["python", "numpy"])
    def test_identical_order_across_worker_counts(self, workload, engine):
        """The determinism gap test: result pairs identically ordered for
        workers 1/2/4 under both comparison engines (sorting happens at
        the merge boundary, so no ordering depends on shard timing)."""
        lhs, rhs = workload
        orderings = []
        for workers in (1, 2, 4):
            pairs, __ = run_disk_join(
                lhs, rhs, PSJPartitioner(8, seed=1),
                engine=engine, workers=workers, backend="thread",
            )
            orderings.append(sorted(pairs))
        assert orderings[0] == orderings[1] == orderings[2]

    def test_merge_sorts_by_tid(self):
        shard_a = ShardResult(pairs=[(3, 1), (1, 2)])
        shard_b = ShardResult(pairs=[(2, 9), (1, 2), (0, 5)])
        merged = merge_shard_pairs([shard_b, shard_a])
        assert merged == [(0, 5), (1, 2), (2, 9), (3, 1)]
        # Shard order must not matter.
        assert merged == merge_shard_pairs([shard_a, shard_b])


class TestBackendResolution:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("gpu", workers=2)

    def test_serial_requested_stays_serial(self):
        backend, reason = resolve_backend("serial", workers=4)
        assert isinstance(backend, SerialBackend)
        assert reason is None

    def test_single_worker_never_builds_a_pool(self):
        backend, __ = resolve_backend("process", workers=1)
        assert isinstance(backend, SerialBackend)

    def test_thread_and_process_resolve(self):
        backend, __ = resolve_backend("thread", workers=2)
        assert isinstance(backend, ThreadBackend)
        backend, reason = resolve_backend("process", workers=2)
        if reason is None:
            assert isinstance(backend, ProcessBackend)
        else:
            assert isinstance(backend, SerialBackend)

    def test_unavailable_process_backend_falls_back(self, monkeypatch,
                                                    workload, serial_run):
        monkeypatch.setattr(ProcessBackend, "available", lambda self: False)
        lhs, rhs = workload
        expected, __ = serial_run
        with Testbed() as testbed:
            testbed.load(lhs, rhs)
            join = SetContainmentJoin(
                testbed, PSJPartitioner(8, seed=1),
                workers=4, parallel_backend="process",
            )
            pairs, __ = join.run()
        assert pairs == expected
        assert "unavailable" in join._parallel_fallback_reason


class TestConfigurationGuards:
    def test_zero_workers_rejected(self, paper_r, paper_s):
        with Testbed() as testbed:
            testbed.load(paper_r, paper_s)
            with pytest.raises(ConfigurationError):
                SetContainmentJoin(testbed, PSJPartitioner(4), workers=0)

    def test_unknown_backend_rejected(self, paper_r, paper_s):
        with Testbed() as testbed:
            testbed.load(paper_r, paper_s)
            with pytest.raises(ConfigurationError):
                SetContainmentJoin(
                    testbed, PSJPartitioner(4), parallel_backend="gpu"
                )

    @pytest.mark.parametrize(
        "options",
        [{"spill_candidates": True}, {"verify_per_partition": True}],
    )
    def test_parallel_excludes_serial_only_modes(self, paper_r, paper_s,
                                                 options):
        with Testbed() as testbed:
            testbed.load(paper_r, paper_s)
            with pytest.raises(ConfigurationError):
                SetContainmentJoin(
                    testbed, PSJPartitioner(4), workers=2, **options
                )


class TestTimeout:
    def test_slow_shard_raises_typed_error(self, monkeypatch, workload):
        import time as time_module

        import repro.parallel.executor as executor_module

        def stalling_shard(spec):
            time_module.sleep(5.0)

        monkeypatch.setattr(executor_module, "run_shard", stalling_shard)
        lhs, rhs = workload
        with Testbed() as testbed:
            testbed.load(lhs, rhs)
            join = SetContainmentJoin(
                testbed, PSJPartitioner(8, seed=1),
                workers=2, parallel_backend="thread", shard_timeout=0.05,
            )
            with pytest.raises(ParallelExecutionError, match="timeout"):
                join.run()

    def test_partitions_dropped_after_timeout(self, monkeypatch, workload):
        import repro.parallel.executor as executor_module

        def stalling_shard(spec):
            import time as time_module

            time_module.sleep(5.0)

        monkeypatch.setattr(executor_module, "run_shard", stalling_shard)
        lhs, rhs = workload
        with Testbed() as testbed:
            testbed.load(lhs, rhs)
            live_before = testbed.disk.num_live_pages
            join = SetContainmentJoin(
                testbed, PSJPartitioner(8, seed=1),
                workers=2, parallel_backend="thread", shard_timeout=0.05,
            )
            with pytest.raises(ParallelExecutionError):
                join.run()
            assert testbed.disk.num_live_pages == live_before


class TestEmptyInputs:
    def test_no_shards_short_circuits(self, paper_r):
        from repro.core.sets import Relation

        empty = Relation.from_sets([], name="S")
        pairs, metrics = run_disk_join(
            paper_r, empty, PSJPartitioner(4, seed=1),
            workers=4, backend="process",
        )
        assert pairs == set()
        assert metrics.signature_comparisons == 0


class TestTimeoutCancellation:
    """Batch-deadline semantics: queued futures cancelled, runners
    abandoned, and the error says which is which (satellite fix for the
    thread backend leaving its pool fully un-cancelled)."""

    def test_error_carries_timeout_kind_and_accounting(self, monkeypatch,
                                                       workload):
        import time as time_module

        import repro.parallel.executor as executor_module

        def stalling_shard(spec):
            time_module.sleep(5.0)

        monkeypatch.setattr(executor_module, "run_shard", stalling_shard)
        lhs, rhs = workload
        with Testbed() as testbed:
            testbed.load(lhs, rhs)
            join = SetContainmentJoin(
                testbed, PSJPartitioner(8, seed=1),
                workers=2, parallel_backend="thread", shard_timeout=0.05,
            )
            with pytest.raises(ParallelExecutionError) as excinfo:
                join.run()
        assert excinfo.value.kind == "timeout"
        message = str(excinfo.value)
        assert "cancelled" in message and "abandoned" in message

    def test_queued_futures_are_cancelled_not_abandoned(self):
        import threading

        from repro.parallel.executor import ThreadBackend

        release = threading.Event()
        started = []

        def slow(spec):
            started.append(spec)
            release.wait(5.0)
            return spec

        backend = ThreadBackend(1)  # one worker: later shards stay queued
        import repro.parallel.executor as executor_module

        original = executor_module.run_shard
        executor_module.run_shard = slow
        try:
            with pytest.raises(ParallelExecutionError) as excinfo:
                backend.run(list(range(4)), timeout=0.05)
        finally:
            executor_module.run_shard = original
            release.set()
        # One shard was running (abandoned); the three queued behind the
        # single worker were cancelled before ever starting.
        assert excinfo.value.kind == "timeout"
        assert "3 queued shard(s) cancelled" in str(excinfo.value)
        assert "1 running shard(s) abandoned" in str(excinfo.value)
        assert len(started) == 1

    def test_timeout_is_a_batch_deadline_not_per_shard(self):
        import time as time_module

        from repro.parallel.executor import ThreadBackend

        def takes_a_while(spec):
            time_module.sleep(0.08)
            return spec

        backend = ThreadBackend(1)
        import repro.parallel.executor as executor_module

        original = executor_module.run_shard
        executor_module.run_shard = takes_a_while
        try:
            # Three sequential 0.08s shards fit a 2s batch budget but
            # would each individually violate a 0.1s per-shard wait if
            # the deadline (wrongly) restarted per future.
            results = backend.run(list(range(3)), timeout=2.0)
            assert results == [0, 1, 2]
            with pytest.raises(ParallelExecutionError) as excinfo:
                backend.run(list(range(3)), timeout=0.1)
        finally:
            executor_module.run_shard = original
        assert excinfo.value.kind == "timeout"

    def test_worker_death_kind_on_broken_pool(self, monkeypatch):
        from repro.parallel.executor import ProcessBackend

        if not ProcessBackend(2).available():
            pytest.skip("process backend unavailable in this sandbox")
        import repro.parallel.executor as executor_module

        # Must be a module-level function: the pool pickles it by
        # reference when shipping work to the child.
        monkeypatch.setattr(executor_module, "run_shard", _exit_in_worker)
        backend = ProcessBackend(2)
        with pytest.raises(ParallelExecutionError) as excinfo:
            backend.run(list(range(2)), timeout=30.0)
        assert excinfo.value.kind == "worker_death"


def _exit_in_worker(spec):
    import os as os_module

    os_module._exit(86)  # noqa: SLF001 — simulates an OOM-killed worker
