"""Fault injection inside parallel join workers.

A worker that dies mid-shard must surface as a typed ``SetJoinError``
(never a bare ``BrokenProcessPool`` or backend-specific exception), and
the failed join must leave no orphaned spill-partition pages behind.
"""

import pytest

from repro.core.operator import SetContainmentJoin, Testbed
from repro.core.psj import PSJPartitioner
from repro.errors import ParallelExecutionError, SetJoinError


@pytest.fixture()
def loaded_testbed(tmp_path, small_workload):
    lhs, rhs = small_workload
    with Testbed(path=str(tmp_path / "faults.db")) as testbed:
        testbed.load(lhs, rhs)
        yield testbed


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_worker_io_failure_is_typed(loaded_testbed, backend):
    join = SetContainmentJoin(
        loaded_testbed, PSJPartitioner(8, seed=1),
        workers=2, parallel_backend=backend,
    )
    # Every worker's FaultInjectingDiskManager dies on its first page read.
    join._worker_fault_after = 0
    with pytest.raises(SetJoinError) as excinfo:
        join.run()
    assert isinstance(excinfo.value, ParallelExecutionError)
    # The message names the failed shard and the underlying error class,
    # so the caller can tell an injected fault from a timeout.
    assert "InjectedIOError" in str(excinfo.value)
    assert "shard" in str(excinfo.value)


def test_failed_join_leaves_no_orphaned_partitions(loaded_testbed):
    live_before = loaded_testbed.disk.num_live_pages
    join = SetContainmentJoin(
        loaded_testbed, PSJPartitioner(8, seed=1),
        workers=2, parallel_backend="process",
    )
    join._worker_fault_after = 0
    with pytest.raises(ParallelExecutionError):
        join.run()
    # Spill partitions written during the partitioning phase were
    # reclaimed on the failure path: only the relation pages remain.
    assert loaded_testbed.disk.num_live_pages == live_before


def test_testbed_usable_after_worker_failure(loaded_testbed):
    failing = SetContainmentJoin(
        loaded_testbed, PSJPartitioner(8, seed=1),
        workers=2, parallel_backend="process",
    )
    failing._worker_fault_after = 0
    with pytest.raises(ParallelExecutionError):
        failing.run()
    # A fresh serial join on the same testbed still works — the failure
    # is contained to the worker's private disk view.
    pairs, __ = SetContainmentJoin(
        loaded_testbed, PSJPartitioner(8, seed=1)
    ).run()
    expected, __ = SetContainmentJoin(
        loaded_testbed, PSJPartitioner(8, seed=1),
        workers=2, parallel_backend="process",
    ).run()
    assert pairs == expected
