"""Tests for the EXPLAIN/ANALYZE plan inspector (repro.obs.explain).

Every duration an ANALYZE report shows comes from the tracer's injected
clocks, so the rendered plan trees below are fully deterministic and
snapshot-comparable: two runs under the same fake clock must render
byte-identical output.
"""

import json

import pytest

from repro.core.api import containment_join
from repro.data.workloads import uniform_workload
from repro.errors import ConfigurationError
from repro.obs.explain import (
    AnalyzeResult,
    ExplainReport,
    PlanNode,
    analyze_join,
    build_plan_from_statistics,
    explain_join,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer


class FakeClock:
    """Monotonic clock advancing ``step`` seconds per call."""

    def __init__(self, start=0.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_tracer(step=0.25, epoch=1000.0):
    return Tracer(clock=FakeClock(step=step), wall=lambda: epoch)


@pytest.fixture()
def relations():
    return uniform_workload(
        r_size=60, s_size=90, theta_r=6, theta_s=12, domain_size=200, seed=7
    ).materialize()


class TestPlanNode:
    def test_errors_use_signed_convention(self):
        node = PlanNode("n", predicted={"seconds": 8.0}, observed={"seconds": 10.0})
        # Model undershot: the run took longer than predicted → positive.
        assert node.errors()["seconds"] == pytest.approx(0.2)

    def test_zero_observation_yields_none_unless_both_zero(self):
        node = PlanNode(
            "n",
            predicted={"a": 5.0, "b": 0.0},
            observed={"a": 0.0, "b": 0.0},
        )
        errors = node.errors()
        assert errors["a"] is None
        assert errors["b"] == 0.0

    def test_non_numeric_and_unpaired_keys_are_skipped(self):
        node = PlanNode(
            "n",
            predicted={"label": "DCJ", "only_pred": 1.0, "flag": True, "x": 2.0},
            observed={"label": "PSJ", "only_obs": 3.0, "flag": False, "x": 4.0},
        )
        assert set(node.errors()) == {"x"}

    def test_to_dict_is_json_able_and_recursive(self):
        root = PlanNode("root", kind="join", predicted={"seconds": 1.0})
        root.add(PlanNode("child", kind="phase", observed={"seconds": 2.0}))
        document = json.loads(json.dumps(root.to_dict()))
        assert document["name"] == "root"
        assert document["children"][0]["name"] == "child"
        assert "errors" in document

    def test_walk_yields_every_node(self):
        root = PlanNode("root")
        child = root.add(PlanNode("child"))
        child.add(PlanNode("grandchild"))
        assert [node.name for node in root.walk()] == [
            "root", "child", "grandchild",
        ]


class TestExplain:
    def test_dcj_plan_renders_operator_tree(self, relations):
        lhs, rhs = relations
        report = explain_join(lhs, rhs, algorithm="DCJ", num_partitions=8)
        text = report.render()
        assert report.mode == "explain"
        assert "set containment join" in text
        # The α/β operator tree with per-level hash functions (k=8 → 3
        # levels, root α on h1).
        assert "α(h1)" in text
        assert "β(h2)" in text
        assert "p_replicate_s" in text
        assert "p_replicate_r" in text
        assert "E_copies_r" in text
        # All three phases, predictions on the modelled two.
        for phase in ("phase.partition", "phase.join", "phase.verify"):
            assert phase in text
        assert "predicted" in text
        assert "observed" not in text  # EXPLAIN never executes

    def test_explain_is_deterministic(self, relations):
        lhs, rhs = relations
        first = explain_join(lhs, rhs, algorithm="DCJ", num_partitions=8)
        second = explain_join(lhs, rhs, algorithm="DCJ", num_partitions=8)
        assert first.render() == second.render()

    def test_psj_plan_has_no_operator_tree(self, relations):
        lhs, rhs = relations
        text = explain_join(
            lhs, rhs, algorithm="PSJ", num_partitions=8
        ).render()
        assert "PSJ" in text
        assert "α(" not in text and "β(" not in text
        assert "phase.partition" in text

    def test_auto_resolves_to_the_optimizer_choice(self, relations):
        lhs, rhs = relations
        report = explain_join(lhs, rhs, algorithm="auto")
        assert report.root.detail.split()[0] in {"DCJ", "PSJ", "LSJ"}
        assert "k=" in report.root.detail

    def test_workers_show_in_the_join_phase_detail(self, relations):
        lhs, rhs = relations
        text = explain_join(
            lhs, rhs, algorithm="DCJ", num_partitions=8,
            workers=2, backend="serial",
        ).render()
        assert "workers=2 (serial backend)" in text

    def test_deep_operator_tree_is_elided_with_a_note(self, relations):
        lhs, rhs = relations
        text = explain_join(
            lhs, rhs, algorithm="DCJ", num_partitions=32, operator_levels=2
        ).render()
        assert "operator nodes elided" in text
        # Only levels 0 and 1 rendered: h1 and h2, never h3.
        assert "α(h1)" in text
        assert "(h3)" not in text

    def test_empty_relation_is_a_configuration_error(self, relations):
        lhs, rhs = relations
        from repro.core.sets import Relation

        with pytest.raises(ConfigurationError):
            explain_join(Relation([]), rhs)

    def test_build_plan_rejects_non_positive_theta(self):
        with pytest.raises(ConfigurationError):
            build_plan_from_statistics("DCJ", 8, 100, 100, 0.0, 12.0)

    def test_time_terms_split_onto_the_phases(self, relations):
        lhs, rhs = relations
        report = explain_join(lhs, rhs, algorithm="DCJ", num_partitions=8)
        phases = {node.name: node for node in report.root.children}
        total = report.root.predicted["seconds"]
        split = (
            phases["phase.partition"].predicted["seconds"]
            + phases["phase.join"].predicted["seconds"]
        )
        assert split == pytest.approx(total)
        # Verification is outside the paper's model.
        assert "seconds" not in phases["phase.verify"].predicted


class TestAnalyze:
    def analyze(self, relations, **kwargs):
        lhs, rhs = relations
        kwargs.setdefault("tracer", make_tracer())
        kwargs.setdefault("registry", MetricsRegistry())
        kwargs.setdefault("wall", lambda: 1234.5)
        return analyze_join(lhs, rhs, **kwargs)

    def test_dcj_snapshot_is_deterministic_under_fake_clocks(self, relations):
        first = self.analyze(relations, algorithm="DCJ", num_partitions=8)
        second = self.analyze(relations, algorithm="DCJ", num_partitions=8)
        assert isinstance(first, AnalyzeResult)
        assert first.render() == second.render()
        text = first.render()
        assert "observed" in text and "err" in text
        assert "α(h1)" in text
        # The error column renders signed percentages.
        assert "%" in text

    def test_psj_snapshot_is_deterministic_under_fake_clocks(self, relations):
        first = self.analyze(relations, algorithm="PSJ", num_partitions=8)
        second = self.analyze(relations, algorithm="PSJ", num_partitions=8)
        assert first.render() == second.render()
        assert "PSJ" in first.render()

    def test_parallel_analyze_shows_shards_and_is_deterministic(
        self, relations
    ):
        kwargs = dict(
            algorithm="DCJ", num_partitions=8, workers=2, backend="serial"
        )
        first = self.analyze(relations, **kwargs)
        second = self.analyze(relations, **kwargs)
        assert first.render() == second.render()
        text = first.render()
        assert "shard 0" in text and "shard 1" in text

    def test_serial_analyze_shows_per_partition_rows(self, relations):
        text = self.analyze(
            relations, algorithm="DCJ", num_partitions=8
        ).render()
        assert "partition " in text

    def test_analyze_is_bit_identical_to_a_plain_join(self, relations):
        lhs, rhs = relations
        for algorithm, workers in (("DCJ", 1), ("PSJ", 1), ("DCJ", 2)):
            result = self.analyze(
                relations, algorithm=algorithm, num_partitions=8,
                workers=workers, backend="serial",
            )
            pairs, metrics = containment_join(
                lhs, rhs, algorithm=algorithm, num_partitions=8,
                workers=workers, backend="serial",
            )
            assert result.pairs == pairs
            assert (
                result.metrics.signature_comparisons
                == metrics.signature_comparisons
            )
            assert (
                result.metrics.replicated_signatures
                == metrics.replicated_signatures
            )
            assert result.metrics.candidates == metrics.candidates
            assert result.metrics.result_size == metrics.result_size

    def test_observed_counters_come_from_the_metrics(self, relations):
        result = self.analyze(relations, algorithm="DCJ", num_partitions=8)
        root = result.report.root
        assert root.observed["comparisons"] == (
            result.metrics.signature_comparisons
        )
        assert root.observed["replicated"] == (
            result.metrics.replicated_signatures
        )
        assert root.observed["results"] == result.metrics.result_size

    def test_drift_is_recorded_into_the_registry(self, relations):
        registry = MetricsRegistry()
        self.analyze(
            relations, algorithm="DCJ", num_partitions=8, registry=registry
        )
        assert registry.get("setjoin_drift_records_total").value == 1
        gauge = registry.get("setjoin_drift_last_comparisons_relative_error")
        assert gauge is not None
        histogram = registry.get("setjoin_drift_seconds_abs_error")
        assert histogram.count == 1

    def test_drift_jsonl_written_with_injected_wall_clock(
        self, relations, tmp_path
    ):
        path = str(tmp_path / "drift.jsonl")
        result = self.analyze(
            relations, algorithm="DCJ", num_partitions=8, drift_path=path
        )
        from repro.obs.drift import read_drift_jsonl

        records = read_drift_jsonl(path)
        assert len(records) == 1
        assert records[0].timestamp == 1234.5
        assert records[0].algorithm == "DCJ"
        assert records[0].to_dict() == result.drift.to_dict()

    def test_report_to_dict_is_json_able(self, relations):
        result = self.analyze(relations, algorithm="DCJ", num_partitions=8)
        document = json.loads(json.dumps(result.report.to_dict()))
        assert document["mode"] == "analyze"
        assert document["plan"]["kind"] == "join"


class TestRendering:
    def test_explain_report_marks_mode(self):
        report = ExplainReport(root=PlanNode("root"), mode="explain")
        assert not report.analyzed
        report.mode = "analyze"
        assert report.analyzed

    def test_none_values_render_as_middle_dot(self):
        root = PlanNode(
            "root", predicted={"seconds": None}, observed={"seconds": 1.0}
        )
        report = ExplainReport(root=root, mode="analyze")
        line = [l for l in report.render().splitlines() if "seconds" in l][0]
        assert "·" in line


class TestCorrectedColumn:
    def test_corrections_add_a_corrected_column(self, relations):
        lhs, rhs = relations
        report = explain_join(
            lhs, rhs, algorithm="DCJ", num_partitions=8,
            drift_history={"DCJ": 2.0},
        )
        text = report.render()
        assert "corrected" in text
        assert "drift_correction" in text
        assert report.root.corrected["drift_correction"] == 2.0
        assert report.root.corrected["seconds"] == pytest.approx(
            report.root.predicted["seconds"] * 2.0
        )

    def test_every_timed_node_gets_the_corrected_estimate(self, relations):
        lhs, rhs = relations
        report = explain_join(
            lhs, rhs, algorithm="DCJ", num_partitions=8,
            drift_history={"DCJ": 1.5},
        )
        for node in report.root.walk():
            if "seconds" in node.predicted:
                assert node.corrected["seconds"] == pytest.approx(
                    node.predicted["seconds"] * 1.5
                )

    def test_no_history_means_no_corrected_column(self, relations):
        lhs, rhs = relations
        report = explain_join(lhs, rhs, algorithm="DCJ", num_partitions=8)
        assert report.root.corrected == {}
        assert "corrected" not in report.render()

    def test_uncorrected_algorithm_is_left_alone(self, relations):
        lhs, rhs = relations
        report = explain_join(
            lhs, rhs, algorithm="DCJ", num_partitions=8,
            drift_history={"PSJ": 3.0},
        )
        assert report.root.corrected == {}

    def test_corrected_report_roundtrips_to_dict(self, relations):
        lhs, rhs = relations
        report = explain_join(
            lhs, rhs, algorithm="DCJ", num_partitions=8,
            drift_history={"DCJ": 2.0},
        )
        document = json.loads(json.dumps(report.to_dict()))
        assert document["plan"]["corrected"]["drift_correction"] == 2.0


class TestSHJPlan:
    def test_lattice_levels_render_as_operator_nodes(self, relations):
        lhs, rhs = relations
        report = explain_join(lhs, rhs, algorithm="SHJ", shj_bits=6)
        text = report.render()
        names = [node.name for node in report.root.walk()]
        assert "phase.build" in names
        assert "phase.probe" in names
        assert any(name.startswith("lattice.level") for name in names)
        assert "SHJ predates the Section 5 time model" in text

    def test_probe_counts_follow_the_binomial(self):
        from math import comb

        report = build_plan_from_statistics(
            "SHJ", 1, 100, 200, 4.0, 8.0, shj_bits=6, lattice_levels=3,
        )
        levels = [
            node for node in report.root.walk()
            if node.name.startswith("lattice.level")
        ]
        assert levels, "no lattice nodes in the SHJ plan"
        # The lattice width is the rounded expected popcount.
        m = max(1, round(report.root.predicted["E_signature_bits_s"]))
        for level, node in enumerate(levels):
            assert node.predicted["probes"] == 200 * comb(m, level)

    def test_root_probe_total_is_2_to_the_m(self):
        report = build_plan_from_statistics(
            "SHJ", 1, 100, 200, 4.0, 8.0, shj_bits=6,
        )
        m = max(1, round(report.root.predicted["E_signature_bits_s"]))
        assert report.root.predicted["probes"] == 200 * 2 ** m

    def test_rejects_bad_bit_widths(self):
        with pytest.raises(ConfigurationError):
            build_plan_from_statistics("SHJ", 1, 10, 10, 2.0, 4.0, shj_bits=0)
        with pytest.raises(ConfigurationError):
            build_plan_from_statistics("SHJ", 1, 10, 10, 2.0, 4.0, shj_bits=25)


class TestHybridPlan:
    def test_switchover_and_quadrants_render(self, relations):
        lhs, rhs = relations
        report = explain_join(lhs, rhs, algorithm="HYBRID")
        names = [node.name for node in report.root.walk()]
        assert "switchover" in names
        assert any(name.startswith("quadrant.") for name in names)
        switchover = next(
            node for node in report.root.walk() if node.name == "switchover"
        )
        assert switchover.predicted["tau"] >= 1

    def test_root_totals_sum_the_quadrants(self):
        report = build_plan_from_statistics(
            "HYBRID", 0, 200, 300, 4.0, 12.0,
        )
        quadrants = [
            node for node in report.root.children
            if node.name.startswith("quadrant.")
        ]
        assert quadrants
        total = sum(node.predicted["seconds"] for node in quadrants)
        assert report.root.predicted["seconds"] == pytest.approx(total)

    def test_corrections_flow_into_the_quadrants(self):
        report = build_plan_from_statistics(
            "HYBRID", 0, 200, 300, 4.0, 12.0,
            drift_corrections={"DCJ": 2.0, "PSJ": 2.0},
        )
        assert report.root.corrected.get("seconds") == pytest.approx(
            report.root.predicted["seconds"] * 2.0
        )
