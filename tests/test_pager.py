"""Tests for the page-level disk managers, checksums and I/O accounting."""

import os

import pytest

from repro.errors import CorruptPageError, PageError
from repro.storage.pager import (
    PAGE_HEADER_SIZE,
    FileDiskManager,
    InMemoryDiskManager,
    IOStats,
    decode_page,
    encode_page,
)


@pytest.fixture(params=["memory", "file"])
def disk(request, tmp_path):
    if request.param == "memory":
        manager = InMemoryDiskManager(page_size=256)
    else:
        manager = FileDiskManager(str(tmp_path / "pages.db"), page_size=256)
    yield manager
    manager.close()


class TestDiskManagers:
    def test_allocate_returns_sequential_ids(self, disk):
        assert disk.allocate_page() == 0
        assert disk.allocate_page() == 1
        assert disk.num_pages == 2

    def test_payload_smaller_than_page(self, disk):
        assert disk.page_size == 256
        assert disk.payload_size == 256 - PAGE_HEADER_SIZE

    def test_new_pages_are_zeroed(self, disk):
        page_id = disk.allocate_page()
        assert disk.read_page(page_id) == bytes(disk.payload_size)

    def test_write_read_roundtrip(self, disk):
        page_id = disk.allocate_page()
        data = bytes(range(disk.payload_size))
        disk.write_page(page_id, data)
        assert disk.read_page(page_id) == data

    def test_out_of_range_read_rejected(self, disk):
        with pytest.raises(PageError):
            disk.read_page(0)
        disk.allocate_page()
        with pytest.raises(PageError):
            disk.read_page(1)

    def test_short_write_rejected(self, disk):
        page_id = disk.allocate_page()
        with pytest.raises(PageError):
            disk.write_page(page_id, b"short")

    def test_full_physical_page_write_rejected(self, disk):
        # Callers deal in payloads; a page_size-sized buffer no longer fits.
        page_id = disk.allocate_page()
        with pytest.raises(PageError):
            disk.write_page(page_id, bytes(disk.page_size))

    def test_io_counters(self, disk):
        page_id = disk.allocate_page()
        payload = bytes(disk.payload_size)
        disk.write_page(page_id, payload)
        disk.write_page(page_id, payload)
        disk.read_page(page_id)
        assert disk.stats.pages_allocated == 1
        assert disk.stats.page_writes == 2
        assert disk.stats.page_reads == 1

    def test_stats_snapshot_and_delta(self, disk):
        page_id = disk.allocate_page()
        before = disk.stats.snapshot()
        disk.read_page(page_id)
        disk.read_page(page_id)
        delta = disk.stats.delta(before)
        assert delta.page_reads == 2
        assert delta.page_writes == 0

    def test_free_page_reuse(self, disk):
        first = disk.allocate_page()
        disk.write_page(first, b"\xcc" * disk.payload_size)
        disk.free_page(first)
        assert disk.num_free_pages == 1
        assert disk.num_live_pages == 0
        reused = disk.allocate_page()
        assert reused == first
        # Reused pages come back zeroed.
        assert disk.read_page(reused) == bytes(disk.payload_size)
        assert disk.num_free_pages == 0

    def test_double_free_rejected(self, disk):
        page_id = disk.allocate_page()
        disk.free_page(page_id)
        with pytest.raises(PageError):
            disk.free_page(page_id)

    def test_double_free_detection_scales(self, disk):
        # The free list keeps a parallel set, so freeing many pages stays
        # cheap and detection stays exact at any free-list length.
        pages = [disk.allocate_page() for __ in range(200)]
        for page_id in pages:
            disk.free_page(page_id)
        assert disk.num_free_pages == 200
        with pytest.raises(PageError):
            disk.free_page(pages[0])
        with pytest.raises(PageError):
            disk.free_page(pages[-1])

    def test_free_unknown_page_rejected(self, disk):
        with pytest.raises(PageError):
            disk.free_page(3)

    def test_tiny_page_size_rejected(self):
        with pytest.raises(PageError):
            InMemoryDiskManager(page_size=16)

    def test_page_lsn_roundtrip(self, disk):
        page_id = disk.allocate_page()
        assert disk.page_lsn(page_id) == 0
        disk.write_page(page_id, b"\x01" * disk.payload_size, lsn=7)
        assert disk.page_lsn(page_id) == 7
        assert disk.read_page(page_id) == b"\x01" * disk.payload_size


class TestChecksums:
    def test_encode_decode_roundtrip(self):
        payload = bytes(range(240))
        raw = encode_page(payload, 256, lsn=42)
        assert len(raw) == 256
        decoded, lsn = decode_page(raw)
        assert decoded == payload
        assert lsn == 42

    def test_all_zero_page_is_valid(self):
        # A freshly grown (never written) page decodes as a zero payload.
        payload, lsn = decode_page(bytes(256))
        assert payload == bytes(256 - PAGE_HEADER_SIZE)
        assert lsn == 0

    def test_single_bit_flip_detected(self):
        payload = b"\x5a" * 240
        raw = bytearray(encode_page(payload, 256))
        raw[100] ^= 0x04
        with pytest.raises(CorruptPageError):
            decode_page(bytes(raw))

    def test_header_corruption_detected(self):
        raw = bytearray(encode_page(b"\x5a" * 240, 256, lsn=9))
        raw[6] ^= 0x01  # inside the stored LSN
        with pytest.raises(CorruptPageError):
            decode_page(bytes(raw))

    @pytest.mark.parametrize("bit", [0, 1, 7, 500, 2047])
    def test_every_bit_position_detected(self, bit):
        raw = bytearray(encode_page(b"\xa5" * 240, 256))
        raw[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(CorruptPageError):
            decode_page(bytes(raw))

    def test_flipped_bit_on_disk_raises_on_read(self, disk):
        page_id = disk.allocate_page()
        disk.write_page(page_id, b"\x77" * disk.payload_size)
        raw = bytearray(disk._read_physical(page_id))
        raw[50] ^= 0x20
        disk._write_physical(page_id, bytes(raw))
        with pytest.raises(CorruptPageError):
            disk.read_page(page_id)


class TestFilePersistence:
    def test_reopen_preserves_pages(self, tmp_path):
        path = str(tmp_path / "persist.db")
        with FileDiskManager(path, page_size=128) as disk:
            payload = b"\xaa" * disk.payload_size
            page_id = disk.allocate_page()
            disk.write_page(page_id, payload)
            disk.flush()
        with FileDiskManager(path, page_size=128) as reopened:
            assert reopened.num_pages == 1
            assert reopened.read_page(0) == payload

    def test_misaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(PageError):
            FileDiskManager(str(path), page_size=128)

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "ctx.db")
        with FileDiskManager(path, page_size=128) as disk:
            disk.allocate_page()
        # closing twice is harmless
        disk.close()

    def test_fsync_flag(self, tmp_path):
        path = str(tmp_path / "sync.db")
        with FileDiskManager(path, page_size=128, fsync=True) as disk:
            assert disk.fsync
            page_id = disk.allocate_page()
            disk.write_page(page_id, b"\x11" * disk.payload_size)
            disk.flush()
        with FileDiskManager(path, page_size=128, fsync=False) as disk:
            assert not disk.fsync
            disk.flush()

    def test_kill_closes_without_flushing(self, tmp_path):
        path = str(tmp_path / "kill.db")
        disk = FileDiskManager(path, page_size=128, fsync=False)
        disk.allocate_page()
        disk.kill()
        # The handle is gone: further I/O fails rather than silently
        # buffering, and a second kill is harmless.
        with pytest.raises(ValueError):
            disk.allocate_page()
        disk.kill()

    def test_file_size_is_whole_physical_pages(self, tmp_path):
        path = str(tmp_path / "layout.db")
        with FileDiskManager(path, page_size=128, fsync=False) as disk:
            for __ in range(3):
                disk.allocate_page()
            disk.flush()
            assert os.path.getsize(path) == 3 * 128
