"""Tests for the page-level disk managers and their I/O accounting."""

import pytest

from repro.errors import PageError
from repro.storage.pager import FileDiskManager, InMemoryDiskManager, IOStats


@pytest.fixture(params=["memory", "file"])
def disk(request, tmp_path):
    if request.param == "memory":
        manager = InMemoryDiskManager(page_size=256)
    else:
        manager = FileDiskManager(str(tmp_path / "pages.db"), page_size=256)
    yield manager
    manager.close()


class TestDiskManagers:
    def test_allocate_returns_sequential_ids(self, disk):
        assert disk.allocate_page() == 0
        assert disk.allocate_page() == 1
        assert disk.num_pages == 2

    def test_new_pages_are_zeroed(self, disk):
        page_id = disk.allocate_page()
        assert disk.read_page(page_id) == bytes(256)

    def test_write_read_roundtrip(self, disk):
        page_id = disk.allocate_page()
        data = bytes(range(256))
        disk.write_page(page_id, data)
        assert disk.read_page(page_id) == data

    def test_out_of_range_read_rejected(self, disk):
        with pytest.raises(PageError):
            disk.read_page(0)
        disk.allocate_page()
        with pytest.raises(PageError):
            disk.read_page(1)

    def test_short_write_rejected(self, disk):
        page_id = disk.allocate_page()
        with pytest.raises(PageError):
            disk.write_page(page_id, b"short")

    def test_io_counters(self, disk):
        page_id = disk.allocate_page()
        disk.write_page(page_id, bytes(256))
        disk.write_page(page_id, bytes(256))
        disk.read_page(page_id)
        assert disk.stats.pages_allocated == 1
        assert disk.stats.page_writes == 2
        assert disk.stats.page_reads == 1

    def test_stats_snapshot_and_delta(self, disk):
        page_id = disk.allocate_page()
        before = disk.stats.snapshot()
        disk.read_page(page_id)
        disk.read_page(page_id)
        delta = disk.stats.delta(before)
        assert delta.page_reads == 2
        assert delta.page_writes == 0

    def test_free_page_reuse(self, disk):
        first = disk.allocate_page()
        disk.write_page(first, b"\xcc" * 256)
        disk.free_page(first)
        assert disk.num_free_pages == 1
        assert disk.num_live_pages == 0
        reused = disk.allocate_page()
        assert reused == first
        # Reused pages come back zeroed.
        assert disk.read_page(reused) == bytes(256)
        assert disk.num_free_pages == 0

    def test_double_free_rejected(self, disk):
        page_id = disk.allocate_page()
        disk.free_page(page_id)
        with pytest.raises(PageError):
            disk.free_page(page_id)

    def test_free_unknown_page_rejected(self, disk):
        with pytest.raises(PageError):
            disk.free_page(3)

    def test_tiny_page_size_rejected(self):
        with pytest.raises(PageError):
            InMemoryDiskManager(page_size=16)


class TestFilePersistence:
    def test_reopen_preserves_pages(self, tmp_path):
        path = str(tmp_path / "persist.db")
        with FileDiskManager(path, page_size=128) as disk:
            page_id = disk.allocate_page()
            disk.write_page(page_id, b"\xaa" * 128)
            disk.flush()
        with FileDiskManager(path, page_size=128) as reopened:
            assert reopened.num_pages == 1
            assert reopened.read_page(0) == b"\xaa" * 128

    def test_misaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(PageError):
            FileDiskManager(str(path), page_size=128)

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "ctx.db")
        with FileDiskManager(path, page_size=128) as disk:
            disk.allocate_page()
        # closing twice is harmless
        disk.close()
