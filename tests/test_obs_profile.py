"""Stack-sampling profiler: classification, overhead, lifecycle."""

import threading
import time

import pytest

from repro.obs.profile import SamplingProfiler, classify_stack
from repro.obs.registry import MetricsRegistry


class FakeCode:
    def __init__(self, filename, name):
        self.co_filename = filename
        self.co_name = name


class FakeFrame:
    def __init__(self, filename, name, back=None):
        self.f_code = FakeCode(filename, name)
        self.f_back = back


def stack(*frames):
    """Build a frame chain from ``(filename, function)`` outermost-first;
    returns the innermost frame."""
    current = None
    for filename, name in frames:
        current = FakeFrame(filename, name, back=current)
    return current


REPRO = "/x/src/repro"


class TestClassifyStack:
    def test_innermost_function_match_wins(self):
        frame = stack(
            (f"{REPRO}/core/operator.py", "_join_phase"),
            (f"{REPRO}/core/operator.py", "compare_block"),
        )
        assert classify_stack(frame) == (
            "join.compare_block", "operator.py:compare_block",
        )

    def test_outer_function_matches_when_inner_does_not(self):
        frame = stack(
            (f"{REPRO}/core/operator.py", "_partition_phase"),
            (f"{REPRO}/core/signatures.py", "_bit_positions"),
        )
        # signatures.py only offers a module fallback; the walk keeps
        # going and the _partition_phase *function* match further out
        # is authoritative.
        phase, label = classify_stack(frame)
        assert phase == "partition"
        assert label == "operator.py:_partition_phase"

    def test_module_fallback(self):
        frame = stack(
            (f"{REPRO}/storage/btree.py", "_descend"),
        )
        assert classify_stack(frame) == (
            "storage.btree", "btree.py:_descend",
        )

    def test_non_repro_stack_is_ignored(self):
        frame = stack(
            ("/usr/lib/python3/threading.py", "wait"),
            ("/usr/lib/python3/selectors.py", "select"),
        )
        assert classify_stack(frame) is None

    def test_unmatched_repro_stack_lands_in_unknown(self):
        frame = stack(
            (f"{REPRO}/brand_new_module.py", "novel_function"),
        )
        phase, label = classify_stack(frame)
        assert phase == "unknown"
        assert label == "brand_new_module.py:novel_function"


class TestSamplingProfiler:
    def make(self, **kwargs):
        kwargs.setdefault("registry", MetricsRegistry())
        return SamplingProfiler(**kwargs)

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValueError, match="hz"):
            self.make(hz=0)

    def test_sample_once_attributes_synthetic_frames(self):
        profiler = self.make(hz=10)
        frames = {
            1: stack((f"{REPRO}/core/operator.py", "compare_block")),
            2: stack((f"{REPRO}/storage/wal.py", "append")),
            3: stack(("/usr/lib/python3/threading.py", "wait")),
        }
        assert profiler.sample_once(frames) == 2
        report = profiler.report()
        assert report["samples"] == 1
        assert report["attributed"] == 2
        phases = {row["phase"]: row["share"] for row in report["phases"]}
        assert phases == {"join.compare_block": 0.5, "storage.wal": 0.5}

    def test_sampler_skips_its_own_thread(self):
        profiler = self.make(hz=10)
        frames = {
            threading.get_ident():
                stack((f"{REPRO}/core/operator.py", "compare_block")),
        }
        assert profiler.sample_once(frames) == 0

    def test_unknown_share_in_report(self):
        profiler = self.make(hz=10)
        profiler.sample_once({
            1: stack((f"{REPRO}/core/operator.py", "compare_block")),
            2: stack((f"{REPRO}/mystery.py", "f")),
        })
        report = profiler.report()
        assert report["unknown_share"] == 0.5

    def test_overhead_measured_with_injected_clock(self):
        # Each clock() call advances 1ms; sample_once reads the clock
        # twice, so sampler time is 1ms per tick against elapsed wall
        # driven by the same clock.
        ticks = {"n": 0}

        def clock():
            ticks["n"] += 1
            return ticks["n"] * 0.001

        profiler = self.make(hz=10, clock=clock, frames=dict)
        start = clock()
        for __ in range(10):
            profiler.sample_once({})
        # elapsed from profiler.start would use the daemon path; emulate
        # the accounting directly: sampler spent 10 x 1ms.
        elapsed = clock() - start
        assert profiler._sampler_seconds == pytest.approx(0.010)
        assert elapsed > 0

    def test_live_sampling_under_load_stays_cheap(self):
        profiler = self.make(hz=67)
        stop = threading.Event()

        def burn():
            while not stop.is_set():
                sum(i * i for i in range(200))

        worker = threading.Thread(target=burn, daemon=True)
        worker.start()
        with profiler:
            time.sleep(0.25)
        stop.set()
        worker.join(timeout=2.0)
        report = profiler.report()
        assert report["samples"] >= 3
        assert report["elapsed_seconds"] > 0
        # The <5% overhead budget from the acceptance criteria.
        assert report["overhead"] < 0.05

    def test_start_stop_idempotent_and_restartable(self):
        profiler = self.make(hz=500)
        profiler.start()
        profiler.start()  # no-op, not an error
        time.sleep(0.02)
        profiler.stop()
        profiler.stop()  # idempotent
        first = profiler.report()["samples"]
        assert first >= 1
        profiler.start()
        time.sleep(0.02)
        profiler.stop()
        assert profiler.report()["samples"] > first

    def test_reset_clears_counts(self):
        profiler = self.make(hz=10)
        profiler.sample_once({
            1: stack((f"{REPRO}/core/operator.py", "compare_block")),
        })
        profiler.reset()
        report = profiler.report()
        assert report["samples"] == 0
        assert report["phases"] == []

    def test_render_mentions_hot_phase(self):
        profiler = self.make(hz=10)
        for __ in range(9):
            profiler.sample_once({
                1: stack((f"{REPRO}/core/operator.py", "compare_block")),
            })
        profiler.sample_once({
            1: stack((f"{REPRO}/storage/wal.py", "append")),
        })
        text = profiler.render()
        assert "join.compare_block" in text
        assert "90.0%" in text
