"""Executor billing, invariance pinning, scoring and the tripwire.

One tiny full matrix executes once per test session (module fixture);
every test then asserts against its rows — the suite stays fast while
still exercising the real bench path end to end.
"""

import pytest

from repro.ablate import (
    build_matrix,
    check_importance,
    execute_matrix,
    parse_importance_tsv,
    render_importance_tsv,
    score_runs,
    suite_fingerprint,
)
from repro.errors import ConfigurationError

SCALE = 0.1
SEED = 11


@pytest.fixture(scope="module")
def matrix_result():
    specs = build_matrix(scale=SCALE, seed=SEED)
    return execute_matrix(specs, repeats=2)


@pytest.fixture(scope="module")
def report(matrix_result):
    return score_runs(matrix_result["runs"])


def _baseline(matrix_result):
    return next(
        row for row in matrix_result["runs"] if row["component"] is None)


class TestLedgerBilling:
    def test_reconciliation_is_exact(self, matrix_result):
        """Every resource counter the matrix moved is attributed to a run."""
        reconciliation = matrix_result["reconciliation"]
        assert reconciliation["exact"], reconciliation

    def test_every_run_billed_nonzero_work(self, matrix_result):
        for row in matrix_result["runs"]:
            resources = row["resources"]
            assert resources["signature_comparisons"] > 0, row["name"]
            assert resources["pages_read"] + resources["pages_written"] > 0

    def test_wal_bytes_billed_only_to_durable_runs(self, matrix_result):
        for row in matrix_result["runs"]:
            if row["knobs"]["durable"]:
                assert row["resources"]["wal_bytes"] > 0, row["name"]
            else:
                assert row["resources"]["wal_bytes"] == 0, row["name"]


class TestInvariancePinning:
    def test_all_runs_agree_on_pairs(self, matrix_result):
        """The containment join's answer is unique: every configuration
        must produce the identical pair set."""
        digests = {row["pairs_digest"] for row in matrix_result["runs"]}
        assert len(digests) == 1

    def test_answer_exact_runs_pin_x_and_y(self, matrix_result):
        baseline = _baseline(matrix_result)
        for row in matrix_result["runs"]:
            if row["invariance"] == "answer-exact":
                assert row["x"] == baseline["x"], row["name"]
                assert row["y"] == baseline["y"], row["name"]

    def test_answer_affecting_components_move_accounting(self, matrix_result):
        """The partitioning knobs must actually change x or y somewhere —
        otherwise their ablation measures nothing."""
        baseline = _baseline(matrix_result)
        moved = {
            row["component"]
            for row in matrix_result["runs"]
            if row["invariance"] == "answer-affecting"
            and (row["x"] != baseline["x"] or row["y"] != baseline["y"])
        }
        assert "firing-probability" in moved
        assert "alternation" in moved

    def test_repeats_are_deterministic(self, matrix_result):
        """run_bench raises on cross-repeat divergence; reaching here with
        per-workload digests present means every repeat matched."""
        for row in matrix_result["runs"]:
            for workload in row["workloads"].values():
                assert workload["pairs_digest"]


class TestFingerprintTagging:
    def test_runs_tagged_with_suite_workload_shape(self, matrix_result):
        expected = suite_fingerprint(SCALE, SEED).key
        for row in matrix_result["runs"]:
            assert row["fingerprint"] == expected

    def test_fingerprint_is_knob_free(self, matrix_result):
        """Same workload shape regardless of configuration — that is what
        makes reports sliceable by workload."""
        assert len({row["fingerprint"] for row in matrix_result["runs"]}) == 1

    def test_per_workload_fingerprints_differ(self, matrix_result):
        row = _baseline(matrix_result)
        keys = {w["fingerprint"] for w in row["workloads"].values()}
        assert len(keys) == len(row["workloads"])

    def test_workload_report_aggregates_runs(self, matrix_result):
        report = matrix_result["workload_report"]
        assert report["queries"] == len(matrix_result["runs"])
        assert report["reconciliation"]["exact"]


class TestScoring:
    def test_every_component_ranked(self, matrix_result, report):
        ranked = {c["component"] for c in report["components"]}
        expected = {
            row["component"] for row in matrix_result["runs"]
            if row["component"] is not None
        }
        assert ranked == expected
        assert len(ranked) >= 8

    def test_rank_order_follows_deterministic_importance(self, report):
        dets = [c["importance_det"] for c in report["components"]]
        assert dets == sorted(dets, reverse=True)
        assert [c["rank"] for c in report["components"]] == list(
            range(1, len(dets) + 1))

    def test_wal_and_plan_cache_have_deterministic_importance(self, report):
        by_name = {c["component"]: c for c in report["components"]}
        assert by_name["wal"]["importance_det"] > 0.5      # all WAL bytes
        assert by_name["plan-cache"]["importance_det"] > 0.5  # replans

    def test_all_answer_invariants_hold(self, report):
        assert all(c["answer_ok"] for c in report["components"])

    def test_rejects_matrix_without_baseline(self, matrix_result):
        rows = [row for row in matrix_result["runs"]
                if row["component"] is not None]
        with pytest.raises(ConfigurationError, match="baseline"):
            score_runs(rows)


class TestTsvRoundTrip:
    def test_parse_inverts_render(self, report):
        parsed = parse_importance_tsv(render_importance_tsv(report))
        assert parsed["meta"]["scale"] == SCALE
        assert parsed["baseline"]["x"] == report["baseline"]["x"]
        assert parsed["baseline"]["y"] == report["baseline"]["y"]
        assert set(parsed["components"]) == {
            c["component"] for c in report["components"]}
        for component in report["components"]:
            row = parsed["components"][component["component"]]
            assert row["rank"] == component["rank"]
            assert row["answer_ok"] == component["answer_ok"]
            assert row["importance_det"] == pytest.approx(
                component["importance_det"], abs=1e-4)


class TestTripwire:
    def test_self_check_passes(self, report):
        committed = parse_importance_tsv(render_importance_tsv(report))
        assert check_importance(report, committed) == []

    def test_importance_collapse_fails(self, report):
        committed = parse_importance_tsv(render_importance_tsv(report))
        # Pretend a currently-zero component used to matter: its fresh
        # importance has "collapsed" and the tripwire must fire.
        victim = min(report["components"], key=lambda c: c["importance_det"])
        committed["components"][victim["component"]]["importance_det"] = 0.6
        failures = check_importance(report, committed)
        assert any("importance collapsed" in failure for failure in failures)
        assert any(victim["component"] in failure for failure in failures)

    def test_insignificant_committed_importance_not_gated(self, report):
        committed = parse_importance_tsv(render_importance_tsv(report))
        victim = min(report["components"], key=lambda c: c["importance_det"])
        committed["components"][victim["component"]]["importance_det"] = 0.01
        assert check_importance(report, committed) == []

    def test_missing_component_fails_full_matrix_only(self, report):
        committed = parse_importance_tsv(render_importance_tsv(report))
        committed["components"]["retired-component"] = dict(
            next(iter(committed["components"].values())),
            component="retired-component", importance_det=0.9,
        )
        failures = check_importance(report, committed, full_matrix=True)
        assert any("retired-component" in failure for failure in failures)
        assert check_importance(report, committed, full_matrix=False) == []

    def test_answer_exactness_violation_fails(self, report):
        committed = parse_importance_tsv(render_importance_tsv(report))
        tampered = dict(report)
        tampered["components"] = [dict(c) for c in report["components"]]
        tampered["components"][0]["answer_ok"] = False
        tampered["components"][0]["violations"] = ["x changed: 1 != 2"]
        failures = check_importance(tampered, committed)
        assert any("answer invariant violated" in failure
                   for failure in failures)

    def test_baseline_drift_fails(self, report):
        committed = parse_importance_tsv(render_importance_tsv(report))
        committed["baseline"]["x"] += 1
        failures = check_importance(report, committed)
        assert any("baseline x drifted" in failure for failure in failures)

    def test_incompatible_configuration_fails(self, report):
        committed = parse_importance_tsv(render_importance_tsv(report))
        committed["meta"]["scale"] = 99.0
        failures = check_importance(report, committed)
        assert any("does not match" in failure for failure in failures)
