"""Tests for the Divide-and-Conquer Set Join partitioner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dcj import DCJPartitioner
from repro.core.hashing import (
    BitstringHashFamily,
    paper_example_family,
    paper_table4_family,
)
from repro.core.partitioning import PartitionAssignment
from repro.core.sets import Relation, containment_pairs_nested_loop
from repro.errors import ConfigurationError


class TestPaperExample:
    def test_figure2_counts(self, paper_r, paper_s):
        """Figure 2: 8 comparisons and 14 replicated signatures (k=8)."""
        partitioner = DCJPartitioner(paper_table4_family())
        assignment = PartitionAssignment.compute(partitioner, paper_r, paper_s)
        assert assignment.comparisons == 8
        assert assignment.replicated_signatures == 14
        assert assignment.comparison_factor == pytest.approx(0.5)
        assert assignment.replication_factor == pytest.approx(1.75)

    def test_figure2_covers_join(self, paper_r, paper_s, paper_truth):
        partitioner = DCJPartitioner(paper_table4_family())
        assignment = PartitionAssignment.compute(partitioner, paper_r, paper_s)
        assert assignment.covers(paper_truth)

    def test_step1_replication(self, paper_r, paper_s):
        """Step 1 of the walkthrough: α with h1 gives partitions
        ({b,d} ⋈ {B,D}) ∪ ({a,c} ⋈ {A,B,C,D}) — 12 comparisons."""
        partitioner = DCJPartitioner(paper_table4_family(), num_levels=1)
        assignment = PartitionAssignment.compute(partitioner, paper_r, paper_s)
        assert assignment.comparisons == 2 * 2 + 2 * 4
        parts = {
            tuple(sorted(r)): sorted(s)
            for r, s in zip(assignment.r_partitions, assignment.s_partitions)
        }
        assert parts == {(1, 3): [1, 3], (0, 2): [0, 1, 2, 3]}

    def test_figure3_alpha_would_replicate_more(self, paper_r, paper_s):
        """Figure 3: using α instead of β in step 2 grows replication.

        With the alternating pattern, the bottom subtree after step 2
        stores 7 signatures; with α-only it stores 8."""
        alternating = DCJPartitioner(paper_table4_family(), num_levels=2)
        alpha_only = DCJPartitioner(
            paper_table4_family(), num_levels=2, pattern="alpha"
        )
        alt = PartitionAssignment.compute(alternating, paper_r, paper_s)
        alp = PartitionAssignment.compute(alpha_only, paper_r, paper_s)
        # Both reduce comparisons identically ...
        assert alt.comparisons == alp.comparisons == 10
        # ... but α-only replicates one more signature (13 vs 12 total).
        assert alp.replicated_signatures == alt.replicated_signatures + 1

    def test_table3_literal_family(self, paper_r, paper_s, paper_truth):
        """With Table 3's definitions evaluated literally (h3 fires for b),
        the counts differ from Figure 2 but correctness holds."""
        partitioner = DCJPartitioner(paper_example_family())
        assignment = PartitionAssignment.compute(partitioner, paper_r, paper_s)
        assert assignment.comparisons == 7
        assert assignment.replicated_signatures == 13
        assert assignment.covers(paper_truth)


class TestConstruction:
    def test_num_partitions_is_power_of_two(self):
        partitioner = DCJPartitioner(BitstringHashFamily(32, num_functions=5))
        assert partitioner.num_partitions == 32
        assert partitioner.num_levels == 5

    def test_levels_cannot_exceed_family(self):
        with pytest.raises(ConfigurationError):
            DCJPartitioner(BitstringHashFamily(8, num_functions=2), num_levels=3)

    def test_bad_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            DCJPartitioner(BitstringHashFamily(8), pattern="zigzag")

    def test_for_cardinalities_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            DCJPartitioner.for_cardinalities(48, 10, 20)
        with pytest.raises(ConfigurationError):
            DCJPartitioner.for_cardinalities(1, 10, 20)
        partitioner = DCJPartitioner.for_cardinalities(64, 10, 20)
        assert partitioner.num_partitions == 64

    def test_describe(self):
        partitioner = DCJPartitioner.for_cardinalities(8, 10, 20)
        assert "DCJ" in partitioner.describe()
        assert "k=8" in partitioner.describe()


class TestRouting:
    def test_r_side_single_partition_without_beta_replication(self):
        """With pattern α-only, every R-tuple lands in exactly one leaf."""
        partitioner = DCJPartitioner(
            BitstringHashFamily(64, num_functions=6), pattern="alpha"
        )
        for elements in ({1, 2, 3}, set(), {500}, set(range(64))):
            assert len(partitioner.assign_r(frozenset(elements))) == 1

    def test_s_side_single_partition_without_alpha_replication(self):
        """With pattern β-only, every S-tuple lands in exactly one leaf."""
        partitioner = DCJPartitioner(
            BitstringHashFamily(64, num_functions=6), pattern="beta"
        )
        for elements in ({1, 2, 3}, set(), {500}, set(range(64))):
            assert len(partitioner.assign_s(frozenset(elements))) == 1

    def test_empty_r_set_must_reach_all_s_partitions(self):
        """∅ joins every superset, so its partitions must intersect every
        possible S assignment."""
        partitioner = DCJPartitioner(BitstringHashFamily(16, num_functions=3))
        empty_parts = set(partitioner.assign_r(frozenset()))
        for elements in ({1}, {2, 3}, set(range(16)), set()):
            s_parts = set(partitioner.assign_s(frozenset(elements)))
            assert empty_parts & s_parts

    def test_partition_indices_in_range(self):
        partitioner = DCJPartitioner(BitstringHashFamily(32, num_functions=5))
        for elements in ({1, 7}, set(range(100)), set()):
            for index in partitioner.assign_r(frozenset(elements)):
                assert 0 <= index < 32
            for index in partitioner.assign_s(frozenset(elements)):
                assert 0 <= index < 32


@settings(max_examples=40, deadline=None)
@given(
    r_sets=st.lists(st.frozensets(st.integers(0, 500), max_size=10), max_size=12),
    s_sets=st.lists(st.frozensets(st.integers(0, 500), max_size=15), max_size=12),
    levels=st.integers(min_value=1, max_value=5),
    pattern=st.sampled_from(["alternating", "alpha", "beta"]),
)
def test_dcj_partitioning_is_correct(r_sets, s_sets, levels, pattern):
    """Property: every joining pair is co-located in some partition."""
    lhs = Relation.from_sets(r_sets)
    rhs = Relation.from_sets(s_sets)
    family = BitstringHashFamily(37, num_functions=levels)
    partitioner = DCJPartitioner(family, levels, pattern)
    assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
    assert assignment.covers(containment_pairs_nested_loop(lhs, rhs))
