"""Tests for the portioned partition store."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.buffer import BufferPool
from repro.storage.pager import InMemoryDiskManager
from repro.storage.partition_store import PartitionStore


@pytest.fixture()
def pool():
    return BufferPool(InMemoryDiskManager(1024), capacity=64)


def make_store(pool, partitions=4, signature_bytes=20, **kwargs):
    return PartitionStore(pool, signature_bytes, partitions, **kwargs)


class TestWriteAndScan:
    def test_roundtrip_one_partition(self, pool):
        store = make_store(pool)
        entries = [(i * 1000 + 1, i) for i in range(50)]
        for signature, tid in entries:
            store.append(0, signature, tid)
        store.seal()
        assert list(store.scan_partition(0)) == entries
        assert list(store.scan_partition(1)) == []

    def test_entries_span_multiple_portions(self, pool):
        store = make_store(pool, partitions=1)
        count = store.portion_entries * 3 + 5
        for value in range(count):
            store.append(0, value, value)
        store.seal()
        assert store.partition_size(0) == count
        assert [tid for __, tid in store.scan_partition(0)] == list(range(count))

    def test_batches_group_portions(self, pool):
        store = make_store(pool, partitions=1)
        count = store.portion_entries * 5
        for value in range(count):
            store.append(0, value, value)
        store.seal()
        batches = list(store.scan_partition_batches(0, batch_portions=2))
        assert sum(len(batch) for batch in batches) == count
        assert len(batches) == 3  # 2 + 2 + 1 portions

    def test_total_entries_counts_replication(self, pool):
        store = make_store(pool)
        store.append(0, 1, 1)
        store.append(1, 1, 1)  # same tuple replicated to another partition
        store.append(2, 2, 2)
        store.seal()
        assert store.total_entries == 3

    def test_interleaved_partitions(self, pool):
        store = make_store(pool, partitions=3)
        for value in range(90):
            store.append(value % 3, value, value)
        store.seal()
        for partition in range(3):
            tids = [tid for __, tid in store.scan_partition(partition)]
            assert tids == [v for v in range(90) if v % 3 == partition]


class TestValidation:
    def test_append_after_seal_rejected(self, pool):
        store = make_store(pool)
        store.seal()
        with pytest.raises(ConfigurationError):
            store.append(0, 1, 1)

    def test_scan_before_seal_rejected(self, pool):
        store = make_store(pool)
        store.append(0, 1, 1)
        with pytest.raises(ConfigurationError):
            next(store.scan_partition_batches(0))

    def test_partition_out_of_range(self, pool):
        store = make_store(pool)
        with pytest.raises(ConfigurationError):
            store.append(4, 1, 1)
        with pytest.raises(ConfigurationError):
            store.append(-1, 1, 1)

    def test_invalid_construction(self, pool):
        with pytest.raises(ConfigurationError):
            PartitionStore(pool, 20, 0)
        with pytest.raises(ConfigurationError):
            PartitionStore(pool, 0, 4)
        with pytest.raises(ConfigurationError):
            PartitionStore(pool, 20, 4, portion_entries=10_000)

    def test_seal_is_idempotent(self, pool):
        store = make_store(pool)
        store.append(0, 1, 1)
        store.seal()
        store.seal()
        assert store.partition_size(0) == 1


class TestAttachedViews:
    """Read-only views over a sealed store's pages, as opened by
    parallel join workers through their own buffer pools."""

    def seal_store(self, pool, partitions=3):
        store = make_store(pool, partitions=partitions)
        for value in range(90):
            store.append(value % partitions, value, value)
        store.seal()
        return store

    def test_attach_scans_identically(self, pool):
        store = self.seal_store(pool)
        view = PartitionStore.attach(
            pool, store.meta_page_id, store.signature_bytes,
            store.num_partitions,
        )
        for partition in range(3):
            assert list(view.scan_partition(partition)) == list(
                store.scan_partition(partition)
            )

    def test_attach_reports_sizes_when_given_counts(self, pool):
        store = self.seal_store(pool)
        counts = [store.partition_size(p) for p in range(3)]
        view = PartitionStore.attach(
            pool, store.meta_page_id, store.signature_bytes,
            store.num_partitions, entry_counts=counts,
        )
        assert [view.partition_size(p) for p in range(3)] == counts

    def test_attached_view_is_sealed(self, pool):
        store = self.seal_store(pool)
        view = PartitionStore.attach(
            pool, store.meta_page_id, store.signature_bytes,
            store.num_partitions,
        )
        with pytest.raises(ConfigurationError):
            view.append(0, 1, 1)

    def test_attached_view_cannot_drop_shared_pages(self, pool):
        store = self.seal_store(pool)
        view = PartitionStore.attach(
            pool, store.meta_page_id, store.signature_bytes,
            store.num_partitions,
        )
        with pytest.raises(ConfigurationError):
            view.drop()
        # The owning store can still scan — nothing was freed.
        assert store.partition_size(0) == 30


class TestMonolithicMode:
    def test_small_partitions_work(self, pool):
        store = make_store(pool, monolithic=True)
        for value in range(10):
            store.append(value % 4, value, value)
        store.seal()
        for partition in range(4):
            tids = [tid for __, tid in store.scan_partition(partition)]
            assert tids == [v for v in range(10) if v % 4 == partition]

    def test_monolithic_overflows(self, pool):
        """The paper's rejected design: one growing record per partition
        cannot hold large partitions."""
        store = make_store(pool, partitions=1, monolithic=True)
        with pytest.raises(ConfigurationError):
            for value in range(10_000):
                store.append(0, value, value)
