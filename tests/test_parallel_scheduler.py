"""Tests for LPT shard construction and the pair cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel.scheduler import (
    PartitionTask,
    build_shards,
    estimate_pair_cost,
)


class TestCostModel:
    def test_quadratic_term_dominates(self):
        # |R_p|·|S_p| signature comparisons is the paper's join cost.
        assert estimate_pair_cost(100, 200) == 100 * 200 + 300

    def test_one_sided_pair_still_costs_its_scan(self):
        assert estimate_pair_cost(0, 500) == 500

    def test_task_cost_property(self):
        assert PartitionTask(3, 10, 20).cost == estimate_pair_cost(10, 20)


class TestBuildShards:
    def test_empty_pairs_are_dropped(self):
        shards = build_shards([5, 0, 7, 3], [4, 9, 0, 2], num_shards=4)
        covered = sorted(p for shard in shards for p in shard.partitions)
        # Partitions 1 and 2 have an empty side — the serial loop skips
        # them, so the scheduler must too.
        assert covered == [0, 3]

    def test_every_nonempty_pair_assigned_exactly_once(self):
        r_sizes = [10, 20, 0, 40, 5, 60, 7, 80]
        s_sizes = [80, 7, 60, 5, 40, 0, 20, 10]
        shards = build_shards(r_sizes, s_sizes, num_shards=3)
        covered = sorted(p for shard in shards for p in shard.partitions)
        assert covered == [0, 1, 3, 4, 6, 7]

    def test_lpt_balances_loads(self):
        # Eight equal-cost pairs over four shards: perfectly balanced.
        shards = build_shards([10] * 8, [10] * 8, num_shards=4)
        assert len(shards) == 4
        costs = [shard.cost for shard in shards]
        assert max(costs) == min(costs)
        assert all(len(shard.partitions) == 2 for shard in shards)

    def test_largest_pair_goes_to_its_own_shard(self):
        # One giant pair plus many small ones: LPT must not co-locate
        # small pairs with the giant while other shards sit near-empty.
        r_sizes = [1000] + [10] * 6
        s_sizes = [1000] + [10] * 6
        shards = build_shards(r_sizes, s_sizes, num_shards=3)
        giant = next(s for s in shards if 0 in s.partitions)
        assert giant.partitions == [0]

    def test_never_more_shards_than_pairs(self):
        shards = build_shards([5, 5], [5, 5], num_shards=8)
        assert len(shards) == 2

    def test_deterministic(self):
        r_sizes = [3, 1, 4, 1, 5, 9, 2, 6]
        s_sizes = [2, 7, 1, 8, 2, 8, 1, 8]
        first = build_shards(r_sizes, s_sizes, num_shards=3)
        second = build_shards(r_sizes, s_sizes, num_shards=3)
        assert [s.partitions for s in first] == [s.partitions for s in second]
        assert [s.cost for s in first] == [s.cost for s in second]

    def test_partitions_sorted_within_shard(self):
        shards = build_shards([9, 1, 8, 2, 7], [9, 1, 8, 2, 7], num_shards=2)
        for shard in shards:
            assert shard.partitions == sorted(shard.partitions)

    def test_all_empty_returns_no_shards(self):
        assert build_shards([0, 0], [0, 0], num_shards=4) == []

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            build_shards([1, 2], [1], num_shards=2)

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            build_shards([1], [1], num_shards=0)
