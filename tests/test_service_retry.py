"""Retry layer + circuit breaker (repro.service.retry).

Includes the retry-correctness contract: a shard that fails once and
then succeeds on retry yields *bit-identical* pairs and x/y accounting
versus a run that never failed.
"""

import random

import pytest

from repro.core.operator import SetContainmentJoin, Testbed
from repro.core.psj import PSJPartitioner
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.obs.registry import MetricsRegistry
from repro.service.retry import (
    DEGRADATION_ORDER,
    BackendLadder,
    CircuitBreaker,
    RetryPolicy,
    run_with_retries,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_delay_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0,
                             max_delay=10.0)
        rng = random.Random(0)
        assert policy.delay(1, rng) == pytest.approx(0.1)
        assert policy.delay(2, rng) == pytest.approx(0.2)
        assert policy.delay(3, rng) == pytest.approx(0.4)

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, jitter=0.0,
                             max_delay=2.5)
        assert policy.delay(5, random.Random(0)) == pytest.approx(2.5)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(1, 20):
            delay = policy.delay(attempt, rng)
            assert 0.5 <= delay <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestCircuitBreaker:
    def breaker(self, clock, threshold=3, cooldown=5.0):
        return CircuitBreaker("process", failure_threshold=threshold,
                              cooldown=cooldown, clock=clock,
                              registry=MetricsRegistry())

    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allows()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allows()

    def test_success_resets_the_failure_streak(self):
        breaker = self.breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allows()  # streak restarted, threshold not reached

    def test_half_open_after_cooldown_then_close_on_success(self):
        clock = FakeClock()
        breaker = self.breaker(clock, cooldown=5.0)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allows()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allows()  # one probe goes through
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.breaker(clock, cooldown=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allows()
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(4.9)
        assert not breaker.allows()  # cooldown restarted from the reopen

    def test_trip_counter_published(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        breaker = CircuitBreaker("thread", failure_threshold=1,
                                 clock=clock, registry=registry)
        breaker.record_failure()
        snapshot = registry.snapshot()
        assert snapshot["setjoin_service_breaker_thread_trips_total"][
            "value"] == 1
        assert snapshot["setjoin_service_breaker_thread_state"]["value"] == 2


class TestBackendLadder:
    def test_degradation_chain_bottoms_out_at_serial(self):
        assert DEGRADATION_ORDER["process"] == "thread"
        assert DEGRADATION_ORDER["thread"] == "serial"
        assert DEGRADATION_ORDER["serial"] is None

    def test_prefers_the_configured_backend(self):
        ladder = BackendLadder("process", clock=FakeClock(),
                               registry=MetricsRegistry())
        assert ladder.select() == "process"

    def test_open_breaker_degrades_one_rung(self):
        registry = MetricsRegistry()
        ladder = BackendLadder("process", failure_threshold=2,
                               clock=FakeClock(), registry=registry)
        ladder.record_failure("process")
        ladder.record_failure("process")
        assert ladder.select() == "thread"
        assert registry.snapshot()[
            "setjoin_service_backend_degraded_total"]["value"] == 1

    def test_degrades_all_the_way_to_serial(self):
        ladder = BackendLadder("process", failure_threshold=1,
                               clock=FakeClock(), registry=MetricsRegistry())
        ladder.record_failure("process")
        ladder.record_failure("thread")
        assert ladder.select() == "serial"

    def test_recovered_breaker_restores_the_preferred_backend(self):
        clock = FakeClock()
        ladder = BackendLadder("process", failure_threshold=1, cooldown=5.0,
                               clock=clock, registry=MetricsRegistry())
        ladder.record_failure("process")
        assert ladder.select() == "thread"
        clock.advance(5.0)
        assert ladder.select() == "process"  # half-open probe
        ladder.record_success("process")
        assert ladder.select() == "process"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            BackendLadder("gpu", registry=MetricsRegistry())


class TestRunWithRetries:
    def test_transient_failure_then_success(self):
        calls = []
        sleeps = []

        def operation(backend):
            calls.append(backend)
            if len(calls) < 3:
                raise ParallelExecutionError("worker died",
                                             kind="worker_death")
            return "answer"

        result = run_with_retries(
            operation, RetryPolicy(max_attempts=3, jitter=0.0),
            backend="thread", sleep=sleeps.append, rng=random.Random(0),
        )
        assert result == "answer"
        assert calls == ["thread"] * 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # backoff grew

    def test_exhausted_attempts_reraise_the_last_error(self):
        def operation(backend):
            raise ParallelExecutionError("still broken")

        with pytest.raises(ParallelExecutionError, match="still broken"):
            run_with_retries(operation, RetryPolicy(max_attempts=2),
                             backend="serial", sleep=lambda s: None)

    def test_non_transient_errors_propagate_immediately(self):
        calls = []

        def operation(backend):
            calls.append(backend)
            raise ConfigurationError("planner bug")

        with pytest.raises(ConfigurationError):
            run_with_retries(operation, RetryPolicy(max_attempts=5),
                             backend="serial", sleep=lambda s: None)
        assert len(calls) == 1

    def test_deadline_cuts_the_retry_loop(self):
        clock = FakeClock()

        def operation(backend):
            clock.advance(0.9)
            raise ParallelExecutionError("slow failure")

        with pytest.raises(ParallelExecutionError):
            run_with_retries(
                operation,
                RetryPolicy(max_attempts=10, base_delay=0.2, jitter=0.0),
                backend="serial", deadline=1.0, clock=clock,
                sleep=lambda s: None, rng=random.Random(0),
            )
        # One attempt consumed 0.9s of a 1.0s budget; the 0.2s pause
        # would overrun it, so no second attempt happened.
        assert clock.now == pytest.approx(0.9)

    def test_on_retry_hook_sees_each_backoff(self):
        seen = []

        def operation(backend):
            if len(seen) < 2:
                raise ParallelExecutionError("flaky")
            return "ok"

        run_with_retries(
            operation, RetryPolicy(max_attempts=3),
            backend="serial", sleep=lambda s: None,
            on_retry=lambda attempt, error: seen.append(attempt),
        )
        assert seen == [1, 2]

    def test_ladder_degrades_between_attempts(self):
        ladder = BackendLadder("thread", failure_threshold=1,
                               clock=FakeClock(), registry=MetricsRegistry())
        calls = []

        def operation(backend):
            calls.append(backend)
            if backend == "thread":
                raise ParallelExecutionError("pool broke")
            return "ok"

        result = run_with_retries(operation, RetryPolicy(max_attempts=3),
                                  ladder=ladder, sleep=lambda s: None)
        assert result == "ok"
        assert calls == ["thread", "serial"]


class FailShardZeroOnce:
    """Shard hook: arm a first-page I/O fault on shard 0, first batch only."""

    def __init__(self):
        self.batches = 0

    def __call__(self, spec):
        if spec.index == 0:
            self.batches += 1
            if self.batches == 1:
                spec.fail_after = 0


class TestRetriedJoinIsBitIdentical:
    """The satellite contract: fail-once-then-succeed ≡ never-failed."""

    @pytest.fixture()
    def loaded_testbed(self, tmp_path, small_workload):
        lhs, rhs = small_workload
        with Testbed(path=str(tmp_path / "retry.db")) as testbed:
            testbed.load(lhs, rhs)
            yield testbed

    def test_retry_success_matches_clean_run_exactly(self, loaded_testbed):
        def clean_run():
            return SetContainmentJoin(
                loaded_testbed, PSJPartitioner(8, seed=1),
                workers=2, parallel_backend="thread",
            ).run()

        expected_pairs, expected_metrics = clean_run()

        hook = FailShardZeroOnce()
        attempts = []

        def operation(backend):
            attempts.append(backend)
            return SetContainmentJoin(
                loaded_testbed, PSJPartitioner(8, seed=1),
                workers=2, parallel_backend=backend, shard_hook=hook,
            ).run()

        pairs, metrics = run_with_retries(
            operation, RetryPolicy(max_attempts=3, base_delay=0.001),
            backend="thread", sleep=lambda s: None, rng=random.Random(0),
        )
        # The first attempt really failed and was retried.
        assert len(attempts) == 2
        assert hook.batches == 2
        # Bit-identical pairs and exact x/y accounting vs the clean run.
        assert pairs == expected_pairs
        assert metrics.signature_comparisons == \
            expected_metrics.signature_comparisons
        assert metrics.replicated_signatures == \
            expected_metrics.replicated_signatures
        assert metrics.num_partitions == expected_metrics.num_partitions

    def test_unretried_failure_stays_typed(self, loaded_testbed):
        hook = FailShardZeroOnce()

        def operation(backend):
            return SetContainmentJoin(
                loaded_testbed, PSJPartitioner(8, seed=1),
                workers=2, parallel_backend=backend, shard_hook=hook,
            ).run()

        with pytest.raises(ParallelExecutionError, match="InjectedIOError"):
            run_with_retries(operation, RetryPolicy(max_attempts=1),
                             backend="thread", sleep=lambda s: None)
