"""Tests for the trace/metrics exporters (repro.obs.export)."""

import json

import pytest

from repro.obs.export import (
    TRACE_RECORD_KEYS,
    console_summary,
    prometheus_text,
    read_trace_jsonl,
    span_records,
    validate_trace_records,
    write_trace_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_trace():
    tracer = Tracer(clock=FakeClock(), wall=lambda: 1000.0)
    with tracer.span("join", algorithm="PSJ"):
        with tracer.span("phase.partition"):
            pass
        with tracer.span("phase.join"):
            with tracer.span("join.partition", partition=0):
                pass
    return tracer


class TestSpanRecords:
    def test_accepts_tracer_spans_and_records(self):
        tracer = make_trace()
        from_tracer = span_records(tracer)
        from_spans = span_records(tracer.roots)
        from_records = span_records(from_tracer)
        assert from_tracer == from_spans == from_records
        assert [r["name"] for r in from_tracer] == [
            "join", "phase.partition", "phase.join", "join.partition",
        ]


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        count = write_trace_jsonl(make_trace(), path)
        assert count == 4
        records = read_trace_jsonl(path)
        assert len(records) == 4
        for record in records:
            assert sorted(record) == sorted(TRACE_RECORD_KEYS)

    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(make_trace(), path)
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 4
        assert all(isinstance(json.loads(line), dict) for line in lines)


class TestValidation:
    def good(self):
        return span_records(make_trace())

    def test_good_trace_passes(self):
        validate_trace_records(self.good())

    def test_missing_key(self):
        records = self.good()
        del records[0]["duration"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_trace_records(records)

    def test_duplicate_span_id(self):
        records = self.good()
        records[1]["span_id"] = records[0]["span_id"]
        with pytest.raises(ValueError, match="duplicate span_id"):
            validate_trace_records(records)

    def test_dangling_parent(self):
        records = self.good()
        records[-1]["parent_id"] = 999
        with pytest.raises(ValueError, match="dangling parent"):
            validate_trace_records(records)

    def test_end_before_start(self):
        records = self.good()
        records[0]["end"] = records[0]["start"] - 1
        with pytest.raises(ValueError, match="ends before"):
            validate_trace_records(records)

    def test_empty_name(self):
        records = self.good()
        records[0]["name"] = ""
        with pytest.raises(ValueError, match="empty name"):
            validate_trace_records(records)

    def test_attrs_must_be_dict(self):
        records = self.good()
        records[0]["attrs"] = []
        with pytest.raises(ValueError, match="attrs"):
            validate_trace_records(records)


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("setjoin_joins_total", "Completed joins").inc(3)
        registry.gauge("setjoin_last_hit_rate").set(0.75)
        text = prometheus_text(registry)
        assert "# HELP setjoin_joins_total Completed joins\n" in text
        assert "# TYPE setjoin_joins_total counter\n" in text
        assert "\nsetjoin_joins_total 3\n" in text
        assert "# TYPE setjoin_last_hit_rate gauge\n" in text
        assert "setjoin_last_hit_rate 0.75" in text

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        text = prometheus_text(registry)
        assert '# TYPE h_seconds histogram' in text
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert "h_seconds_sum 5.05" in text
        assert "h_seconds_count 2" in text

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_integral_floats_render_without_exponent(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1_000_000)
        assert "c_total 1000000" in prometheus_text(registry)


class TestConsoleSummary:
    def test_shows_tree_with_shares(self):
        text = console_summary(make_trace())
        lines = text.splitlines()
        assert lines[0].startswith("join")
        assert "100.0%" in lines[0]
        assert any("phase.partition" in line for line in lines)
        assert any("join.partition" in line for line in lines)
        assert "█" in text

    def test_depth_limit_elides(self):
        text = console_summary(make_trace(), max_depth=1)
        assert "join.partition" not in text
        assert "elided" in text

    def test_empty_trace(self):
        assert console_summary([]) == "(empty trace)"

    def test_share_bar_is_clamped(self):
        # Adopted spans can out-last the root (different wall clocks);
        # the bar must not overflow its width.
        tracer = Tracer(clock=FakeClock(), wall=lambda: 0.0)
        with tracer.span("root"):
            tracer.adopt([{
                "name": "foreign", "span_id": 1, "parent_id": None,
                "start": 0.0, "end": 500.0, "duration": 500.0, "attrs": {},
            }])
        for line in console_summary(tracer).splitlines():
            assert line.count("█") <= 24


def sharded_records(shard_name="dist.shard", count=4, id_key="shard_id"):
    """A fan-out root with ``count`` concurrent 2-second shard spans."""
    records = [{
        "name": "dist.join", "span_id": 1, "parent_id": None,
        "start": 0.0, "end": 3.0, "duration": 3.0, "attrs": {},
    }]
    for index in range(count):
        records.append({
            "name": shard_name, "span_id": 2 + index, "parent_id": 1,
            "start": 0.5, "end": 2.5, "duration": 2.0,
            "attrs": {id_key: count - 1 - index},
        })
    return records


class TestConsoleSummaryShardGrouping:
    def test_concurrent_shards_grouped_with_max_and_sum(self):
        text = console_summary(sharded_records(count=4))
        lines = text.splitlines()
        group_lines = [line for line in lines if "shards" in line]
        assert len(group_lines) == 1
        group = group_lines[0]
        # Four concurrent 2s shards: wall cost 2s (max), work 8s (sum).
        assert "count=4" in group
        assert "max=2000.000ms" in group
        assert "sum=8000.000ms" in group
        # The group's own duration is the fan-out envelope, not the sum
        # — so its share of the 3s root is 2/3, never several hundred %.
        assert "66.7%" in group

    def test_shard_lines_nest_under_group_in_id_order(self):
        text = console_summary(sharded_records(count=3))
        lines = text.splitlines()
        group_at = next(
            index for index, line in enumerate(lines) if "shards" in line
        )
        shard_lines = lines[group_at + 1:group_at + 4]
        assert all("dist.shard" in line for line in shard_lines)
        ids = [line.split("shard_id=")[1][0] for line in shard_lines]
        assert ids == ["0", "1", "2"]

    def test_worker_shard_spans_grouped_too(self):
        text = console_summary(
            sharded_records(shard_name="shard", count=2, id_key="index")
        )
        assert "count=2" in text
        assert "sum=4000.000ms" in text

    def test_single_shard_is_not_grouped(self):
        text = console_summary(sharded_records(count=1))
        assert "count=" not in text
        assert "dist.shard" in text

    def test_grouping_keeps_validation_happy(self):
        # The synthetic group span exists only in the rendering; the
        # records themselves stay schema-valid.
        records = sharded_records(count=4)
        console_summary(records)
        validate_trace_records(records)
