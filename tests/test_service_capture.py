"""Workload capture records, rotation discipline, deterministic replay."""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.database import SetJoinDatabase
from repro.errors import ConfigurationError, SetJoinError
from repro.service import QueryService
from repro.service.capture import (
    CAPTURE_SCHEMA,
    WorkloadCapture,
    WorkloadRecord,
    answer_digest,
    read_capture,
    replay_capture,
)


class TestAnswerDigest:
    def test_join_digest_is_order_free(self):
        class Metrics:
            signature_comparisons = 9
            replicated_signatures = 2

        a = answer_digest("join", ({(1, 2), (0, 0)}, Metrics()))
        b = answer_digest("join", ({(0, 0), (1, 2)}, Metrics()))
        assert a == b
        assert a["pairs"] == 2 and a["x"] == 9 and a["y"] == 2

    def test_join_digest_detects_a_changed_pair(self):
        class Metrics:
            signature_comparisons = 9
            replicated_signatures = 2

        a = answer_digest("join", ({(1, 2)}, Metrics()))
        b = answer_digest("join", ({(1, 3)}, Metrics()))
        assert a["sha256"] != b["sha256"]

    def test_probe_digest_sorts_tids(self):
        assert answer_digest("probe", [3, 1, 2]) == \
            answer_digest("probe", [1, 2, 3])

    def test_create_digest_is_the_row_count(self):
        assert answer_digest("create", 7) == {"rows": 7}

    def test_unknown_kind_is_empty(self):
        assert answer_digest("drop", None) == {}


def make_record(**overrides):
    data = {
        "query_id": 1, "kind": "join", "fingerprint": "abc123",
        "label": "join r=r s=s", "params": {"r": "r", "s": "s"},
        "status": "ok", "seconds": 0.5, "attempts": 1,
        "digest": {"sha256": "0" * 64, "pairs": 0, "x": 0, "y": 0},
        "ledger": {"wall_seconds": 0.5, "resources": {}},
    }
    data.update(overrides)
    return WorkloadRecord(**data)


class TestWorkloadRecord:
    def test_round_trips_through_dict(self):
        record = make_record()
        clone = WorkloadRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()

    def test_to_dict_carries_the_schema(self):
        assert make_record().to_dict()["schema"] == CAPTURE_SCHEMA

    def test_future_schema_is_refused(self):
        data = make_record().to_dict()
        data["schema"] = CAPTURE_SCHEMA + 1
        with pytest.raises(ConfigurationError, match="schema"):
            WorkloadRecord.from_dict(data)

    def test_missing_fields_raise_typed(self):
        with pytest.raises(ConfigurationError, match="malformed|schema"):
            WorkloadRecord.from_dict({"schema": CAPTURE_SCHEMA})

    def test_non_object_raises_typed(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            WorkloadRecord.from_dict([1, 2, 3])


class TestWorkloadCapture:
    def test_append_requires_open(self, tmp_path):
        capture = WorkloadCapture(str(tmp_path / "cap.jsonl"))
        with pytest.raises(ConfigurationError, match="not open"):
            capture.append(make_record())

    def test_double_open_is_refused(self, tmp_path):
        capture = WorkloadCapture(str(tmp_path / "cap.jsonl"))
        capture.open_()
        try:
            with pytest.raises(ConfigurationError, match="already open"):
                capture.open_()
        finally:
            capture.close()

    def test_open_writes_the_fingerprint_sidecar(self, tmp_path):
        path = str(tmp_path / "cap.jsonl")
        capture = WorkloadCapture(path)
        capture.open_()
        capture.close()
        meta = json.loads(open(path + ".meta.json").read())
        assert "fingerprint" in meta

    def test_oversize_capture_keeps_newest_records(self, tmp_path):
        path = str(tmp_path / "cap.jsonl")
        with open(path, "w") as handle:
            for query_id in range(50):
                handle.write(json.dumps(
                    make_record(query_id=query_id).to_dict()
                ) + "\n")
        capture = WorkloadCapture(path, max_bytes=64, keep=10)
        rotation = capture.open_()
        capture.close()
        assert rotation["rotated"] is True
        kept = [record.query_id for record in read_capture(path)]
        assert kept == list(range(40, 50))

    def test_rotation_sheds_malformed_lines(self, tmp_path):
        path = str(tmp_path / "cap.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps(make_record().to_dict()) + "\n")
            handle.write("this is not a workload record\n")
            handle.write(json.dumps(make_record(query_id=2).to_dict()) + "\n")
        capture = WorkloadCapture(path, max_bytes=16, keep=100)
        rotation = capture.open_()
        capture.close()
        assert rotation["dropped"] == 0  # dropped counts only keep-overflow
        assert [r.query_id for r in read_capture(path)] == [1, 2]

    def test_read_capture_is_strict(self, tmp_path):
        path = str(tmp_path / "cap.jsonl")
        with open(path, "w") as handle:
            handle.write("garbage\n")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            read_capture(path)


@pytest.fixture()
def captured_run(tmp_path, small_workload):
    """A chaos-free service run with capture on: db path, capture path,
    and the answers the live service produced."""
    lhs, rhs = small_workload
    db_path = str(tmp_path / "cap.db")
    capture_path = str(tmp_path / "cap.jsonl")
    with SetJoinDatabase.open(db_path) as db:
        db.create_relation("r", lhs)
        db.create_relation("s", rhs)
    service = QueryService(
        db_path, workers=2, backend="thread", capture_path=capture_path,
    ).start()
    answers = {}
    try:
        pairs, __ = service.join("r", "s")
        answers["auto"] = sorted(pairs)
        pairs, __ = service.join("r", "s", algorithm="PSJ", num_partitions=4)
        answers["psj"] = sorted(pairs)
        answers["probe"] = sorted(service.probe("s", [1, 2, 3]))
        service.submit("create", name="scratch_1",
                       rows=[(0, [1, 2])]).result()
        service.submit("drop", name="scratch_1").result()
        with pytest.raises(SetJoinError):
            service.join("r", "missing_relation")
    finally:
        service.stop()
    return db_path, capture_path, answers


class TestCaptureFromLiveService:
    def test_every_query_lands_in_the_capture(self, captured_run):
        __, capture_path, __answers = captured_run
        records = read_capture(capture_path)
        assert [r.kind for r in records] == \
            ["join", "join", "probe", "create", "drop", "join"]
        assert [r.status for r in records][:5] == ["ok"] * 5
        assert records[-1].status != "ok"

    def test_join_records_store_the_resolved_plan(self, captured_run):
        __, capture_path, __answers = captured_run
        auto_join = read_capture(capture_path)[0]
        assert auto_join.params["algorithm"] in ("DCJ", "PSJ", "LSJ", "SHJ")
        assert auto_join.params["algorithm"] != "auto"
        assert isinstance(auto_join.params["num_partitions"], int)
        assert auto_join.digest["sha256"]
        assert auto_join.ledger["resources"]["signature_comparisons"] > 0

    def test_failed_queries_carry_no_digest(self, captured_run):
        __, capture_path, __answers = captured_run
        failed = read_capture(capture_path)[-1]
        assert failed.digest == {}
        assert failed.ledger  # still billed

    def test_capture_on_or_off_answers_identical(self, tmp_path,
                                                 small_workload):
        lhs, rhs = small_workload
        db_path = str(tmp_path / "bit.db")
        with SetJoinDatabase.open(db_path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        answers = []
        for capture_path in (str(tmp_path / "bit.jsonl"), None):
            service = QueryService(
                db_path, workers=2, backend="thread",
                capture_path=capture_path,
            ).start()
            try:
                pairs, metrics = service.join("r", "s")
                answers.append((
                    sorted(pairs),
                    metrics.signature_comparisons,
                    metrics.replicated_signatures,
                ))
            finally:
                service.stop()
        assert answers[0] == answers[1]


class TestReplay:
    def test_clean_replay_matches_every_record(self, captured_run):
        db_path, capture_path, answers = captured_run
        records = read_capture(capture_path)
        with SetJoinDatabase.open(db_path) as db:
            report = replay_capture(records, db)
        assert report.clean
        report.assert_clean()
        assert report.total == 6
        # ok joins + probe replay; churn and the failed join are skipped.
        assert report.replayed == 3
        assert report.matched == 3
        assert report.skipped["kind_create"] == 1
        assert report.skipped["kind_drop"] == 1
        assert sum(
            count for reason, count in report.skipped.items()
            if reason.startswith("status_")
        ) == 1

    def test_replay_at_other_worker_counts_still_matches(self, captured_run):
        db_path, capture_path, __answers = captured_run
        records = read_capture(capture_path)
        with SetJoinDatabase.open(db_path) as db:
            report = replay_capture(records, db, workers=3,
                                    backend="thread")
        assert report.clean and report.matched == 3

    def test_tampered_digest_is_a_mismatch(self, captured_run):
        db_path, capture_path, __answers = captured_run
        records = read_capture(capture_path)
        records[0].digest["sha256"] = "f" * 64
        with SetJoinDatabase.open(db_path) as db:
            report = replay_capture(records, db)
        assert not report.clean
        (entry,) = report.digest_mismatches
        assert entry["query_id"] == records[0].query_id
        with pytest.raises(ConfigurationError, match="diverged"):
            report.assert_clean()

    def test_tampered_deterministic_resource_is_a_mismatch(
            self, captured_run):
        db_path, capture_path, __answers = captured_run
        records = read_capture(capture_path)
        records[0].ledger["resources"]["signature_comparisons"] += 1
        with SetJoinDatabase.open(db_path) as db:
            report = replay_capture(records, db)
        (entry,) = report.ledger_mismatches
        assert entry["resource"] == "signature_comparisons"

    def test_missing_relation_is_skipped_not_failed(self, captured_run):
        db_path, capture_path, __answers = captured_run
        records = read_capture(capture_path)
        with SetJoinDatabase.open(db_path) as db:
            db.drop_relation("r")
            report = replay_capture(records, db)
        assert report.clean  # nothing replayable diverged
        assert report.skipped["missing_relation"] == 2
        assert report.replayed == 1  # the probe still runs

    def test_unresolved_auto_algorithm_is_refused(self, captured_run):
        db_path, capture_path, __answers = captured_run
        records = read_capture(capture_path)
        records[0].params["algorithm"] = "auto"
        with SetJoinDatabase.open(db_path) as db:
            with pytest.raises(ConfigurationError, match="unresolved"):
                replay_capture(records, db)


class TestCaptureCLI:
    def test_workload_command_reports_heavy_hitters(self, captured_run,
                                                    capsys):
        __, capture_path, __answers = captured_run
        assert cli_main(["workload", capture_path, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "6 queries" in out
        assert "top by wall:" in out
        assert "top by comparisons:" in out

    def test_workload_command_json(self, captured_run, capsys):
        __, capture_path, __answers = captured_run
        assert cli_main(["workload", capture_path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["queries"] == 6
        assert "reconciliation" not in report

    def test_replay_command_clean_run_exits_zero(self, captured_run,
                                                 capsys):
        db_path, capture_path, __answers = captured_run
        assert cli_main(["replay", capture_path, db_path]) == 0
        out = capsys.readouterr().out
        assert "replay clean" in out

    def test_replay_command_mismatch_exits_nonzero(self, captured_run,
                                                   tmp_path, capsys):
        db_path, capture_path, __answers = captured_run
        tampered = str(tmp_path / "tampered.jsonl")
        with open(capture_path) as src, open(tampered, "w") as dst:
            for line in src:
                record = json.loads(line)
                if record["kind"] == "join" and record["status"] == "ok":
                    record["digest"]["sha256"] = "f" * 64
                dst.write(json.dumps(record) + "\n")
        assert cli_main(["replay", tampered, db_path]) == 1
        assert "DIGEST MISMATCH" in capsys.readouterr().out

    def test_replay_command_json(self, captured_run, capsys):
        db_path, capture_path, __answers = captured_run
        assert cli_main(["replay", capture_path, db_path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True


class TestShardedCaptureReplay:
    def test_sharded_capture_replays_clean(self, tmp_path, small_workload):
        lhs, rhs = small_workload
        db_path = str(tmp_path / "sh.db")
        capture_path = str(tmp_path / "sh.jsonl")
        with SetJoinDatabase.open_sharded(db_path, shards=2) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        service = QueryService(
            db_path, workers=2, backend="thread", shards=2,
            capture_path=capture_path,
        ).start()
        try:
            expected, __ = service.join("r", "s")
            service.probe("s", [4, 5])
        finally:
            service.stop()
        records = read_capture(capture_path)
        with SetJoinDatabase.open_sharded(db_path) as db:
            report = replay_capture(records, db)
        report.assert_clean()
        assert report.matched == 2
        # The CLI path autodetects the shard layout from FILE.shards.json.
        assert os.path.exists(db_path + ".shards.json")
        assert cli_main(["replay", capture_path, db_path]) == 0
