"""Workload ledger: fingerprints, per-query bills, exact reconciliation."""

import pytest

from repro.database import SetJoinDatabase
from repro.errors import ConfigurationError, SetJoinError
from repro.obs.ledger import (
    RESOURCE_COUNTERS,
    QueryLedger,
    WorkloadLedger,
    normalize_workload_name,
    query_fingerprint,
)
from repro.obs.registry import MetricsRegistry
from repro.service import QueryService


class TestNormalizeWorkloadName:
    def test_digit_runs_collapse(self):
        assert normalize_workload_name("scratch_17") == "scratch_*"
        assert normalize_workload_name("scratch_2048") == "scratch_*"

    def test_names_without_digits_pass_through(self):
        assert normalize_workload_name("orders") == "orders"

    def test_churn_series_shares_one_shape(self):
        names = {normalize_workload_name(f"churn_{i}") for i in range(50)}
        assert names == {"churn_*"}


class TestQueryFingerprint:
    def test_stable_across_detail_ordering(self):
        a = query_fingerprint("join", {"r": "x", "s": "y", "k": 4})
        b = query_fingerprint("join", {"k": 4, "s": "y", "r": "x"})
        assert a.key == b.key
        assert a.label == b.label

    def test_none_fields_are_dropped(self):
        a = query_fingerprint("join", {"r": "x", "k": None})
        b = query_fingerprint("join", {"r": "x"})
        assert a.key == b.key

    def test_floats_round_to_three_places(self):
        a = query_fingerprint("join", {"theta": 6.00004})
        b = query_fingerprint("join", {"theta": 6.0})
        assert a.key == b.key

    def test_different_shapes_differ(self):
        a = query_fingerprint("join", {"r": "x", "algorithm": "DCJ"})
        b = query_fingerprint("join", {"r": "x", "algorithm": "PSJ"})
        assert a.key != b.key

    def test_label_is_readable(self):
        fp = query_fingerprint("join", {"r": "orders", "algorithm": "DCJ"})
        assert fp.label.startswith("join ")
        assert "algorithm=DCJ" in fp.label
        assert "r=orders" in fp.label

    def test_to_dict_is_plain_data(self):
        fp = query_fingerprint("probe", {"name": "s"})
        data = fp.to_dict()
        assert data["key"] == fp.key
        assert data["detail"]["kind"] == "probe"


class TestQueryLedger:
    def test_from_delta_keeps_only_counters(self):
        registry = MetricsRegistry()
        baseline = registry.snapshot()
        registry.counter("setjoin_page_reads_total", "h").inc(7)
        registry.gauge("setjoin_last_buffer_hit_rate", "h").set(0.5)
        ledger = QueryLedger.from_delta(
            registry.delta(baseline), wall_seconds=0.25, cpu_seconds=0.1
        )
        assert ledger.counters == {"setjoin_page_reads_total": 7}
        assert ledger.resources["pages_read"] == 7

    def test_resources_are_zero_filled(self):
        ledger = QueryLedger()
        assert set(ledger.resources) == set(RESOURCE_COUNTERS)
        assert all(value == 0 for value in ledger.resources.values())

    def test_round_trips_through_dict(self):
        ledger = QueryLedger(
            wall_seconds=1.5, cpu_seconds=0.5,
            counters={"setjoin_wal_bytes_total": 128},
        )
        clone = QueryLedger.from_dict(ledger.to_dict())
        assert clone.wall_seconds == 1.5
        assert clone.counters == ledger.counters

    def test_from_dict_accepts_resources_only_records(self):
        clone = QueryLedger.from_dict({"resources": {"pages_read": 3}})
        assert clone.counters == {"setjoin_page_reads_total": 3}


class TestWorkloadLedgerUnit:
    @staticmethod
    def make(registry=None):
        return WorkloadLedger(
            registry=registry if registry is not None else MetricsRegistry()
        )

    def test_attribute_groups_by_fingerprint(self):
        ledger = self.make()
        fp = query_fingerprint("join", {"r": "x"})
        bill = QueryLedger(counters={"setjoin_page_reads_total": 2})
        ledger.attribute(fp, bill, kind="join", status="ok", query_id=1)
        ledger.attribute(fp, bill, kind="join", status="error", query_id=2)
        assert ledger.queries == 2
        assert ledger.fingerprints == 1
        (group,) = ledger.top(1, by="queries")
        assert group["queries"] == 2
        assert group["ok"] == 1 and group["failed"] == 1
        assert group["resources"]["pages_read"] == 4
        assert group["last_query_id"] == 2

    def test_top_orders_and_validates(self):
        ledger = self.make()
        heavy = query_fingerprint("join", {"r": "heavy"})
        light = query_fingerprint("join", {"r": "light"})
        ledger.attribute(
            heavy,
            QueryLedger(counters={"setjoin_signature_comparisons_total": 90}),
            kind="join", status="ok",
        )
        ledger.attribute(
            light,
            QueryLedger(counters={"setjoin_signature_comparisons_total": 10}),
            kind="join", status="ok",
        )
        order = [g["fingerprint"] for g in ledger.top(2, by="comparisons")]
        assert order == [heavy.key, light.key]
        with pytest.raises(ConfigurationError, match="top"):
            ledger.top(2, by="nonsense")
        with pytest.raises(ConfigurationError, match=">= 0"):
            ledger.top(-1)

    def test_reconcile_requires_begin(self):
        ledger = self.make()
        with pytest.raises(ConfigurationError, match="begin"):
            ledger.reconcile()

    def test_offline_report_omits_reconciliation(self):
        ledger = self.make()
        ledger.attribute_record({
            "query_id": 1, "kind": "join", "fingerprint": "abc",
            "label": "join r=x", "status": "ok",
            "ledger": {"wall_seconds": 0.1, "resources": {"pages_read": 2}},
        })
        report = ledger.report()
        assert "reconciliation" not in report
        assert report["totals"]["pages_read"] == 2

    def test_attribute_record_without_ledger_raises(self):
        ledger = self.make()
        with pytest.raises(ConfigurationError, match="no ledger"):
            ledger.attribute_record({"query_id": 4, "ledger": None})

    def test_exact_reconciliation_over_a_private_registry(self):
        registry = MetricsRegistry()
        ledger = WorkloadLedger(registry=registry)
        ledger.begin()
        baseline = registry.snapshot()
        registry.counter("setjoin_page_reads_total", "h").inc(11)
        registry.counter("setjoin_wal_bytes_total", "h").inc(64)
        bill = QueryLedger.from_delta(registry.delta(baseline), 0.0, 0.0)
        ledger.attribute(
            query_fingerprint("join", {"r": "x"}), bill,
            kind="join", status="ok",
        )
        outcome = ledger.reconcile()
        assert outcome["exact"] is True
        assert outcome["counters"]["pages_read"] == {
            "global": 11, "attributed": 11, "unattributed": 0,
        }
        # Movement nobody billed shows up as unattributed.
        registry.counter("setjoin_page_reads_total", "h").inc(1)
        outcome = ledger.reconcile()
        assert outcome["exact"] is False
        assert outcome["counters"]["pages_read"]["unattributed"] == 1


def run_mixed_traffic(service):
    """Joins (auto + pinned), probes, churn, and one failed query."""
    service.join("r", "s")
    service.join("r", "s", algorithm="PSJ", num_partitions=4)
    service.probe("s", [1, 2, 3])
    service.submit("create", name="scratch_1",
                   rows=[(0, [1, 2]), (1, [2, 3])]).result()
    service.submit("drop", name="scratch_1").result()
    with pytest.raises(SetJoinError):
        service.join("r", "no_such_relation")


class TestServiceReconciliation:
    """The acceptance bar: the sum of per-query bills equals the global
    registry movement since the service started — exactly — under every
    backend and shard count.  Uses the process-global registry because
    that is where the storage substrate publishes (the service's lane
    window and the reconcile window are both deltas, so prior state
    cancels)."""

    @staticmethod
    def serve(db, **kwargs):
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("backend", "thread")
        return QueryService(db, **kwargs)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_exact_across_backends(self, tmp_path, small_workload, backend):
        lhs, rhs = small_workload
        path = str(tmp_path / "led.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        service = self.serve(path, backend=backend).start()
        try:
            run_mixed_traffic(service)
            report = service.debug_workload()
            assert report["queries"] == 6
            reconciliation = report["reconciliation"]
            assert reconciliation["exact"] is True, reconciliation
            # The traffic genuinely moved the interesting counters.
            totals = report["totals"]
            assert totals["signature_comparisons"] > 0
            assert totals["result_pairs"] > 0
        finally:
            service.stop()

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_exact_across_shard_counts(self, tmp_path, small_workload,
                                       shards):
        lhs, rhs = small_workload
        path = str(tmp_path / "led.db")
        with SetJoinDatabase.open_sharded(path, shards=shards) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        service = self.serve(path, shards=shards).start()
        try:
            run_mixed_traffic(service)
            reconciliation = service.debug_workload()["reconciliation"]
            assert reconciliation["exact"] is True, reconciliation
        finally:
            service.stop()

    def test_failed_queries_are_billed_too(self, tmp_path, small_workload):
        lhs, rhs = small_workload
        path = str(tmp_path / "led.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        service = self.serve(path).start()
        try:
            with pytest.raises(SetJoinError):
                service.join("r", "no_such_relation")
            report = service.debug_workload()
            assert report["queries"] == 1
            (group,) = report["top"]["wall"]
            assert group["failed"] == 1
        finally:
            service.stop()

    def test_fingerprints_collapse_churn_names(self, tmp_path,
                                               small_workload):
        lhs, rhs = small_workload
        path = str(tmp_path / "led.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        service = self.serve(path).start()
        try:
            for index in range(3):
                service.submit("create", name=f"scratch_{index}",
                               rows=[(0, [1, 2])]).result()
                service.submit("drop", name=f"scratch_{index}").result()
            report = service.debug_workload()
            assert report["queries"] == 6
            # 3 creates and 3 drops, but only 2 workload shapes.
            assert report["fingerprints"] == 2
        finally:
            service.stop()

    def test_repeated_joins_share_a_fingerprint(self, tmp_path,
                                                small_workload):
        lhs, rhs = small_workload
        path = str(tmp_path / "led.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        service = self.serve(path).start()
        try:
            for __ in range(3):
                service.join("r", "s")
            report = service.debug_workload()
            assert report["queries"] == 3
            assert report["fingerprints"] == 1
            (group,) = report["top"]["wall"]
            assert group["queries"] == 3
        finally:
            service.stop()


class TestLedgerIsObservationOnly:
    def test_results_identical_with_ledger_on_or_off(self, tmp_path,
                                                     small_workload):
        lhs, rhs = small_workload
        path = str(tmp_path / "led.db")
        with SetJoinDatabase.open(path) as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
        answers = []
        for enabled in (True, False):
            service = QueryService(
                path, workers=2, backend="thread", ledger=enabled,
            ).start()
            try:
                pairs, metrics = service.join("r", "s")
                answers.append((
                    sorted(pairs),
                    metrics.signature_comparisons,
                    metrics.replicated_signatures,
                ))
                if enabled:
                    assert service.debug_workload()["queries"] == 1
                else:
                    assert service.debug_workload() is None
            finally:
                service.stop()
        assert answers[0] == answers[1]
