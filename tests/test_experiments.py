"""Tests for the experiment harness — every figure regenerates and its
golden numbers match the paper."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    experiment_ids,
    format_table,
    get_experiment,
)
from repro.errors import ConfigurationError

EXPECTED_IDS = {
    "worked-example", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "calibration", "accuracy", "optimizer", "scaling", "prediction",
    "baselines",
    "ablation-alternation", "ablation-hash-family", "ablation-firing",
    "ablation-portions", "ablation-buffer", "ablation-hybrid",
    "ablation-options", "ablation-modulo", "ablation-skew", "scorecard",
}


class TestRegistry:
    def test_all_expected_experiments_registered(self):
        assert EXPECTED_IDS <= set(experiment_ids())

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")


class TestFormatting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 10}])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "bb" in lines[0]

    def test_to_tsv_and_save(self, tmp_path):
        result = ExperimentResult(
            "demo-save", "t", ["a", "b"], rows=[{"a": 1, "b": 2}, {"a": 3}]
        )
        tsv = result.to_tsv()
        assert tsv.splitlines() == ["a\tb", "1\t2", "3\t"]
        txt_path, tsv_path = result.save(str(tmp_path))
        assert open(txt_path).read().startswith("== demo-save")
        assert open(tsv_path).read() == tsv

    def test_render_includes_sections(self):
        result = ExperimentResult("x", "title", ["c"], rows=[{"c": 1}])
        result.paper_claims = ["claim"]
        result.notes = ["note"]
        text = result.render()
        assert "title" in text
        assert "claim" in text
        assert "note" in text


class TestWorkedExample:
    def test_every_measured_value_matches_paper(self):
        result = get_experiment("worked-example")()
        for row in result.rows:
            if row["paper"] in ("", "n/a"):
                continue
            assert row["measured"] == row["paper"], row


class TestAnalyticalFigures:
    def test_fig4_dcj_single_curve(self):
        result = get_experiment("fig4")()
        assert any("comp_DCJ" in column for column in result.columns)
        for row in result.rows:
            assert 0 <= row["comp_DCJ"] <= 1

    def test_fig5_dcj_below_psj_for_theta_s_above_theta_r(self):
        result = get_experiment("fig5")()
        for row in result.rows:
            if row["theta_S"] >= 100:
                assert row["comp_DCJ"] <= row["comp_PSJ"]

    def test_fig6_dcj_below_lsj(self):
        result = get_experiment("fig6")()
        for row in result.rows:
            assert row["repl_DCJ"] <= row["repl_LSJ"]

    def test_fig7_ordering(self):
        result = get_experiment("fig7")()
        for row in result.rows:
            assert row["repl_DCJ"] < row["repl_LSJ"]

    def test_fig10_frontier_shape(self):
        result = get_experiment("fig10")()
        lam1 = [row["breakeven_θR(λ=1)"] for row in result.rows]
        lam2 = [row["breakeven_θR(λ=2)"] for row in result.rows]
        assert lam1 == sorted(lam1)  # rises with relation size
        assert all(b > a for a, b in zip(lam1, lam2))
        by_size = {row["|R|=|S|"]: row for row in result.rows}
        assert by_size[128_000]["breakeven_θR(λ=2)"] == pytest.approx(50, abs=1)


class TestTestbedExperiments:
    """Smoke runs at tiny scale; shape checks only (timings are noisy)."""

    def test_fig8_runs_and_reports(self):
        result = get_experiment("fig8")(scale=0.02)
        assert len(result.rows) >= 4
        for row in result.rows:
            assert row["t_total_s"] > 0
            assert row["results"] >= 5  # planted pairs found

    def test_fig9_psj_replication_explodes_with_k(self):
        result = get_experiment("fig9")(scale=0.02)
        factors = [row["repl_factor"] for row in result.rows]
        assert factors == sorted(factors)

    def test_calibration_fits(self):
        tiny_grid = ((100, 100, 10, 20), (200, 200, 10, 20))
        result = get_experiment("calibration")(
            grid=tiny_grid, k_values=(4, 16), seed=3
        )
        by_constant = {row["constant"]: row["fitted"] for row in result.rows}
        assert by_constant["c1"] >= 0
        assert by_constant["mean error"] < 0.8

    def test_accuracy_small_grid(self):
        result = get_experiment("accuracy")(
            size=120, theta_r=10, theta_s=20, k=8,
            element_kinds=("uniform",), cardinality_kinds=("constant", "zipf"),
        )
        uniform_constant = [
            row for row in result.rows
            if row["elements"] == "uniform" and row["cardinalities"] == "constant"
        ]
        # On the model's home turf the prediction is tight.
        for row in uniform_constant:
            assert row["comp_err"] < 0.2

    def test_optimizer_demo_decisions(self):
        result = get_experiment("optimizer")()
        for row in result.rows:
            assert row["chosen"] == row["paper_expected"], row

    def test_baselines_lineage(self):
        result = get_experiment("baselines")(size=150)
        by_name = {row["algorithm"]: row for row in result.rows}
        # Everyone agrees on the result size.
        assert len({row["results"] for row in result.rows}) == 1
        # The unnested plan materializes far more intermediate rows than
        # DCJ compares signatures... relative to output, it is the blowup.
        assert by_name["SQL-unnested"]["work"] > by_name["SQL-unnested"]["results"] * 10

    def test_scaling_comparison_counts_grow_quadratically(self):
        result = get_experiment("scaling")(sizes=(100, 200), engine="numpy")
        first, second = result.rows
        # Doubling |R| = |S| roughly quadruples comparisons for both.
        assert 2.5 < second["comparisons_DCJ"] / first["comparisons_DCJ"] < 6
        assert 2.5 < second["comparisons_PSJ"] / first["comparisons_PSJ"] < 6


class TestScorecard:
    def test_checks_mechanism(self):
        result = ExperimentResult("x", "t", ["c"])
        assert result.check("ok", True) is True
        assert result.check("bad", 0) is False
        assert not result.all_checks_pass
        rendered = result.render()
        assert "[PASS] ok" in rendered
        assert "[FAIL] bad" in rendered

    def test_analytical_experiments_all_pass(self):
        """Every deterministic (non-testbed) experiment's claim checks
        must pass — the heart of the reproduction."""
        for experiment_id in ("worked-example", "fig4", "fig5", "fig6",
                              "fig7", "fig10"):
            result = get_experiment(experiment_id)()
            assert result.checks, experiment_id
            failing = [d for d, ok in result.checks if not ok]
            assert not failing, (experiment_id, failing)

    def test_scorecard_skip_slow(self):
        result = get_experiment("scorecard")(skip_slow=True)
        by_name = {row["experiment"]: row for row in result.rows}
        assert by_name["fig8"]["status"] == "skipped (slow)"
        assert by_name["fig4"]["status"] == "PASS"
        # Every non-skipped experiment passed all its checks.
        failures = [row for row in result.rows
                    if row["status"] not in ("PASS", "skipped (slow)")]
        assert not failures, failures


class TestAblations:
    def test_alternation_minimizes_replication(self):
        result = get_experiment("ablation-alternation")(k=16)
        by_pattern = {row["pattern"]: row for row in result.rows}
        assert (
            by_pattern["alternating"]["replicated"]
            <= min(by_pattern["alpha"]["replicated"],
                   by_pattern["beta"]["replicated"])
        )
        # Comparison counts are pattern-independent.
        assert len({row["comparisons"] for row in result.rows}) == 1

    def test_hash_families_comparable(self):
        result = get_experiment("ablation-hash-family")(k=16)
        factors = [row["comp_factor"] for row in result.rows]
        assert max(factors) < 1.5 * min(factors)

    def test_firing_sweep_minimum_near_optimum(self):
        result = get_experiment("ablation-firing")(k=16)
        best = min(result.rows, key=lambda row: row["comp_factor_measured"])
        # q* = 2/3 for λ=2; the best measured b should be in the middle of
        # the sweep, not at the extremes.
        assert 0.35 < best["q_on_R"] < 0.9

    def test_portions_beat_monolithic(self):
        result = get_experiment("ablation-portions")()
        by_layout = {row["layout"]: row for row in result.rows}
        assert by_layout["portioned"]["ok"] is True
        assert by_layout["monolithic"]["ok"] is True
        assert (
            by_layout["portioned"]["t_partition_s"]
            < by_layout["monolithic"]["t_partition_s"]
        )

    def test_buffer_policies_all_correct(self):
        result = get_experiment("ablation-buffer")(k=8)
        assert {row["policy"] for row in result.rows} == {"lru", "clock", "fifo"}

    def test_hybrid_matches_plain_algorithms(self):
        result = get_experiment("ablation-hybrid")()
        results = {row["results"] for row in result.rows}
        assert len(results) == 1  # identical join output everywhere

    def test_skew_checks_pass(self):
        result = get_experiment("ablation-skew")(k=16)
        failing = [d for d, ok in result.checks if not ok]
        assert not failing, failing

    def test_options_resident_reduces_disk_signatures(self):
        result = get_experiment("ablation-options")(k=16)
        by_config = {row["configuration"]: row for row in result.rows}
        assert (
            by_config["resident=k"]["disk_signatures"] == 0
        )
        assert (
            by_config["resident=k/2"]["disk_signatures"]
            < by_config["baseline"]["disk_signatures"]
        )
        assert len({row["results"] for row in result.rows}) == 1

    def test_modulo_lands_between_power_of_two_points(self):
        result = get_experiment("ablation-modulo")()
        by_k = {row["k"]: row for row in result.rows}
        assert (
            by_k[64]["comp_factor"]
            <= by_k[48]["comp_factor"]
            <= by_k[32]["comp_factor"]
        )
        assert (
            by_k[32]["repl_factor"]
            <= by_k[48]["repl_factor"]
            <= by_k[64]["repl_factor"]
        )
