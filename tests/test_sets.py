"""Tests for set-valued tuples and relations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sets import (
    Relation,
    SetTuple,
    containment_pairs_nested_loop,
    elements_from_values,
    hash_value_to_element,
)
from repro.errors import ConfigurationError


class TestSetTuple:
    def test_basic(self):
        row = SetTuple(3, frozenset({1, 2}))
        assert row.tid == 3
        assert row.cardinality == 2

    def test_coerces_to_frozenset(self):
        row = SetTuple(0, {1, 2, 3})
        assert isinstance(row.elements, frozenset)

    def test_negative_tid_rejected(self):
        with pytest.raises(ConfigurationError):
            SetTuple(-1, frozenset())

    def test_subset_predicate(self):
        small = SetTuple(0, frozenset({1, 2}))
        big = SetTuple(1, frozenset({1, 2, 3}))
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)
        assert SetTuple(2, frozenset()).is_subset_of(small)


class TestRelation:
    def test_from_sets_assigns_sequential_tids(self):
        relation = Relation.from_sets([{1}, {2}, {3}], name="R")
        assert relation.tids() == [0, 1, 2]
        assert relation[1].elements == frozenset({2})

    def test_from_mapping(self):
        relation = Relation.from_mapping({5: {1}, 2: {9}})
        assert relation.tids() == [2, 5]

    def test_duplicate_tid_rejected(self):
        relation = Relation.from_sets([{1}])
        with pytest.raises(ConfigurationError):
            relation.add(SetTuple(0, frozenset({2})))

    def test_len_iter_contains(self):
        relation = Relation.from_sets([{1}, {2}])
        assert len(relation) == 2
        assert 1 in relation
        assert 9 not in relation
        assert [row.tid for row in relation] == [0, 1]

    def test_average_and_max_cardinality(self):
        relation = Relation.from_sets([{1}, {1, 2, 3}])
        assert relation.average_cardinality() == 2.0
        assert relation.max_cardinality() == 3
        assert Relation().average_cardinality() == 0.0

    def test_domain_bound(self):
        relation = Relation.from_sets([{1, 100}, {5}])
        assert relation.domain_bound() == 101
        assert Relation().domain_bound() == 1

    def test_sample_cardinality(self):
        relation = Relation.from_sets([{1, 2}] * 50)
        assert relation.sample_cardinality(10, seed=1) == 2.0


class TestHashedElements:
    def test_deterministic(self):
        assert hash_value_to_element("python") == hash_value_to_element("python")

    def test_domain_bound(self):
        for value in ("a", "b", 42, ("t", 1)):
            assert 0 <= hash_value_to_element(value, 1000) < 1000

    def test_elements_from_values(self):
        skills = elements_from_values({"sql", "python", "java"})
        assert len(skills) == 3
        assert skills == elements_from_values({"java", "python", "sql"})


class TestBruteForceJoin:
    def test_paper_example(self, paper_r, paper_s, paper_truth):
        assert containment_pairs_nested_loop(paper_r, paper_s) == paper_truth

    def test_empty_set_joins_everything(self):
        lhs = Relation.from_sets([set()])
        rhs = Relation.from_sets([{1}, set(), {2, 3}])
        assert containment_pairs_nested_loop(lhs, rhs) == {(0, 0), (0, 1), (0, 2)}

    @given(
        st.lists(st.frozensets(st.integers(0, 30), max_size=6), max_size=8),
        st.lists(st.frozensets(st.integers(0, 30), max_size=8), max_size=8),
    )
    def test_result_pairs_really_join(self, r_sets, s_sets):
        lhs = Relation.from_sets(r_sets)
        rhs = Relation.from_sets(s_sets)
        for r_tid, s_tid in containment_pairs_nested_loop(lhs, rhs):
            assert lhs[r_tid].elements <= rhs[s_tid].elements
