"""Head-to-head algorithm benchmarks on one workload.

Not a single paper figure, but the cross-cutting comparison the whole
evaluation builds toward: all five algorithms (DCJ, PSJ, LSJ, SHJ,
signature nested loop) on the same input, checked for identical output.
"""

import pytest

from repro.analysis.simulate import make_partitioner
from repro.core.nested_loop import signature_nested_loop_join
from repro.core.operator import run_disk_join
from repro.core.sets import containment_pairs_nested_loop
from repro.core.shj import shj_join
from repro.data.workloads import uniform_workload

K = 32
THETA_R, THETA_S = 20, 40


@pytest.fixture(scope="module")
def workload():
    lhs, rhs = uniform_workload(
        600, 600, THETA_R, THETA_S, domain_size=20_000, seed=21,
        planted_pairs=5,
    ).materialize()
    return lhs, rhs, containment_pairs_nested_loop(lhs, rhs)


@pytest.mark.parametrize("algorithm", ["DCJ", "PSJ", "LSJ"])
def test_bench_disk_algorithm(benchmark, workload, algorithm):
    lhs, rhs, expected = workload

    def run():
        partitioner = make_partitioner(algorithm, K, THETA_R, THETA_S, seed=2)
        return run_disk_join(lhs, rhs, partitioner)

    result, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result == expected
    benchmark.extra_info["comp_factor"] = round(metrics.comparison_factor, 4)
    benchmark.extra_info["repl_factor"] = round(metrics.replication_factor, 4)


def test_bench_shj_main_memory(benchmark, workload):
    lhs, rhs, expected = workload
    result, __ = benchmark.pedantic(
        lambda: shj_join(lhs, rhs, signature_bits=10), rounds=1, iterations=1
    )
    assert result == expected


def test_bench_signature_nested_loop(benchmark, workload):
    lhs, rhs, expected = workload
    result, __ = benchmark.pedantic(
        lambda: signature_nested_loop_join(lhs, rhs), rounds=1, iterations=1
    )
    assert result == expected
