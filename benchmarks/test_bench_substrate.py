"""Microbenchmarks for the storage substrate and signature machinery.

These are not paper artifacts; they characterize the building blocks so
regressions in the substrate are visible independently of the end-to-end
figures.
"""

import random

import pytest

from repro.core.hashing import BitstringHashFamily
from repro.core.signatures import (
    bitwise_included,
    included_in_any_matrix,
    pack_signatures,
    signature_of,
)
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.pager import InMemoryDiskManager
from repro.storage.partition_store import PartitionStore


@pytest.fixture()
def sample_sets():
    rng = random.Random(5)
    return [frozenset(rng.sample(range(10_000), 50)) for __ in range(200)]


def test_bench_signature_computation(benchmark, sample_sets):
    def run():
        return [signature_of(elements, 160) for elements in sample_sets]

    signatures = benchmark(run)
    assert len(signatures) == len(sample_sets)


def test_bench_signature_comparison_python(benchmark, sample_sets):
    signatures = [signature_of(elements, 160) for elements in sample_sets]

    def run():
        hits = 0
        for sig_r in signatures:
            for sig_s in signatures:
                if bitwise_included(sig_r, sig_s):
                    hits += 1
        return hits

    hits = benchmark(run)
    assert hits >= len(signatures)  # reflexive matches at least


def test_bench_signature_comparison_numpy(benchmark, sample_sets):
    signatures = [signature_of(elements, 160) for elements in sample_sets]
    packed = pack_signatures(signatures, 160)

    def run():
        hits = 0
        for sig_r in signatures:
            hits += int(included_in_any_matrix(sig_r, packed, 160).sum())
        return hits

    hits = benchmark(run)
    assert hits >= len(signatures)


def test_bench_hash_family_evaluation(benchmark, sample_sets):
    family = BitstringHashFamily(124, num_functions=7)

    def run():
        return [family.evaluate(elements) for elements in sample_sets]

    masks = benchmark(run)
    assert all(0 <= mask < 2**7 for mask in masks)


def test_bench_btree_insert(benchmark):
    def run():
        pool = BufferPool(InMemoryDiskManager(4096), capacity=128)
        tree = BTree.create(pool)
        for value in range(2000):
            tree.insert(value.to_bytes(8, "big"), bytes(24))
        return tree

    tree = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(tree) == 2000


def test_bench_btree_scan(benchmark):
    pool = BufferPool(InMemoryDiskManager(4096), capacity=128)
    tree = BTree.create(pool)
    for value in range(2000):
        tree.insert(value.to_bytes(8, "big"), bytes(24))

    count = benchmark(lambda: sum(1 for __ in tree.items()))
    assert count == 2000


def test_bench_partition_store_append_scan(benchmark):
    def run():
        pool = BufferPool(InMemoryDiskManager(4096), capacity=128)
        store = PartitionStore(pool, signature_bytes=20, num_partitions=16)
        for value in range(5000):
            store.append(value % 16, value, value)
        store.seal()
        return sum(1 for p in range(16) for __ in store.scan_partition(p))

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert total == 5000
