"""Benchmarks for the database shell: stored-relation joins and loading."""

import pytest

from repro.data.workloads import uniform_workload
from repro.database import SetJoinDatabase


@pytest.fixture(scope="module")
def relations():
    return uniform_workload(
        400, 400, 15, 30, domain_size=20_000, seed=29, planted_pairs=4
    ).materialize()


def test_bench_database_load(benchmark, relations):
    lhs, rhs = relations

    def load():
        with SetJoinDatabase.open() as db:
            db.create_relation("r", lhs)
            db.create_relation("s", rhs)
            return db.relation_size("r") + db.relation_size("s")

    total = benchmark.pedantic(load, rounds=1, iterations=1)
    assert total == len(lhs) + len(rhs)


def test_bench_database_join(benchmark, relations):
    lhs, rhs = relations
    with SetJoinDatabase.open() as db:
        db.create_relation("r", lhs)
        db.create_relation("s", rhs)

        pairs, metrics = benchmark.pedantic(
            lambda: db.join("r", "s"), rounds=1, iterations=1
        )
        assert metrics.result_size >= 4


def test_bench_database_repeated_joins(benchmark, relations):
    """Steady-state joins over a warm database (no reload between runs)."""
    lhs, rhs = relations
    with SetJoinDatabase.open() as db:
        db.create_relation("r", lhs)
        db.create_relation("s", rhs)
        db.join("r", "s", algorithm="PSJ", num_partitions=16)  # warm up

        def run():
            return db.join("r", "s", algorithm="PSJ", num_partitions=16)

        pairs, __ = benchmark.pedantic(run, rounds=3, iterations=1)
        assert len(pairs) >= 4
