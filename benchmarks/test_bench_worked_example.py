"""Benchmark for the Section 2 worked example (Tables 1-4, Figures 1-2)."""

from repro.experiments import get_experiment


def test_bench_worked_example(benchmark):
    result = benchmark(get_experiment("worked-example"))
    rows = {(row["artifact"], row["quantity"]): row for row in result.rows}
    assert rows[("Figure 2", "DCJ comparisons")]["measured"] == 8
    assert rows[("Figure 2", "DCJ replicated")]["measured"] == 14
    assert rows[("Figure 1", "PSJ comparisons")]["measured"] == 9
    assert rows[("Figure 1", "PSJ replicated")]["measured"] == 16
