"""Benchmarks regenerating the analytical figures (4, 5, 6, 7, 10).

These artifacts are pure model evaluations; each benchmark times the full
figure regeneration and asserts the paper's qualitative claims on the
produced series.
"""

import pytest

from repro.experiments import get_experiment


class TestFig4:
    def test_bench_fig4(self, benchmark):
        result = benchmark(get_experiment("fig4"))
        rows = {row["k"]: row for row in result.rows}
        # DCJ ≈ 0.13 at k=128 while PSJ(θ=1000) ≈ 1 — the headline gap.
        assert rows[128]["comp_DCJ"] == pytest.approx(0.13, abs=0.01)
        assert rows[128]["comp_PSJ(θ=1000)"] > 0.99
        # PSJ wins for tiny sets at large k.
        assert rows[1024]["comp_PSJ(θ=10)"] < rows[1024]["comp_DCJ"]


class TestFig5:
    def test_bench_fig5(self, benchmark):
        result = benchmark(get_experiment("fig5"))
        for row in result.rows:
            if row["theta_S"] >= 100:  # θ_S ≥ θ_R regime
                assert row["comp_DCJ"] <= row["comp_PSJ"]


class TestFig6:
    def test_bench_fig6(self, benchmark):
        result = benchmark(get_experiment("fig6"))
        rows = {row["k"]: row for row in result.rows}
        # PSJ's replication explodes for large sets; DCJ stays modest.
        assert rows[128]["repl_PSJ(θ=1000)"] == pytest.approx(64.5, abs=0.2)
        assert rows[128]["repl_PSJ(θ=1000)"] / rows[128]["repl_DCJ"] == pytest.approx(
            16.7, abs=0.3
        )
        assert rows[128]["repl_DCJ"] < rows[128]["repl_LSJ"]


class TestFig7:
    def test_bench_fig7(self, benchmark):
        result = benchmark(get_experiment("fig7"))
        # DCJ approaches LSJ as λ grows but never catches up.
        gaps = [row["repl_LSJ"] - row["repl_DCJ"] for row in result.rows]
        assert all(gap > 0 for gap in gaps)
        assert gaps[-1] < gaps[0] or gaps[-1] < max(gaps)


class TestFig10:
    def test_bench_fig10(self, benchmark):
        result = benchmark(get_experiment("fig10"))
        by_size = {row["|R|=|S|"]: row for row in result.rows}
        # The paper's quoted breakeven point, reproduced from its constants.
        assert by_size[128_000]["breakeven_θR(λ=2)"] == pytest.approx(50, abs=1)
        lam1 = [row["breakeven_θR(λ=1)"] for row in result.rows]
        assert lam1 == sorted(lam1)
