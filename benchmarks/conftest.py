"""Shared benchmark fixtures.

Benchmarks mirror the paper's evaluation artifacts: one benchmark per
figure/table regenerates that artifact's data (at reduced scale where the
artifact needs the full disk testbed) and asserts its qualitative shape.
Run with ``pytest benchmarks/ --benchmark-only``.

Environment knobs:

* ``SETJOINS_BENCH_SCALE`` — relation-size scale for the case-study
  figures (default 0.05; the paper's size is 1.0).
"""

from __future__ import annotations

import os

import pytest

from repro.data.workloads import case_study

BENCH_SCALE = float(os.environ.get("SETJOINS_BENCH_SCALE", "0.05"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def case_study_relations():
    """The Section 5 workload at benchmark scale, generated once."""
    return case_study(scale=BENCH_SCALE, seed=7).materialize()
