"""Benchmarks for the time-model calibration (Section 5).

Two parts: collecting the measured data points (runs real joins) and the
least-squares fit itself.  The fitted model must predict its own training
points with an error comparable to the paper's 15.4%.
"""

import pytest

from repro.analysis.timemodel import calibrate
from repro.experiments.calibration import collect_samples

TINY_GRID = (
    (150, 150, 10, 20),
    (300, 300, 10, 20),
    (150, 300, 20, 40),
)


@pytest.fixture(scope="module")
def samples():
    return collect_samples(grid=TINY_GRID, k_values=(4, 16, 64), seed=11)


def test_bench_collect_calibration_points(benchmark):
    measured = benchmark.pedantic(
        lambda: collect_samples(grid=TINY_GRID[:1], k_values=(4, 16), seed=11),
        rounds=1, iterations=1,
    )
    assert len(measured) == 4  # 1 workload x 2 algorithms x 2 k


def test_bench_least_squares_fit(benchmark, samples):
    model = benchmark(lambda: calibrate(samples))
    error = model.mean_prediction_error(samples)
    assert error < 0.5
    benchmark.extra_info["c1"] = model.c1
    benchmark.extra_info["c2"] = model.c2
    benchmark.extra_info["c3"] = model.c3
    benchmark.extra_info["mean_error"] = round(error, 4)
