"""Benchmark baselines: canonical-workload snapshots and regression checks.

``python benchmarks/baseline.py`` runs a small canonical workload suite
(uniform workloads through the public join API — optimizer-chosen, forced
DCJ, forced PSJ, and a parallel DCJ run) and writes a ``BENCH_joins.json``
snapshot: per workload, the wall time, the paper's x/y counts, page I/O
and result sizes.

``--check BASELINE`` compares the fresh run against a stored snapshot:

* deterministic counters (signature comparisons ``x``, replicated
  signatures ``y``, candidates, results, page reads/writes) must match
  **exactly** — any drift means the join's accounting changed;
* wall time may regress at most ``--time-threshold`` (default 25%) per
  workload — unless ``--counters-only``, which skips the timing check
  (CI compares against the committed machine-agnostic seed baseline,
  where another machine's absolute times are meaningless).

``--history BENCH_history.jsonl`` additionally appends every run's
snapshot as one JSON line, building a local time series.  When a check
runs with history present, wall times are *also* compared against the
rolling median of the last ``--rolling-window`` compatible runs — a
single-run baseline is one noisy sample, while the rolling median
absorbs scheduler jitter and only trips on sustained slowdowns.

Exit status: 0 on pass, 1 on regression — so it wires directly into
``make bench`` and the ``explain-regression`` CI job.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __package__ in (None, ""):  # executed as a script from a checkout
    _SRC = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

SCHEMA_VERSION = 1

#: Snapshot keys that must match a baseline exactly (all deterministic:
#: same seeds → same partitions → same comparisons and page traffic).
COUNTER_KEYS = (
    "signature_comparisons",
    "replicated_signatures",
    "candidates",
    "results",
    "page_reads",
    "page_writes",
)


def canonical_workloads(scale: float = 1.0) -> list[dict]:
    """The fixed workload suite a snapshot covers.

    All inputs are seeded uniform workloads (deterministic across
    machines); ``scale`` shrinks the relation sizes for quick checks.
    """
    r_size = max(int(240 * scale), 20)
    s_size = max(int(360 * scale), 30)
    # Small cardinalities over a tight domain so genuine containments
    # exist — the snapshot then covers verification and result counts,
    # not just the signature-filter path.
    base = {
        "r_size": r_size,
        "s_size": s_size,
        "theta_r": 4,
        "theta_s": 24,
        "domain_size": 150,
        "seed": 11,
    }
    return [
        dict(base, name="auto_uniform", algorithm="auto", k=None),
        dict(base, name="dcj_k16", algorithm="DCJ", k=16),
        dict(base, name="psj_k16", algorithm="PSJ", k=16),
        dict(base, name="dcj_k16_workers2", algorithm="DCJ", k=16,
             workers=2, backend="serial"),
    ]


def run_workload(spec: dict, tracer=None) -> dict:
    """Run one canonical workload; returns its snapshot record."""
    from repro.core.api import containment_join
    from repro.data.workloads import uniform_workload

    lhs, rhs = uniform_workload(
        r_size=spec["r_size"],
        s_size=spec["s_size"],
        theta_r=spec["theta_r"],
        theta_s=spec["theta_s"],
        domain_size=spec["domain_size"],
        seed=spec["seed"],
    ).materialize()
    started = time.perf_counter()
    pairs, metrics = containment_join(
        lhs, rhs,
        algorithm=spec["algorithm"],
        num_partitions=spec["k"],
        workers=spec.get("workers", 1),
        backend=spec.get("backend", "serial"),
        tracer=tracer,
    )
    wall = time.perf_counter() - started
    return {
        "algorithm": metrics.algorithm,
        "k": metrics.num_partitions,
        "r_size": metrics.r_size,
        "s_size": metrics.s_size,
        "wall_seconds": wall,
        "signature_comparisons": metrics.signature_comparisons,
        "replicated_signatures": metrics.replicated_signatures,
        "candidates": metrics.candidates,
        "results": len(pairs),
        "page_reads": metrics.total_page_reads,
        "page_writes": metrics.total_page_writes,
        "comparison_factor": metrics.comparison_factor,
        "replication_factor": metrics.replication_factor,
    }


def run_suite(scale: float = 1.0, trace_path: str | None = None) -> dict:
    """Run every canonical workload; returns the snapshot document.

    ``trace_path`` additionally records a span trace of the first
    workload's join (the CI job uploads it as an inspectable artifact).
    """
    workloads: dict = {}
    for index, spec in enumerate(canonical_workloads(scale)):
        tracer = None
        if trace_path is not None and index == 0:
            from repro.obs import Tracer

            tracer = Tracer()
        workloads[spec["name"]] = run_workload(spec, tracer=tracer)
        if tracer is not None:
            from repro.obs import write_trace_jsonl

            write_trace_jsonl(tracer, trace_path)
    return {
        "schema": SCHEMA_VERSION,
        "scale": scale,
        "workloads": workloads,
    }


def write_baseline(snapshot: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def append_history(snapshot: dict, path: str) -> None:
    """Append one snapshot as a JSON line to the rolling history file."""
    record = dict(snapshot)
    record["recorded_at"] = time.time()
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_history(path: str) -> list[dict]:
    """Load every snapshot from a history file (oldest first)."""
    if not os.path.exists(path):
        return []
    records: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def rolling_medians(
    history: list[dict], current: dict, window: int = 5
) -> dict[str, float]:
    """Per-workload median wall time over the last ``window`` runs.

    Only snapshots compatible with ``current`` (same schema and scale)
    contribute; an empty dict means there is no usable history yet.
    """
    compatible = [
        record for record in history
        if record.get("schema") == current.get("schema")
        and record.get("scale") == current.get("scale")
    ][-window:]
    medians: dict[str, float] = {}
    names = {
        name
        for record in compatible
        for name in record.get("workloads", {})
    }
    for name in names:
        samples = sorted(
            record["workloads"][name]["wall_seconds"]
            for record in compatible
            if name in record.get("workloads", {})
        )
        if not samples:
            continue
        mid = len(samples) // 2
        if len(samples) % 2:
            medians[name] = samples[mid]
        else:
            medians[name] = (samples[mid - 1] + samples[mid]) / 2.0
    return medians


def check_regression(
    current: dict,
    baseline: dict,
    time_threshold: float = 0.25,
    counters_only: bool = False,
    history: list[dict] | None = None,
    rolling_window: int = 5,
) -> list[str]:
    """Compare a fresh snapshot against a stored baseline.

    Returns a list of human-readable failures (empty = pass).  Counters
    are compared exactly; wall time fails when the current run is more
    than ``time_threshold`` (fraction) slower than the baseline.  When
    ``history`` is given, wall time is also checked against the rolling
    median of the last ``rolling_window`` compatible snapshots — the
    median is a far less noisy reference than any single stored run.
    """
    failures: list[str] = []
    if current.get("schema") != baseline.get("schema"):
        failures.append(
            f"schema mismatch: current={current.get('schema')} "
            f"baseline={baseline.get('schema')}"
        )
        return failures
    if current.get("scale") != baseline.get("scale"):
        failures.append(
            f"scale mismatch: current={current.get('scale')} "
            f"baseline={baseline.get('scale')} (rerun with matching --scale)"
        )
        return failures
    for name, expected in sorted(baseline.get("workloads", {}).items()):
        actual = current.get("workloads", {}).get(name)
        if actual is None:
            failures.append(f"{name}: missing from current run")
            continue
        for key in COUNTER_KEYS:
            if actual.get(key) != expected.get(key):
                failures.append(
                    f"{name}: {key} changed: expected {expected.get(key)}, "
                    f"got {actual.get(key)}"
                )
        if counters_only:
            continue
        allowed = expected["wall_seconds"] * (1.0 + time_threshold)
        if actual["wall_seconds"] > allowed:
            failures.append(
                f"{name}: wall time regressed: {actual['wall_seconds']:.4f}s "
                f"vs baseline {expected['wall_seconds']:.4f}s "
                f"(threshold {time_threshold:.0%})"
            )
    if history and not counters_only:
        medians = rolling_medians(history, current, window=rolling_window)
        for name, median in sorted(medians.items()):
            actual = current.get("workloads", {}).get(name)
            if actual is None:
                continue
            allowed = median * (1.0 + time_threshold)
            if actual["wall_seconds"] > allowed:
                failures.append(
                    f"{name}: wall time above rolling median: "
                    f"{actual['wall_seconds']:.4f}s vs median "
                    f"{median:.4f}s of last {rolling_window} runs "
                    f"(threshold {time_threshold:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the canonical join workloads and snapshot/check "
        "their performance counters.",
    )
    parser.add_argument(
        "--out", metavar="PATH", default="BENCH_joins.json",
        help="write the snapshot here (default BENCH_joins.json)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare the fresh run against this stored snapshot; "
        "exit 1 on regression",
    )
    parser.add_argument(
        "--time-threshold", type=float, default=0.25,
        help="allowed fractional wall-time regression (default 0.25)",
    )
    parser.add_argument(
        "--counters-only", action="store_true",
        help="compare only deterministic counters, not wall time "
        "(for cross-machine baselines)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload size scale (default 1.0; must match the baseline)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="also write a span trace of the first workload (JSON Lines)",
    )
    parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="sample the suite with the stack profiler and write the "
        "hot-path report here",
    )
    parser.add_argument(
        "--profile-repeats", type=int, default=5,
        help="extra suite repetitions while profiling, so short suites "
        "still accumulate enough samples (default 5)",
    )
    parser.add_argument(
        "--history", metavar="PATH", default=None,
        help="append this run to a JSONL history file and, with --check, "
        "also compare wall time against the rolling median of prior runs",
    )
    parser.add_argument(
        "--rolling-window", type=int, default=5,
        help="number of recent history runs the rolling median covers "
        "(default 5)",
    )
    arguments = parser.parse_args(argv)

    profiler = None
    if arguments.profile:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler()
        profiler.start()
    snapshot = run_suite(scale=arguments.scale, trace_path=arguments.trace)
    if profiler is not None:
        # The canonical suite runs in about a second; repeat it so the
        # sampler sees enough of the hot loops to rank them stably.
        for __ in range(max(arguments.profile_repeats, 0)):
            run_suite(scale=arguments.scale)
        profiler.stop()
        report = profiler.report()
        with open(arguments.profile, "w") as handle:
            handle.write(profiler.render() + "\n")
        print(
            f"profile: {report['attributed']} samples attributed "
            f"({report['unknown_share'] * 100:.1f}% unknown, "
            f"overhead {report['overhead'] * 100:.2f}%) -> "
            f"{arguments.profile}"
        )
    write_baseline(snapshot, arguments.out)
    prior_runs: list[dict] = []
    if arguments.history:
        # Load before appending so the fresh run is judged against its
        # predecessors, not against itself.
        prior_runs = load_history(arguments.history)
        append_history(snapshot, arguments.history)
        print(
            f"history: run {len(prior_runs) + 1} appended to "
            f"{arguments.history}"
        )
    for name, record in sorted(snapshot["workloads"].items()):
        print(
            f"{name}: {record['algorithm']} k={record['k']} "
            f"x={record['signature_comparisons']} "
            f"y={record['replicated_signatures']} "
            f"results={record['results']} "
            f"{record['wall_seconds']:.4f}s"
        )
    print(f"snapshot written to {arguments.out}")
    if arguments.trace:
        print(f"trace written to {arguments.trace}")

    if arguments.check:
        failures = check_regression(
            snapshot,
            load_baseline(arguments.check),
            time_threshold=arguments.time_threshold,
            counters_only=arguments.counters_only,
            history=prior_runs,
            rolling_window=arguments.rolling_window,
        )
        if failures:
            print(f"REGRESSION vs {arguments.check}:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        mode = "counters" if arguments.counters_only else "counters + time"
        print(f"no regression vs {arguments.check} ({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
