"""Benchmark for the partition-parallel join: speedup vs worker count.

Times the full disk-based join for workers in {1, 2, 4} under DCJ and
PSJ on the case-study workload, and regenerates the ``parallel``
experiment's speedup curve.  Result sets and the paper's x/y accounting
must be identical at every worker count; the speedup assertions are
guarded on the machine's core count since fork overhead makes parallel
runs *slower* on a single-core box.
"""

import os
import tempfile

import pytest

from repro.analysis.simulate import make_partitioner
from repro.core.operator import run_disk_join
from repro.experiments.parallel_scaling import run as parallel_experiment

WORKER_COUNTS = (1, 2, 4)
CORES = os.cpu_count() or 1


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("algorithm", ["DCJ", "PSJ"])
def test_bench_parallel_join(benchmark, case_study_relations, tmp_path,
                             algorithm, workers):
    lhs, rhs = case_study_relations

    def run():
        partitioner = make_partitioner(algorithm, 32, 50, 100, seed=7)
        return run_disk_join(
            lhs, rhs, partitioner,
            path=str(tmp_path / f"{algorithm}-{workers}.db"),
            workers=workers, backend="process",
        )

    result, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.result_size >= 5  # planted pairs all found
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["t_join_s"] = round(metrics.joining.seconds, 4)
    benchmark.extra_info["comparisons"] = metrics.signature_comparisons
    benchmark.extra_info["cores"] = CORES


def test_parallel_speedup_curve(bench_scale):
    """The experiment's invariance checks must pass everywhere; the
    join-phase speedup target only binds where cores exist to use."""
    result = parallel_experiment(scale=bench_scale)
    failed = [name for name, ok in result.checks if not ok]
    assert not failed, f"invariance checks failed: {failed}"

    by_key = {(row["algorithm"], row["workers"]): row for row in result.rows}
    for algorithm in ("DCJ", "PSJ"):
        assert by_key[(algorithm, 1)]["results"] == \
            by_key[(algorithm, 4)]["results"]

    if CORES >= 4:
        # The acceptance target: >1.5x join-phase speedup at 4 workers
        # for DCJ at paper scale.
        assert by_key[("DCJ", 4)]["speedup"] > 1.5
    elif CORES >= 2:
        assert by_key[("DCJ", 2)]["speedup"] > 1.1
    # Single-core machines: the curve is recorded, nothing to assert.
