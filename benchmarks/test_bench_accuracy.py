"""Benchmark for the Section 4 model-accuracy study.

Times the partitioning simulation over a reduced distribution grid and
asserts the paper's claim: predictions within ~15% on well-behaved
distributions.
"""

from repro.analysis.simulate import simulate_factors
from repro.data.workloads import accuracy_workload


def run_cells():
    observations = []
    for element_kind in ("uniform", "zipf", "normal"):
        for cardinality_kind in ("constant", "uniform"):
            workload = accuracy_workload(
                element_kind, cardinality_kind,
                size=300, theta_r=15, theta_s=30, seed=5,
            )
            lhs, rhs = workload.materialize()
            for algorithm in ("DCJ", "PSJ"):
                observations.append(
                    simulate_factors(
                        algorithm, lhs, rhs, 16, seed=5,
                        theta_r=15, theta_s=30,
                    )
                )
    return observations


def test_bench_accuracy_grid(benchmark):
    observations = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    errors = [
        max(observation.comparison_error, observation.replication_error)
        for observation in observations
    ]
    # Mean prediction error in the paper's ballpark (≤15%) on this grid.
    assert sum(errors) / len(errors) < 0.15
