"""Benchmarks for the extension features.

Covers the paper's closing remarks: modulo folding for arbitrary k
(Section 5), the Section 6 implementation options, and the intersection
join (Section 7 future work).
"""

import pytest

from repro.core.intersection import (
    intersection_join,
    intersection_join_nested_loop,
)
from repro.core.modulo import dcj_with_any_k
from repro.core.operator import run_disk_join
from repro.core.psj import PSJPartitioner
from repro.data.workloads import uniform_workload


@pytest.fixture(scope="module")
def workload():
    return uniform_workload(
        500, 500, 15, 30, domain_size=20_000, seed=31, planted_pairs=4
    ).materialize()


@pytest.mark.parametrize("k", [32, 48, 64])
def test_bench_dcj_modulo_folding(benchmark, workload, k):
    lhs, rhs = workload

    def run():
        return run_disk_join(lhs, rhs, dcj_with_any_k(k, 15, 30))

    result, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.num_partitions == k
    assert metrics.result_size >= 4
    benchmark.extra_info["comp_factor"] = round(metrics.comparison_factor, 4)


@pytest.mark.parametrize(
    "label,options",
    [
        ("baseline", {}),
        ("resident", {"resident_partitions": 16}),
        ("spill", {"spill_candidates": True}),
    ],
)
def test_bench_operator_options(benchmark, workload, label, options):
    lhs, rhs = workload

    def run():
        return run_disk_join(lhs, rhs, PSJPartitioner(32, seed=3), **options)

    result, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.result_size >= 4


def test_bench_intersection_join(benchmark, workload):
    lhs, rhs = workload
    result, metrics = benchmark.pedantic(
        lambda: intersection_join(lhs, rhs, threshold=2, num_partitions=64),
        rounds=1, iterations=1,
    )
    assert metrics.result_size == len(result)


def test_bench_intersection_nested_loop(benchmark, workload):
    lhs, rhs = workload
    fast, __ = intersection_join(lhs, rhs, threshold=2, num_partitions=64)
    slow, __ = benchmark.pedantic(
        lambda: intersection_join_nested_loop(lhs, rhs, threshold=2),
        rounds=1, iterations=1,
    )
    assert slow == fast
