"""Benchmarks on the two domain workloads from the paper's introduction.

* text corpus — tiny queries against documents (small θ_R, the regime
  where element-value partitioning stays competitive);
* biochemical — pathway signatures against near-genome-sized expression
  snapshots ("the fruit fly has around 14000 genes, 70-80% of which are
  active at any time"), the headline regime where PSJ's per-element
  replication collapses and DCJ wins.
"""

import pytest

from repro.analysis.simulate import make_partitioner
from repro.core.operator import run_disk_join
from repro.data.workloads import biochemical_workload, text_corpus_workload

K = 32


@pytest.fixture(scope="module")
def text_corpus():
    workload = text_corpus_workload(
        num_queries=150, num_documents=200, vocabulary=10_000, seed=3
    )
    lhs, rhs = workload.materialize()
    return lhs, rhs, workload


@pytest.fixture(scope="module")
def biochemical():
    workload = biochemical_workload(
        num_signatures=80, num_snapshots=40, num_genes=2_000, seed=3
    )
    lhs, rhs = workload.materialize()
    return lhs, rhs, workload


@pytest.mark.parametrize("algorithm", ["DCJ", "PSJ"])
def test_bench_text_corpus(benchmark, text_corpus, algorithm):
    lhs, rhs, workload = text_corpus
    partitioner = make_partitioner(
        algorithm, K, workload.theta_r, workload.theta_s, seed=3
    )
    __, metrics = benchmark.pedantic(
        lambda: run_disk_join(lhs, rhs, partitioner), rounds=1, iterations=1
    )
    assert metrics.result_size >= 5
    benchmark.extra_info["repl_factor"] = round(metrics.replication_factor, 2)


@pytest.mark.parametrize("algorithm", ["DCJ", "PSJ"])
def test_bench_biochemical(benchmark, biochemical, algorithm):
    lhs, rhs, workload = biochemical
    partitioner = make_partitioner(
        algorithm, K, workload.theta_r, workload.theta_s, seed=3
    )
    __, metrics = benchmark.pedantic(
        lambda: run_disk_join(lhs, rhs, partitioner), rounds=1, iterations=1
    )
    assert metrics.result_size >= 5
    benchmark.extra_info["repl_factor"] = round(metrics.replication_factor, 2)


def test_biochemical_psj_replication_collapse(biochemical):
    """The paper's headline: "the algorithm suggested in [RPNK00] is
    ineffective for such data sets" — on near-genome snapshots PSJ
    replicates each snapshot to essentially every partition."""
    lhs, rhs, workload = biochemical
    psj = make_partitioner("PSJ", K, workload.theta_r, workload.theta_s, 3)
    dcj = make_partitioner("DCJ", K, workload.theta_r, workload.theta_s, 3)
    __, psj_metrics = run_disk_join(lhs, rhs, psj)
    __, dcj_metrics = run_disk_join(lhs, rhs, dcj)
    s_share = len(rhs) / (len(lhs) + len(rhs))
    # PSJ stores each S-tuple in ~all K partitions and prunes nothing.
    assert psj_metrics.replication_factor > 0.9 * (s_share * K)
    assert psj_metrics.comparison_factor > 0.99
    # DCJ replicates less — though at this extreme λ (≈30) its margin is
    # thinner than at the paper's λ = 2 (cf. the λ-flip note in
    # EXPERIMENTS.md); the decisive DCJ advantage here is pruning room as
    # k grows, which PSJ simply does not have (comp stuck at 1.0).
    assert dcj_metrics.replication_factor < psj_metrics.replication_factor
