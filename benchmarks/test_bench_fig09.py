"""Benchmark for Figure 9: PSJ execution time vs partition count.

Times one full disk-based PSJ join per k on the case-study workload and
asserts the figure's story: PSJ's replication (I/O) grows so fast with k
that increasing the partition count does not pay off, and PSJ moves far
more partition data than DCJ at every matching k.
"""

import pytest

from repro.analysis.simulate import make_partitioner
from repro.core.operator import run_disk_join

K_VALUES = (2, 8, 32, 128)


@pytest.mark.parametrize("k", K_VALUES)
def test_bench_psj_join_vs_k(benchmark, case_study_relations, k):
    lhs, rhs = case_study_relations

    def run():
        partitioner = make_partitioner("PSJ", k, 50, 100, seed=7)
        return run_disk_join(lhs, rhs, partitioner, engine="python",
                             buffer_pages=256)

    result, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.result_size >= 5
    benchmark.extra_info["comparisons"] = metrics.signature_comparisons
    benchmark.extra_info["replicated"] = metrics.replicated_signatures


def test_fig9_psj_replication_dominates(case_study_relations):
    """PSJ replicates far more than DCJ at every k (the I/O-bound story),
    and its comparison factor barely improves until k is large."""
    lhs, rhs = case_study_relations
    for k in (8, 32, 128):
        psj = make_partitioner("PSJ", k, 50, 100, seed=7)
        dcj = make_partitioner("DCJ", k, 50, 100, seed=7)
        __, psj_metrics = run_disk_join(lhs, rhs, psj, engine="numpy")
        __, dcj_metrics = run_disk_join(lhs, rhs, dcj, engine="numpy")
        assert psj_metrics.replicated_signatures > 2 * dcj_metrics.replicated_signatures
    # comp_PSJ ≈ 0.95 at k=32 (paper): barely below 1.
    psj = make_partitioner("PSJ", 32, 50, 100, seed=7)
    __, metrics = run_disk_join(lhs, rhs, psj, engine="numpy")
    assert metrics.comparison_factor > 0.9
