"""Benchmark for Figure 8: DCJ execution time vs partition count.

Times one full disk-based DCJ join per k on the case-study workload and
asserts the figure's shape: an interior k beats both extremes and the
comparison count falls monotonically while replication rises.
"""

import pytest

from repro.analysis.simulate import make_partitioner
from repro.core.operator import run_disk_join

K_VALUES = (2, 8, 32, 128)


@pytest.mark.parametrize("k", K_VALUES)
def test_bench_dcj_join_vs_k(benchmark, case_study_relations, k):
    lhs, rhs = case_study_relations

    def run():
        partitioner = make_partitioner("DCJ", k, 50, 100, seed=7)
        return run_disk_join(lhs, rhs, partitioner, engine="python",
                             buffer_pages=256)

    result, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.result_size >= 5  # planted pairs all found
    benchmark.extra_info["comparisons"] = metrics.signature_comparisons
    benchmark.extra_info["replicated"] = metrics.replicated_signatures
    benchmark.extra_info["comp_factor"] = round(metrics.comparison_factor, 4)
    benchmark.extra_info["repl_factor"] = round(metrics.replication_factor, 4)


def test_fig8_shape(case_study_relations):
    """Comparisons fall and replication rises monotonically in k."""
    lhs, rhs = case_study_relations
    comparisons, replicated = [], []
    for k in K_VALUES:
        partitioner = make_partitioner("DCJ", k, 50, 100, seed=7)
        __, metrics = run_disk_join(lhs, rhs, partitioner, engine="numpy")
        comparisons.append(metrics.signature_comparisons)
        replicated.append(metrics.replicated_signatures)
    assert comparisons == sorted(comparisons, reverse=True)
    assert replicated == sorted(replicated)
