"""Exception hierarchy for the set-containment-join library.

All library-specific errors derive from :class:`SetJoinError` so callers can
catch one base class.  Substrate layers (storage, data generation, analysis)
have their own subclasses to make failure origins obvious in tracebacks.
"""

from __future__ import annotations


class SetJoinError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(SetJoinError):
    """Invalid parameters supplied to an algorithm or component."""


class StorageError(SetJoinError):
    """Base class for storage-substrate failures."""


class PageError(StorageError):
    """Malformed page access: bad page id, overflow, or corrupt header."""


class CorruptPageError(PageError):
    """A page failed its checksum: torn write, bit rot, or overwrite.

    Raised by the disk managers on read instead of decoding garbage, so a
    corrupted base relation can never silently produce wrong join results.
    """


class WALError(StorageError):
    """Write-ahead-log misuse or an unrecoverable log state."""


class BufferPoolError(StorageError):
    """Buffer-pool misuse, e.g. all frames pinned or double unpin."""


class BTreeError(StorageError):
    """B-tree structural errors or oversized entries."""


class SerializationError(StorageError):
    """Record could not be encoded or decoded."""


class ParallelExecutionError(SetJoinError):
    """A parallel join worker failed, timed out, or died.

    Raised by :mod:`repro.parallel` instead of leaking backend-specific
    exceptions (``BrokenProcessPool``, ``TimeoutError``) so callers can
    handle worker failures with the same ``except SetJoinError`` they
    already use for serial joins.
    """


class MemoryLimitExceeded(SetJoinError):
    """A main-memory algorithm exceeded its configured memory budget.

    Raised by SHJ (the Helmer/Moerkotte main-memory join) when the input
    relations do not fit in the configured budget -- the very limitation
    that motivates the disk-based LSJ and DCJ algorithms.
    """


class CalibrationError(SetJoinError):
    """The time-model calibration could not fit the measured data points."""
