"""Exception hierarchy for the set-containment-join library.

All library-specific errors derive from :class:`SetJoinError` so callers can
catch one base class.  Substrate layers (storage, data generation, analysis)
have their own subclasses to make failure origins obvious in tracebacks.
"""

from __future__ import annotations


class SetJoinError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(SetJoinError):
    """Invalid parameters supplied to an algorithm or component."""


class StorageError(SetJoinError):
    """Base class for storage-substrate failures."""


class PageError(StorageError):
    """Malformed page access: bad page id, overflow, or corrupt header."""


class CorruptPageError(PageError):
    """A page failed its checksum: torn write, bit rot, or overwrite.

    Raised by the disk managers on read instead of decoding garbage, so a
    corrupted base relation can never silently produce wrong join results.
    """


class WALError(StorageError):
    """Write-ahead-log misuse or an unrecoverable log state."""


class BufferPoolError(StorageError):
    """Buffer-pool misuse, e.g. all frames pinned or double unpin."""


class BTreeError(StorageError):
    """B-tree structural errors or oversized entries."""


class SerializationError(StorageError):
    """Record could not be encoded or decoded."""


class ParallelExecutionError(SetJoinError):
    """A parallel join worker failed, timed out, or died.

    Raised by :mod:`repro.parallel` instead of leaking backend-specific
    exceptions (``BrokenProcessPool``, ``TimeoutError``) so callers can
    handle worker failures with the same ``except SetJoinError`` they
    already use for serial joins.

    ``kind`` classifies the failure for retry layers:

    * ``"timeout"`` — a shard exceeded the batch's shard timeout.  The
      batch is abandoned, not preempted: queued shards are cancelled,
      but a shard already running on the *thread* backend cannot be
      interrupted and runs to completion in the background on the
      pool's (now shut down) worker thread; a shard on the *process*
      backend keeps running in its worker process until the pool's
      processes exit.  Abandoned shards only touch their own read-only
      storage views, so they cannot corrupt state — they just burn CPU.
    * ``"worker_death"`` — a worker process died mid-shard (OOM kill,
      injected chaos, crash); the pool is broken and was discarded.
    * ``"shard_error"`` — the shard itself raised (e.g. an injected
      I/O fault); the error crossed the process boundary as data.
    * ``"startup"`` — the backend could not start on this platform.

    All four are transient from a retry layer's point of view — a fresh
    attempt builds a fresh pool — which is exactly how
    :mod:`repro.service.retry` treats them.
    """

    def __init__(self, message: str, kind: str = "shard_error"):
        super().__init__(message)
        self.kind = kind


class MemoryLimitExceeded(SetJoinError):
    """A main-memory algorithm exceeded its configured memory budget.

    Raised by SHJ (the Helmer/Moerkotte main-memory join) when the input
    relations do not fit in the configured budget -- the very limitation
    that motivates the disk-based LSJ and DCJ algorithms.
    """


class CalibrationError(SetJoinError):
    """The time-model calibration could not fit the measured data points."""


class ServiceError(SetJoinError):
    """Base class for long-lived query-service failures.

    Every admitted query either completes or fails with a subclass of
    this (or another :class:`SetJoinError`); the service never lets a
    bare backend exception reach a client.
    """


class AdmissionRejected(ServiceError):
    """The admission queue was full and the query was shed.

    Shedding is deliberate back-pressure, not a malfunction: the client
    should back off and retry (HTTP 429 on the service front end).
    """


class ServiceUnavailable(ServiceError):
    """The service is not accepting queries (starting, draining or
    stopped).  Maps to HTTP 503; ``/readyz`` reports the same state."""


class DeadlineExceeded(ServiceError):
    """A query's deadline elapsed before it finished.

    Raised whether the deadline expired while the query waited in the
    admission queue or while it executed (the remaining budget
    propagates into the parallel engine as the shard timeout).  Maps to
    HTTP 504.
    """
