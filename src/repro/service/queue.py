"""Bounded admission queue with explicit shedding.

The service's back-pressure point: a fixed-depth FIFO in front of the
execution lane.  When the queue is full, :meth:`AdmissionQueue.offer`
*rejects* instead of blocking — the caller sheds the query with a typed
:class:`~repro.errors.AdmissionRejected` — so overload degrades into
fast, observable 429s rather than unbounded memory growth and silent
latency collapse.

Queue depth, total admissions and total sheds are published to the
metrics registry (``setjoin_service_queue_depth``,
``setjoin_service_admitted_total``, ``setjoin_service_shed_total``) at
offer/take time, so a scrape always sees the live depth.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigurationError, ServiceError

__all__ = ["Query", "QueryTicket", "AdmissionQueue"]

_query_ids = itertools.count(1)


@dataclass
class Query:
    """One admitted unit of work.

    ``kind`` is one of ``"join"``, ``"probe"``, ``"create"``, ``"drop"``
    (the workload mix the load generator replays); ``params`` carries
    the kind-specific arguments; ``deadline`` is an *absolute* monotonic
    timestamp (``None`` = no deadline).

    ``context`` is the request-scoped :class:`~repro.obs.flight.
    QueryContext` minted together with the ``query_id``: it rides the
    query through the retry ladder, coordinator fan-out and workers,
    accumulating the timeline and evidence the flight recorder
    snapshots when the query finishes.
    """

    kind: str
    params: dict = field(default_factory=dict)
    deadline: float | None = None
    admitted_at: float = 0.0
    query_id: int = field(default_factory=lambda: next(_query_ids))
    context: object = None

    def __post_init__(self):
        if self.context is None:
            from ..obs.flight import QueryContext

            self.context = QueryContext(self.query_id, self.kind)


class QueryTicket:
    """The caller's handle on an admitted query.

    A tiny future: the execution lane resolves or rejects it exactly
    once; :meth:`result` blocks until then.  Rejection always carries a
    typed :class:`~repro.errors.SetJoinError` subclass — the "every
    admitted query is answered or cleanly rejected" invariant lives
    here.
    """

    def __init__(self, query: Query):
        self.query = query
        self._done = threading.Event()
        self._result = None
        self._error: BaseException | None = None
        #: wall seconds the query spent queued and executing; set on
        #: resolution for the latency histogram and the load report.
        self.seconds: float = 0.0
        self.attempts: int = 0

    @property
    def query_id(self) -> int:
        return self.query.query_id

    def done(self) -> bool:
        return self._done.is_set()

    @property
    def error(self) -> BaseException | None:
        return self._error

    def resolve(self, result) -> None:
        self._result = result
        self._done.set()

    def reject(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def result(self, timeout: float | None = None):
        """Block for the outcome; re-raises the typed rejection error."""
        if not self._done.wait(timeout):
            raise ServiceError(
                f"query {self.query_id} still pending after {timeout}s wait"
            )
        if self._error is not None:
            raise self._error
        return self._result


class AdmissionQueue:
    """Fixed-depth FIFO; full means shed, closed means reject.

    All state transitions happen under one condition variable so
    concurrent producers (HTTP handler threads) and the single consumer
    (the execution lane) stay consistent.
    """

    def __init__(self, depth: int, registry=None):
        if depth < 1:
            raise ConfigurationError(f"queue depth must be >= 1, got {depth}")
        from ..obs.registry import get_registry

        self.depth = depth
        self._items: deque[QueryTicket] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        registry = registry if registry is not None else get_registry()
        self._depth_gauge = registry.gauge(
            "setjoin_service_queue_depth",
            "Queries waiting in the service admission queue",
        )
        self._admitted = registry.counter(
            "setjoin_service_admitted_total",
            "Queries admitted past the admission queue",
        )
        self._shed = registry.counter(
            "setjoin_service_shed_total",
            "Queries shed because the admission queue was full",
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def offer(self, ticket: QueryTicket) -> bool:
        """Admit a ticket; ``False`` means the queue was full (shed).

        A closed queue also returns ``False`` — the caller distinguishes
        the two via :meth:`closed` and raises the right typed error.
        """
        with self._lock:
            if self._closed or len(self._items) >= self.depth:
                if not self._closed:
                    self._shed.inc()
                return False
            self._items.append(ticket)
            self._admitted.inc()
            self._depth_gauge.set(len(self._items))
            self._not_empty.notify()
            return True

    def take(self, timeout: float | None = None) -> QueryTicket | None:
        """Pop the oldest ticket, waiting up to ``timeout``; ``None`` on
        timeout or when the queue is closed and drained."""
        with self._not_empty:
            if not self._items:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
            if not self._items:
                return None
            ticket = self._items.popleft()
            self._depth_gauge.set(len(self._items))
            return ticket

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Stop admitting; queued tickets remain takeable (drain)."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain_now(self) -> list[QueryTicket]:
        """Close and empty the queue, returning the abandoned tickets so
        the caller can reject each one (non-draining shutdown)."""
        with self._not_empty:
            self._closed = True
            abandoned = list(self._items)
            self._items.clear()
            self._depth_gauge.set(0)
            self._not_empty.notify_all()
            return abandoned
