"""Retries with exponential backoff + jitter, and a circuit breaker.

Transient shard failures — a worker process OOM-killed mid-shard, a
slow shard tripping its timeout, an injected I/O fault — all surface as
:class:`~repro.errors.ParallelExecutionError`.  Because the join is
deterministic (same inputs, same partitioner seed ⇒ bit-identical
pairs and x/y accounting), simply running the query again is *correct*,
not just convenient; :func:`run_with_retries` is that loop.

Repeated failures are a signal, not noise: the :class:`CircuitBreaker`
counts consecutive failures per execution backend and, once tripped,
the :class:`BackendLadder` degrades the service to the next-sturdier
backend (``process`` → ``thread`` → ``serial``) until the breaker's
cooldown lets a half-open probe try the preferred backend again.

Clocks, sleeps and randomness are injectable throughout so every branch
is deterministically testable.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..errors import ConfigurationError, ParallelExecutionError

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "BackendLadder",
    "DEGRADATION_ORDER",
    "run_with_retries",
]

#: Degradation chain: each backend's fallback when its breaker is open.
#: ``serial`` is the floor — in-process, no pool, nothing left to kill.
DEGRADATION_ORDER = {"process": "thread", "thread": "serial", "serial": None}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter.

    Attempt ``n`` (1-based) sleeps ``min(max_delay, base_delay *
    multiplier**(n-1))`` scaled by a uniform jitter in
    ``[1 - jitter, 1]`` — full jitter decorrelates retry storms when
    many queued queries hit the same dying worker pool.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        return raw * (1.0 - self.jitter * rng.random())


class CircuitBreaker:
    """Per-backend failure circuit: closed → open → half-open.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allows` is ``False`` (the ladder degrades past this
    backend).  After ``cooldown`` seconds the circuit half-opens: one
    probe is allowed through, and its outcome closes or re-opens the
    circuit.  State is published as ``setjoin_service_breaker_state``
    (0 closed, 1 half-open, 2 open) per backend-named gauge.
    """

    CLOSED, HALF_OPEN, OPEN = "closed", "half_open", "open"

    def __init__(
        self,
        backend: str,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        clock=time.monotonic,
        registry=None,
    ):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        from ..obs.registry import get_registry

        self.backend = backend
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        #: optional ``callback(backend, old_state, new_state)`` fired on
        #: every actual state change; the service routes these into the
        #: active query's flight-recorder timeline.
        self.on_transition = None
        registry = registry if registry is not None else get_registry()
        self._state_gauge = registry.gauge(
            f"setjoin_service_breaker_{backend}_state",
            f"Circuit state for the {backend} backend "
            "(0 closed, 1 half-open, 2 open)",
        )
        self._trips = registry.counter(
            f"setjoin_service_breaker_{backend}_trips_total",
            f"Times the {backend} backend circuit opened",
        )
        self._publish()

    def _publish(self) -> None:
        self._state_gauge.set(
            {self.CLOSED: 0, self.HALF_OPEN: 1, self.OPEN: 2}[self._state]
        )

    def _transition(self, new_state: str) -> None:
        """Move to ``new_state``, publishing and notifying on change."""
        if new_state == self._state:
            return
        old_state, self._state = self._state, new_state
        self._publish()
        if self.on_transition is not None:
            self.on_transition(self.backend, old_state, new_state)

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._transition(self.HALF_OPEN)

    def allows(self) -> bool:
        """Whether a query may use this backend right now."""
        self._maybe_half_open()
        return self._state != self.OPEN

    def record_success(self) -> None:
        self._failures = 0
        self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self._maybe_half_open()
        self._failures += 1
        if self._state == self.HALF_OPEN:
            # The probe failed: straight back to open, restart cooldown.
            self._opened_at = self._clock()
            self._trips.inc()
            self._transition(self.OPEN)
        elif (
            self._state == self.CLOSED
            and self._failures >= self.failure_threshold
        ):
            self._opened_at = self._clock()
            self._trips.inc()
            self._transition(self.OPEN)


class BackendLadder:
    """Chooses the effective backend: preferred unless its circuit is open.

    One breaker per backend in the degradation chain.  ``select``
    returns the first backend down the chain whose breaker allows
    traffic (``serial`` always does — it has no pool to break, so its
    breaker exists only for accounting).
    """

    def __init__(
        self,
        preferred: str,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        clock=time.monotonic,
        registry=None,
    ):
        if preferred not in DEGRADATION_ORDER:
            raise ConfigurationError(
                f"unknown backend {preferred!r}; expected one of "
                f"{tuple(DEGRADATION_ORDER)}"
            )
        from ..obs.registry import get_registry

        registry = registry if registry is not None else get_registry()
        self.preferred = preferred
        self.breakers: dict[str, CircuitBreaker] = {}
        backend: str | None = preferred
        while backend is not None:
            self.breakers[backend] = CircuitBreaker(
                backend, failure_threshold, cooldown, clock=clock,
                registry=registry,
            )
            backend = DEGRADATION_ORDER[backend]
        self._degraded = registry.counter(
            "setjoin_service_backend_degraded_total",
            "Queries executed on a degraded backend because the "
            "preferred backend's circuit was open",
        )

    def set_transition_listener(self, callback) -> None:
        """Install ``callback(backend, old, new)`` on every breaker."""
        for breaker in self.breakers.values():
            breaker.on_transition = callback

    def select(self) -> str:
        backend: str | None = self.preferred
        while backend is not None:
            if self.breakers[backend].allows():
                if backend != self.preferred:
                    self._degraded.inc()
                return backend
            backend = DEGRADATION_ORDER[backend]
        return "serial"  # unreachable: serial never degrades past itself

    def record_success(self, backend: str) -> None:
        if backend in self.breakers:
            self.breakers[backend].record_success()

    def record_failure(self, backend: str) -> None:
        if backend in self.breakers:
            self.breakers[backend].record_failure()


def run_with_retries(
    operation,
    policy: RetryPolicy,
    *,
    ladder: BackendLadder | None = None,
    backend: str | None = None,
    deadline: float | None = None,
    clock=time.monotonic,
    sleep=time.sleep,
    rng: random.Random | None = None,
    on_retry=None,
) -> object:
    """Run ``operation(backend)`` until it succeeds or the policy gives up.

    ``operation`` receives the effective backend name (from ``ladder``,
    or the fixed ``backend``) and must raise
    :class:`ParallelExecutionError` on transient failure — anything else
    propagates immediately (a planner bug is not retryable).  ``deadline``
    is an absolute ``clock()`` timestamp bounding the whole loop
    including backoff sleeps.  ``on_retry(attempt, error)`` is invoked
    before each backoff (metrics hook).

    Returns whatever ``operation`` returns.  Because the join kernel is
    deterministic, a retried success is bit-identical to an untroubled
    run — tests pin this.
    """
    rng = rng if rng is not None else random.Random()
    attempt = 0
    while True:
        attempt += 1
        effective = ladder.select() if ladder is not None else backend
        try:
            result = operation(effective)
        except ParallelExecutionError as error:
            if ladder is not None:
                ladder.record_failure(effective)
            if attempt >= policy.max_attempts:
                raise
            pause = policy.delay(attempt, rng)
            if deadline is not None:
                remaining = deadline - clock()
                if remaining <= pause:
                    # No budget left for another attempt; surface the
                    # underlying failure (the caller maps an exhausted
                    # deadline to DeadlineExceeded).
                    raise
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(pause)
        else:
            if ladder is not None:
                ladder.record_success(effective)
            return result
