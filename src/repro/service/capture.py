"""Workload capture and deterministic replay.

``serve --capture workload.jsonl`` turns live traffic into a regression
artifact: the service appends one :class:`WorkloadRecord` per finished
query — its fingerprint, parameters as *resolved* (algorithm, k,
signature bits, engine, seed — not "auto"), its resource ledger, and a
SHA-256 **answer digest** over the sorted result plus the paper's x/y
accounting.  The capture file is rotated on service start via
:func:`repro.obs.rotation.rotate_jsonl` with the same
environment-fingerprint sidecar discipline as drift and trace histories.

:func:`replay_capture` (surfaced as ``repro replay``) re-executes a
capture against a database and diffs each query against its recording:

* **Answer digests must match bit-for-bit.**  Joins re-run with the
  recorded resolved plan, so the PR 2 invariant (results and x/y
  identical at any worker count or backend) makes the digest
  deterministic; a mismatch means the engine's answers changed.
* **Deterministic ledger resources must match exactly** — signature
  comparisons, replicated signatures, candidates, result pairs are
  functions of data + plan, not of machine state.
* **Physical resources** (pages, buffer hits/misses, WAL bytes) depend
  on cache state and layout, so replay reports their drift without
  failing on it.

Records that cannot replay deterministically — failed queries, churn
creates/drops whose relations are gone, resharding — are skipped with
a per-reason count, never silently.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..obs.ledger import QueryLedger, RESOURCE_COUNTERS
from ..obs.registry import get_registry
from ..obs.rotation import rotate_jsonl

__all__ = [
    "CAPTURE_SCHEMA",
    "ReplayReport",
    "WorkloadCapture",
    "WorkloadRecord",
    "answer_digest",
    "read_capture",
    "replay_capture",
]

#: Bump when the record layout changes incompatibly; readers refuse
#: records from a future schema instead of misinterpreting them.
CAPTURE_SCHEMA = 1

#: Ledger resources that are pure functions of (data, resolved plan) —
#: replay asserts these exactly.  Everything else in RESOURCE_COUNTERS
#: is cache/layout-dependent and only reported.
DETERMINISTIC_RESOURCES = (
    "signature_comparisons",
    "replicated_signatures",
    "candidates",
    "result_pairs",
)


def answer_digest(kind: str, result) -> dict:
    """Digest one query's answer into a comparable, order-free form.

    Joins digest the sorted pair list plus the paper's x/y accounting;
    probes digest the sorted tid list.  The SHA-256 is over a canonical
    text encoding, so two runs match iff the answers are bit-identical.
    """
    if kind == "join":
        pairs, metrics = result
        hasher = hashlib.sha256()
        for r_tid, s_tid in sorted(pairs):
            hasher.update(f"{r_tid},{s_tid}\n".encode())
        return {
            "sha256": hasher.hexdigest(),
            "pairs": len(pairs),
            "x": metrics.signature_comparisons,
            "y": metrics.replicated_signatures,
        }
    if kind == "probe":
        tids = sorted(result)
        hasher = hashlib.sha256()
        for tid in tids:
            hasher.update(f"{tid}\n".encode())
        return {"sha256": hasher.hexdigest(), "matches": len(tids)}
    if kind == "create":
        return {"rows": int(result)}
    return {}


@dataclass
class WorkloadRecord:
    """One captured query: identity, resolved parameters, bill, answer."""

    query_id: int
    kind: str
    fingerprint: str
    label: str
    params: dict
    status: str
    seconds: float
    attempts: int
    digest: dict = field(default_factory=dict)
    ledger: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": CAPTURE_SCHEMA,
            "query_id": self.query_id,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "label": self.label,
            "params": dict(self.params),
            "status": self.status,
            "seconds": self.seconds,
            "attempts": self.attempts,
            "digest": dict(self.digest),
            "ledger": dict(self.ledger),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadRecord":
        if not isinstance(data, dict):
            raise ConfigurationError("workload record must be a JSON object")
        schema = data.get("schema")
        if not isinstance(schema, int) or schema > CAPTURE_SCHEMA:
            raise ConfigurationError(
                f"workload record schema {schema!r} not supported "
                f"(this reader understands <= {CAPTURE_SCHEMA})"
            )
        try:
            return cls(
                query_id=int(data["query_id"]),
                kind=str(data["kind"]),
                fingerprint=str(data["fingerprint"]),
                label=str(data.get("label", data["fingerprint"])),
                params=dict(data.get("params", {})),
                status=str(data["status"]),
                seconds=float(data.get("seconds", 0.0)),
                attempts=int(data.get("attempts", 1)),
                digest=dict(data.get("digest", {})),
                ledger=dict(data.get("ledger", {})),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed workload record: {error}"
            ) from error


class WorkloadCapture:
    """Append-only, rotated JSONL sink for :class:`WorkloadRecord`.

    Rotation (size cap + environment-fingerprint sidecar) happens once
    at :meth:`open_`-time, mirroring the drift- and trace-history
    discipline: a capture carried over from another machine is moved to
    ``<path>.stale`` rather than silently extended, because its timings
    and page counts describe different hardware.
    """

    def __init__(self, path: str, max_bytes: int = 16 * 1024 * 1024,
                 keep: int = 5000, registry=None, wall=None):
        if not path:
            raise ConfigurationError("capture path must be non-empty")
        self.path = path
        self.max_bytes = max_bytes
        self.keep = keep
        self._wall = wall if wall is not None else time.time
        self._lock = threading.Lock()
        self._handle = None
        self._records = (registry or get_registry()).counter(
            "setjoin_capture_records_total",
            "Workload records appended to the capture file",
        )

    def open_(self) -> dict:
        """Rotate the existing capture, then open for appending."""
        with self._lock:
            if self._handle is not None:
                raise ConfigurationError(
                    f"capture {self.path!r} is already open"
                )
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            rotation = rotate_jsonl(
                self.path, max_bytes=self.max_bytes, keep=self.keep,
                parse=lambda line: WorkloadRecord.from_dict(
                    json.loads(line)
                ).to_dict(),
                wall=self._wall,
            )
            self._handle = open(self.path, "a")
            return rotation

    def append(self, record: WorkloadRecord) -> None:
        line = json.dumps(record.to_dict(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                raise ConfigurationError(
                    f"capture {self.path!r} is not open"
                )
            self._handle.write(line + "\n")
            self._handle.flush()
        self._records.inc()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_capture(path: str) -> "list[WorkloadRecord]":
    """Parse a capture file, raising on any malformed record.

    Strictness is deliberate: a replay run against a silently truncated
    capture would report spurious green.
    """
    records = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as error:
                raise ConfigurationError(
                    f"{path}:{number}: not valid JSON ({error})"
                ) from error
            records.append(WorkloadRecord.from_dict(data))
    return records


@dataclass
class ReplayReport:
    """Outcome of replaying one capture against one database."""

    total: int = 0
    replayed: int = 0
    matched: int = 0
    skipped: dict = field(default_factory=dict)
    digest_mismatches: list = field(default_factory=list)
    ledger_mismatches: list = field(default_factory=list)
    resource_drift: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.digest_mismatches and not self.ledger_mismatches

    def assert_clean(self) -> None:
        """Raise unless every replayed query matched its recording."""
        if self.clean:
            return
        problems = []
        for entry in self.digest_mismatches[:5]:
            problems.append(
                f"query {entry['query_id']}: digest {entry['recorded']} "
                f"!= {entry['replayed']}"
            )
        for entry in self.ledger_mismatches[:5]:
            problems.append(
                f"query {entry['query_id']}: {entry['resource']} "
                f"{entry['recorded']} != {entry['replayed']}"
            )
        raise ConfigurationError(
            f"replay diverged on {len(self.digest_mismatches)} digest and "
            f"{len(self.ledger_mismatches)} ledger comparisons: "
            + "; ".join(problems)
        )

    def _skip(self, reason: str) -> None:
        self.skipped[reason] = self.skipped.get(reason, 0) + 1

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "replayed": self.replayed,
            "matched": self.matched,
            "clean": self.clean,
            "skipped": dict(self.skipped),
            "digest_mismatches": list(self.digest_mismatches),
            "ledger_mismatches": list(self.ledger_mismatches),
            "resource_drift": dict(self.resource_drift),
        }


def _replay_join(record: WorkloadRecord, db, workers: int, backend: str):
    params = record.params
    r_name = params.get("r")
    s_name = params.get("s")
    if not r_name or not s_name:
        raise ConfigurationError(
            f"join record {record.query_id} lacks relation names"
        )
    algorithm = params.get("algorithm")
    if not algorithm or algorithm == "auto":
        raise ConfigurationError(
            f"join record {record.query_id} carries unresolved algorithm "
            f"{algorithm!r} — captures store the resolved plan"
        )
    return db.join(
        r_name, s_name,
        algorithm=algorithm,
        num_partitions=params.get("num_partitions"),
        signature_bits=params.get("signature_bits", 64),
        engine=params.get("engine", "numpy"),
        seed=params.get("seed", 0),
        workers=workers,
        backend=backend if workers > 1 else "serial",
    )


def replay_capture(records, db, *, workers: int = 1,
                   backend: str = "serial",
                   registry=None) -> ReplayReport:
    """Re-execute a capture against ``db`` and diff against recordings.

    Only successfully-completed join and probe records replay — they
    are the deterministic, repeatable classes.  Churn (create/drop) and
    reshard records mutated state that the capture alone cannot restore,
    and failed queries have no recorded answer; both are skipped with
    reasons.  ``workers``/``backend`` may differ from the capturing
    service: answers must still match bit-for-bit (the PR 2 invariance),
    which is exactly what makes replay a regression check rather than a
    re-measurement.
    """
    reg = registry if registry is not None else get_registry()
    report = ReplayReport()
    drift_totals: "dict[str, int]" = {}
    for record in records:
        report.total += 1
        if record.status != "ok":
            report._skip(f"status_{record.status}")
            continue
        if record.kind not in ("join", "probe"):
            report._skip(f"kind_{record.kind}")
            continue
        relations = []
        if record.kind == "join":
            relations = [record.params.get("r"), record.params.get("s")]
        else:
            relations = [record.params.get("name")]
        try:
            known = set(db.relation_names())
        except Exception:
            known = set()
        if any(name not in known for name in relations):
            report._skip("missing_relation")
            continue

        baseline = reg.snapshot()
        if record.kind == "join":
            result = _replay_join(record, db, workers, backend)
        else:
            result = db.probe(
                record.params["name"], record.params.get("elements", [])
            )
        delta = reg.delta(baseline)
        replayed_ledger = QueryLedger.from_delta(delta, 0.0, 0.0)
        report.replayed += 1

        digest = answer_digest(record.kind, result)
        matched = True
        if digest != record.digest:
            matched = False
            report.digest_mismatches.append({
                "query_id": record.query_id,
                "kind": record.kind,
                "recorded": record.digest,
                "replayed": digest,
            })

        recorded_resources = record.ledger.get("resources", {})
        replayed_resources = replayed_ledger.resources
        for resource in DETERMINISTIC_RESOURCES:
            if resource not in recorded_resources:
                continue
            recorded = recorded_resources[resource]
            replayed = replayed_resources.get(resource, 0)
            if recorded != replayed:
                matched = False
                report.ledger_mismatches.append({
                    "query_id": record.query_id,
                    "resource": resource,
                    "recorded": recorded,
                    "replayed": replayed,
                })
        for resource in RESOURCE_COUNTERS:
            if resource in DETERMINISTIC_RESOURCES:
                continue
            recorded = recorded_resources.get(resource)
            if recorded is None:
                continue
            drift_totals[resource] = (
                drift_totals.get(resource, 0)
                + (replayed_resources.get(resource, 0) - recorded)
            )
        if matched:
            report.matched += 1
    report.resource_drift = drift_totals
    return report
