"""The long-lived query service over :class:`~repro.database.SetJoinDatabase`.

Every join so far was a one-shot CLI/library call; :class:`QueryService`
is the resident process the ROADMAP asks for.  Architecture:

* **Admission** — a bounded :class:`~repro.service.queue.AdmissionQueue`
  in front of a single *execution lane* thread.  The storage substrate
  (buffer pool, temporary partition pages) is single-writer, so queries
  execute one at a time; intra-query parallelism comes from the
  partition-parallel engine (``workers``/``backend``).  A full queue
  sheds with :class:`~repro.errors.AdmissionRejected` — overload
  degrades into fast 429s, never unbounded memory.
* **Deadlines** — per-query, measured from admission.  The remaining
  budget at execution time propagates into the parallel engine as the
  shard timeout, and bounds the retry loop's backoff sleeps; an expired
  deadline surfaces as :class:`~repro.errors.DeadlineExceeded` whether
  it elapsed queued or running.
* **Retries + circuit breaker** — transient shard failures (worker
  death, timeout, injected I/O fault) are retried with exponential
  backoff + jitter (:mod:`.retry`); repeated failures trip a per-backend
  circuit breaker that degrades ``process`` → ``thread`` → ``serial``.
  The join kernel is deterministic, so a retried success is bit-identical
  to an untroubled run.
* **Observability** — ``setjoin_service_*`` gauges/counters/histograms
  in the process registry; optional per-query span traces appended to a
  JSONL file; optional per-join drift records feeding the PR-5 closed
  calibration loop (with periodic recalibration under sustained
  traffic).  Both JSONL histories are rotated/compacted on startup
  (:func:`~repro.obs.rotation.rotate_jsonl`).  Every query carries a
  request-scoped :class:`~repro.obs.flight.QueryContext` stitching the
  admission → attempt → coordinator → shard → worker span tree under
  one ``query_id``; finished queries land in the
  :class:`~repro.obs.flight.FlightRecorder` (postmortems on failure or
  latency-objective breach), outcomes feed the
  :class:`~repro.obs.slo.SLOTracker` burn-rate gauges, and an optional
  :class:`~repro.obs.profile.SamplingProfiler` attributes wall time to
  operator phases — all observation-only, so results stay
  bit-identical with every layer on or off.  The workload ledger
  (:mod:`repro.obs.ledger`) bills each query its exact registry
  movement over the lane window (``GET /debug/workload``), and
  ``capture_path`` appends every finished query — fingerprint, ledger,
  answer digest — to a rotated JSONL file that ``repro replay``
  re-executes deterministically (:mod:`repro.service.capture`).
* **Shutdown** — ``stop()`` (or SIGTERM via
  :meth:`install_signal_handlers`) moves READY → DRAINING (``/readyz``
  flips, new submits are rejected), finishes or rejects the queue, then
  closes the database — the WAL-safe half of crash safety; the
  SIGKILL half is WAL recovery on next open, which the chaos harness
  exercises.
"""

from __future__ import annotations

import random
import threading
import time

from ..database import SetJoinDatabase
from ..errors import (
    AdmissionRejected,
    ConfigurationError,
    DeadlineExceeded,
    ServiceError,
    ServiceUnavailable,
    SetJoinError,
)
from .queue import AdmissionQueue, Query, QueryTicket
from .retry import BackendLadder, RetryPolicy, run_with_retries

__all__ = ["ServiceState", "PlanCache", "QueryService"]

#: Latency buckets for the per-query histogram (seconds).
_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0
)


class ServiceState:
    STARTING = "starting"
    READY = "ready"
    DRAINING = "draining"
    STOPPED = "stopped"

    _ORDER = {STARTING: 0, READY: 1, DRAINING: 2, STOPPED: 3}


class PlanCache:
    """LRU cache of optimizer plans keyed on a statistics fingerprint.

    The key is ``(r, s, |R|, θ_R, |S|, θ_S, c1, c2, c3)`` — everything
    the optimizer's decision depends on — so a cached plan is only ever
    reused while it would be re-derived identically: relation churn
    changes the statistics (and is invalidated eagerly by name anyway),
    and a model refit/rollback changes the coefficients (the service
    also clears the cache then).  Entries hold the full
    :class:`~repro.core.optimizer.JoinPlan`, so EXPLAIN-grade detail
    stays available for drift prediction without replanning.
    """

    def __init__(self, size: int, registry=None):
        from collections import OrderedDict

        from ..obs.registry import get_registry

        if size < 1:
            raise ConfigurationError(
                f"plan cache size must be >= 1, got {size}"
            )
        self.size = size
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        reg = registry if registry is not None else get_registry()
        self.hits = reg.counter(
            "setjoin_service_plan_cache_hits_total",
            "Joins planned from the statistics-fingerprint plan cache",
        )
        self.misses = reg.counter(
            "setjoin_service_plan_cache_misses_total",
            "Joins that had to run the optimizer (cache miss)",
        )

    def lookup(self, key: tuple):
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses.inc()
                return None
            self._entries.move_to_end(key)
            self.hits.inc()
            return plan

    def store(self, key: tuple, plan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.size:
                self._entries.popitem(last=False)

    def invalidate(self, *names: str) -> int:
        """Drop every cached plan involving any of ``names`` (churn)."""
        targets = set(names)
        with self._lock:
            stale = [
                key for key in self._entries
                if key[0] in targets or key[1] in targets
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        """Drop everything (model refit/rollback: all plans are stale)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class QueryService:
    """Admission-controlled, deadline-aware join service.

    ``database`` is a path (the service opens and owns it — closed on
    :meth:`stop`) or an open :class:`SetJoinDatabase` (borrowed — the
    caller keeps ownership).  ``workers``/``backend`` configure the
    partition-parallel engine per join; ``backend`` is the *preferred*
    rung of the degradation ladder.  ``chaos`` is an optional
    :class:`~repro.service.chaos.ChaosInjector` (or any shard-hook
    callable) threaded into every parallel join.

    ``clock``/``sleep``/``rng`` are injectable for deterministic tests;
    the clock must be monotonic.
    """

    def __init__(
        self,
        database: "SetJoinDatabase | str | None",
        *,
        workers: int = 2,
        backend: str = "thread",
        shards: int | None = None,
        plan_cache_size: int = 0,
        queue_depth: int = 64,
        default_deadline: float | None = None,
        shard_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
        chaos=None,
        drift_path: str | None = None,
        drift_max_bytes: int = 4 * 1024 * 1024,
        recalibrate_every: int | None = None,
        model_store=None,
        trace_path: str | None = None,
        trace_max_bytes: int = 4 * 1024 * 1024,
        flight_recorder=None,
        postmortem_dir: str | None = None,
        slo=None,
        profile_hz: float | None = None,
        ledger: bool = True,
        capture_path: str | None = None,
        capture_max_bytes: int = 16 * 1024 * 1024,
        clock=time.monotonic,
        sleep=time.sleep,
        rng: random.Random | None = None,
        cpu_clock=time.process_time,
        registry=None,
    ):
        from ..obs.registry import get_registry

        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if default_deadline is not None and default_deadline <= 0:
            raise ConfigurationError("default_deadline must be positive")
        if database is None or isinstance(database, str):
            if shards is not None:
                self.db = SetJoinDatabase.open_sharded(
                    database, shards=shards, model_store=model_store
                )
            else:
                self.db = SetJoinDatabase.open(
                    database, model_store=model_store
                )
            self._owns_db = True
        else:
            # An open SetJoinDatabase or ShardedDatabase is borrowed —
            # the caller keeps ownership and its existing shard layout.
            if shards is not None:
                raise ConfigurationError(
                    "shards= only applies when the service opens the "
                    "database itself; the borrowed instance already has "
                    "its layout"
                )
            self.db = database
            self._owns_db = False
        self.workers = workers
        self.backend = backend
        self.default_deadline = default_deadline
        self.shard_timeout = shard_timeout
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.chaos = chaos
        self.drift_path = drift_path
        self.drift_max_bytes = drift_max_bytes
        self.recalibrate_every = recalibrate_every
        self.trace_path = trace_path
        self.trace_max_bytes = trace_max_bytes
        self._clock = clock
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._registry = (
            registry if registry is not None else get_registry()
        )
        self._queue = AdmissionQueue(queue_depth, registry=self._registry)
        self._ladder = BackendLadder(
            backend, failure_threshold=breaker_threshold,
            cooldown=breaker_cooldown, clock=clock, registry=self._registry,
        )
        self._plan_cache = (
            PlanCache(plan_cache_size, registry=self._registry)
            if plan_cache_size else None
        )

        # Request-scoped observability: flight recorder, SLO tracker,
        # sampling profiler.  All observation-only — none of them feeds
        # back into execution, so results are bit-identical on or off.
        from ..obs.flight import FlightRecorder
        from ..obs.slo import SLOTracker

        if flight_recorder is None and postmortem_dir is not None:
            flight_recorder = 128
        if isinstance(flight_recorder, int):
            self._flight = FlightRecorder(
                capacity=flight_recorder, postmortem_dir=postmortem_dir,
                registry=self._registry,
            )
        else:
            self._flight = flight_recorder  # instance or None
        if slo is not None and not isinstance(slo, SLOTracker):
            slo = SLOTracker(slo, registry=self._registry)
        self._slo = slo
        self._profiler = None
        if profile_hz is not None:
            from ..obs.profile import SamplingProfiler

            self._profiler = SamplingProfiler(
                hz=profile_hz, registry=self._registry,
            )

        # Workload ledger + capture: per-query resource attribution by
        # lane-window registry diffing, and the optional JSONL record of
        # every finished query (fingerprint, ledger, answer digest) that
        # ``repro replay`` re-executes.  Observation-only, like the rest
        # of the observability stack.
        self._cpu_clock = cpu_clock
        self.capture_path = capture_path
        self.capture_max_bytes = capture_max_bytes
        self._capture = None
        self._ledger = None
        if ledger:
            from ..obs.ledger import WorkloadLedger

            self._ledger = WorkloadLedger(registry=self._registry)
        #: the context of the query the lane is executing right now —
        #: written only by the lane; breaker/chaos callbacks (which fire
        #: on the lane thread, inside an attempt) route events here.
        self._current_context = None
        self._ladder.set_transition_listener(self._breaker_event)
        if self.chaos is not None and hasattr(self.chaos, "on_event"):
            self.chaos.on_event = self._chaos_event

        self._state = ServiceState.STARTING
        self._state_lock = threading.Lock()
        self._stopped = threading.Event()
        self._lane: threading.Thread | None = None
        self._joins_since_recalibration = 0
        self._trace_lock = threading.Lock()

        reg = self._registry
        self._state_gauge = reg.gauge(
            "setjoin_service_state",
            "Service lifecycle (0 starting, 1 ready, 2 draining, 3 stopped)",
        )
        self._inflight = reg.gauge(
            "setjoin_service_inflight", "Queries currently executing"
        )
        self._completed = reg.counter(
            "setjoin_service_completed_total", "Queries answered successfully"
        )
        self._failed = reg.counter(
            "setjoin_service_failed_total",
            "Queries rejected with a typed error after admission",
        )
        self._deadline_counter = reg.counter(
            "setjoin_service_deadline_exceeded_total",
            "Queries that ran out of deadline (queued or executing)",
        )
        self._retries = reg.counter(
            "setjoin_service_retries_total",
            "Transient shard failures retried by the service",
        )
        self._latency = reg.histogram(
            "setjoin_service_query_seconds",
            "Admission-to-answer latency per query",
            buckets=_LATENCY_BUCKETS,
        )
        self._set_state(ServiceState.STARTING)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _set_state(self, state: str) -> None:
        self._state = state
        self._state_gauge.set(ServiceState._ORDER[state])

    @property
    def state(self) -> str:
        return self._state

    @property
    def ready(self) -> bool:
        return self._state == ServiceState.READY

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def start(self) -> "QueryService":
        """Rotate operational state, spawn the execution lane, go READY."""
        with self._state_lock:
            if self._state != ServiceState.STARTING:
                raise ConfigurationError(
                    f"cannot start a service in state {self._state!r}"
                )
            if self.drift_path is not None:
                from ..obs.drift import rotate_drift_jsonl

                self.drift_rotation = rotate_drift_jsonl(
                    self.drift_path, max_bytes=self.drift_max_bytes
                )
            if self.trace_path is not None:
                from ..obs.rotation import rotate_jsonl

                self.trace_rotation = rotate_jsonl(
                    self.trace_path, max_bytes=self.trace_max_bytes
                )
            if self._profiler is not None:
                self._profiler.start()
            if self.capture_path is not None:
                from .capture import WorkloadCapture

                self._capture = WorkloadCapture(
                    self.capture_path, max_bytes=self.capture_max_bytes,
                    registry=self._registry,
                )
                self.capture_rotation = self._capture.open_()
            if self._ledger is not None:
                # Baseline *before* the lane can run anything, so the
                # reconciliation window covers every attributed query.
                self._ledger.begin()
            self._lane = threading.Thread(
                target=self._run_lane, name="setjoin-service-lane", daemon=True
            )
            self._lane.start()
            self._set_state(ServiceState.READY)
        return self

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Graceful shutdown: DRAINING → (drain or reject) → STOPPED.

        With ``drain=True`` every already-admitted query is answered
        before the lane exits; with ``drain=False`` queued queries are
        rejected immediately with :class:`ServiceUnavailable` (the one
        in flight still finishes — the lane is never killed mid-write,
        which is what keeps shutdown WAL-safe).  Idempotent.
        """
        with self._state_lock:
            if self._state in (ServiceState.STOPPED,):
                return
            self._set_state(ServiceState.DRAINING)
        if drain:
            self._queue.close()
        else:
            for ticket in self._queue.drain_now():
                self._failed.inc()
                ticket.reject(ServiceUnavailable(
                    "service is draining; query rejected before execution"
                ))
        if self._lane is not None:
            self._lane.join(timeout)
            if self._lane.is_alive():
                raise ServiceError(
                    f"execution lane still busy after {timeout}s drain"
                )
        if self._profiler is not None:
            self._profiler.stop()
        if self._capture is not None:
            self._capture.close()
        with self._state_lock:
            if self._owns_db:
                self.db.close()
            self._set_state(ServiceState.STOPPED)
        self._stopped.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the service reaches STOPPED (the CLI's main loop:
        a SIGTERM-triggered drain wakes this up)."""
        return self._stopped.wait(timeout)

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (CLI entry point)."""
        import signal

        def _handle(signum, frame):  # noqa: ARG001 (signal API)
            self.stop(drain=True)

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self, kind: str, deadline: float | None = None, **params
    ) -> QueryTicket:
        """Admit a query; returns its ticket or raises a typed error.

        ``deadline`` is seconds from now (defaults to the service's
        ``default_deadline``; ``None`` = unbounded).  Raises
        :class:`ServiceUnavailable` unless READY and
        :class:`AdmissionRejected` when the queue sheds.
        """
        if self._state != ServiceState.READY:
            raise ServiceUnavailable(
                f"service is {self._state}, not accepting queries"
            )
        if deadline is None:
            deadline = self.default_deadline
        if deadline is not None and deadline <= 0:
            raise ConfigurationError("deadline must be positive seconds")
        now = self._clock()
        query = Query(
            kind=kind,
            params=params,
            deadline=None if deadline is None else now + deadline,
            admitted_at=now,
        )
        ticket = QueryTicket(query)
        if not self._queue.offer(ticket):
            if self._queue.closed:
                raise ServiceUnavailable("service is draining")
            raise AdmissionRejected(
                f"admission queue full ({self._queue.depth} queued); "
                "back off and retry"
            )
        if query.context is not None:
            query.context.event("admitted", queue_depth=len(self._queue))
        return ticket

    # Synchronous conveniences (the load generator uses submit directly).

    def join(self, r_name: str, s_name: str, deadline: float | None = None,
             timeout: float | None = None, **params):
        """Admit a full join and wait for ``(pairs, metrics)``."""
        ticket = self.submit("join", deadline=deadline, r=r_name, s=s_name,
                             **params)
        return ticket.result(timeout)

    def probe(self, name: str, elements, deadline: float | None = None,
              timeout: float | None = None) -> list[int]:
        """Admit a point containment probe and wait for matching tids."""
        ticket = self.submit("probe", deadline=deadline, name=name,
                             elements=list(elements))
        return ticket.result(timeout)

    def create_relation(self, name: str, rows,
                        timeout: float | None = None) -> int:
        """Catalog churn: WAL-transactional create through the lane."""
        ticket = self.submit("create", name=name, rows=rows)
        return ticket.result(timeout)

    def drop_relation(self, name: str, timeout: float | None = None) -> None:
        ticket = self.submit("drop", name=name)
        return ticket.result(timeout)

    def reshard(self, shards: int, timeout: float | None = None) -> int:
        """Resize a sharded database through the lane; returns the new
        shard count (requires a :class:`~repro.dist.ShardedDatabase`)."""
        ticket = self.submit("reshard", shards=shards)
        return ticket.result(timeout)

    # ------------------------------------------------------------------
    # The execution lane
    # ------------------------------------------------------------------

    def _run_lane(self) -> None:
        while True:
            ticket = self._queue.take(timeout=0.05)
            if ticket is None:
                if self._queue.closed:
                    return
                continue
            self._inflight.set(1)
            self._current_context = ticket.query.context
            # The ledger window: everything the query moves in the
            # registry between these snapshots is *its* bill.  Exactness
            # rests on the single-lane design — no other query (and no
            # other db-touching code path) runs concurrently, and
            # process-worker/shard deltas merge before the join call
            # returns.
            ledger_on = self._ledger is not None or self._capture is not None
            lane_baseline = self._registry.snapshot() if ledger_on else None
            lane_started = self._clock()
            cpu_started = self._cpu_clock() if ledger_on else 0.0
            status = "ok"
            result = None
            error: BaseException | None = None
            try:
                result = self._execute(ticket)
            except SetJoinError as err:
                if isinstance(err, DeadlineExceeded):
                    self._deadline_counter.inc()
                    status = "deadline_exceeded"
                else:
                    status = "error"
                error = err
            except BaseException as err:  # noqa: BLE001 — lane must survive
                status = "internal_error"
                error = ServiceError(
                    f"internal error executing query "
                    f"{ticket.query_id}: {err!r}"
                )
            # Settle observability *before* resolving the ticket, so a
            # caller woken by result() immediately finds the flight
            # entry; the finally clause guarantees the ticket settles
            # even if an observation-only layer misbehaves.
            try:
                self._current_context = None
                ticket.seconds = self._clock() - ticket.query.admitted_at
                self._latency.observe(max(ticket.seconds, 0.0))
                if lane_baseline is not None:
                    self._settle_ledger(
                        ticket, status, result, lane_baseline,
                        lane_started, cpu_started,
                    )
                self._observe_outcome(ticket, status, error)
            except BaseException:  # noqa: BLE001 — observation-only
                pass
            finally:
                if status == "ok":
                    self._completed.inc()
                    ticket.resolve(result)
                else:
                    self._failed.inc()
                    ticket.reject(error)
                self._inflight.set(0)

    def _observe_outcome(self, ticket: QueryTicket, status: str,
                         error: BaseException | None) -> None:
        """Feed one finished query into the SLO tracker and recorder."""
        query = ticket.query
        objective = None
        if self._slo is not None:
            self._slo.observe(query.kind, ticket.seconds, ok=status == "ok")
            objective = self._slo.latency_objective(query.kind)
        if self._flight is not None and query.context is not None:
            self._flight.record(
                query.context, status=status, seconds=ticket.seconds,
                attempts=ticket.attempts, error=error, objective=objective,
            )

    def _settle_ledger(self, ticket: QueryTicket, status: str, result,
                       baseline: dict, lane_started: float,
                       cpu_started: float) -> None:
        """Bill one finished query: diff the registry over its lane
        window, attribute by fingerprint, and append the capture record.

        Runs inside the settle block *before* the flight recorder, so a
        flight entry's snapshot already carries the ledger and the
        fingerprint.
        """
        from ..obs.ledger import QueryLedger

        query = ticket.query
        ledger = QueryLedger.from_delta(
            self._registry.delta(baseline),
            wall_seconds=self._clock() - lane_started,
            cpu_seconds=self._cpu_clock() - cpu_started,
        )
        fingerprint = self._fingerprint(query, result, status)
        if query.context is not None:
            query.context.ledger = ledger.to_dict()
            query.context.fingerprint = fingerprint.key
        if self._ledger is not None:
            self._ledger.attribute(
                fingerprint, ledger, kind=query.kind, status=status,
                query_id=query.query_id,
            )
        if self._capture is not None:
            from .capture import WorkloadRecord, answer_digest

            self._capture.append(WorkloadRecord(
                query_id=query.query_id,
                kind=query.kind,
                fingerprint=fingerprint.key,
                label=fingerprint.label,
                params=self._capture_params(query, result, status),
                status=status,
                seconds=ticket.seconds,
                attempts=ticket.attempts,
                digest=(
                    answer_digest(query.kind, result)
                    if status == "ok" else {}
                ),
                ledger=ledger.to_dict(),
            ))

    def _fingerprint(self, query: Query, result, status: str):
        """Normalize one query into its stable workload fingerprint.

        Joins key on what actually executed (resolved algorithm/k,
        signature bits, relation sizes, optimizer densities, shard
        layout); generated relation names collapse their digit runs so
        churn traffic shares one shape.
        """
        from ..obs.ledger import normalize_workload_name, query_fingerprint

        params = query.params
        kind = query.kind
        detail: dict = {}
        if kind == "join":
            detail["r"] = normalize_workload_name(params["r"])
            detail["s"] = normalize_workload_name(params["s"])
            if status == "ok" and result is not None:
                __, metrics = result
                detail["algorithm"] = metrics.algorithm
                detail["k"] = metrics.num_partitions
                detail["signature_bits"] = metrics.signature_bits
                detail["r_size"] = metrics.r_size
                detail["s_size"] = metrics.s_size
            else:
                detail["algorithm"] = params.get("algorithm", "auto")
            plan = (
                query.context.plan if query.context is not None else None
            )
            if isinstance(plan, dict):
                for field in ("theta_r", "theta_s"):
                    if field in plan:
                        detail[field] = plan[field]
            if hasattr(self.db, "shard_ids"):
                detail["shards"] = len(self.db.shard_ids)
        elif kind == "probe":
            detail["name"] = normalize_workload_name(params["name"])
            detail["elements"] = len(params.get("elements", []))
        elif kind in ("create", "drop"):
            detail["name"] = normalize_workload_name(params["name"])
        elif kind == "reshard":
            detail["shards"] = params.get("shards")
        return query_fingerprint(kind, detail)

    def _capture_params(self, query: Query, result, status: str) -> dict:
        """The replayable parameter set for one capture record.

        Join records store the *resolved* plan (from the metrics of the
        run that answered) rather than ``"auto"``, so replay re-executes
        the same physical plan regardless of how statistics or models
        have drifted since the capture.
        """
        params = query.params
        kind = query.kind
        if kind == "join":
            out = {
                "r": params["r"],
                "s": params["s"],
                "algorithm": params.get("algorithm", "auto"),
                "num_partitions": params.get("num_partitions"),
                "engine": params.get("engine", "numpy"),
                "seed": params.get("seed", 0),
            }
            if "signature_bits" in params:
                out["signature_bits"] = params["signature_bits"]
            if status == "ok" and result is not None:
                __, metrics = result
                out["algorithm"] = metrics.algorithm
                out["num_partitions"] = metrics.num_partitions
                out["signature_bits"] = metrics.signature_bits
            return {
                key: value for key, value in out.items() if value is not None
            }
        if kind == "probe":
            return {
                "name": params["name"],
                "elements": list(params.get("elements", [])),
            }
        if kind in ("create", "drop"):
            return {"name": params["name"]}
        if kind == "reshard":
            return {"shards": params.get("shards")}
        return {}

    def _remaining(self, query: Query) -> float | None:
        """Seconds of deadline left; raises when already spent."""
        if query.deadline is None:
            return None
        remaining = query.deadline - self._clock()
        if remaining <= 0:
            raise DeadlineExceeded(
                f"query {query.query_id} ({query.kind}) deadline elapsed "
                f"{-remaining:.3f}s ago"
            )
        return remaining

    def _execute(self, ticket: QueryTicket):
        query = ticket.query
        self._remaining(query)  # expired while queued → typed rejection
        if query.kind == "join":
            return self._execute_join(ticket)
        if query.kind == "probe":
            return self.db.probe(
                query.params["name"], query.params["elements"]
            )
        if query.kind == "create":
            result = self.db.create_relation(
                query.params["name"], query.params["rows"]
            )
            if self._plan_cache is not None:
                self._plan_cache.invalidate(query.params["name"])
            return result
        if query.kind == "drop":
            result = self.db.drop_relation(query.params["name"])
            if self._plan_cache is not None:
                self._plan_cache.invalidate(query.params["name"])
            return result
        if query.kind == "reshard":
            if not hasattr(self.db, "reshard"):
                raise ConfigurationError(
                    "reshard requires a sharded database (open the "
                    "service with shards=N)"
                )
            self.db.reshard(query.params["shards"])
            return len(self.db.shard_ids)
        raise ConfigurationError(f"unknown query kind {query.kind!r}")

    def _execute_join(self, ticket: QueryTicket):
        query = ticket.query
        context = query.context
        params = query.params
        r_name, s_name = params["r"], params["s"]
        algorithm = params.get("algorithm", "auto")
        num_partitions = params.get("num_partitions")
        prediction = None
        plan = None
        flight_on = self._flight is not None and context is not None
        ledger_on = self._ledger is not None or self._capture is not None
        if algorithm == "auto" and (
            self.drift_path is not None or self._plan_cache is not None
            or flight_on or ledger_on
        ):
            # Plan explicitly — through the cache when enabled — so the
            # prediction that drove the choice is in hand for the drift
            # record afterwards.
            plan = self._plan_for(r_name, s_name)
            if self.drift_path is not None:
                prediction = plan.prediction(self.db.model)
            algorithm, num_partitions = plan.algorithm, plan.k

        tracer = None
        if self.trace_path is not None or flight_on:
            from ..obs.trace import Tracer

            # Tagged with the query id so every span — including the
            # ones workers and shards ship back — stitches to this
            # query in a mixed-traffic JSONL file.
            tracer = Tracer(tags={"query_id": query.query_id})
        if context is not None and (flight_on or ledger_on):
            if plan is not None:
                context.plan = {
                    "algorithm": plan.algorithm,
                    "k": plan.k,
                    "predicted_seconds": plan.predicted_seconds,
                    # Optimizer densities feed the workload fingerprint;
                    # rounded so sampling jitter does not split shapes.
                    "theta_r": round(plan.theta_r, 3),
                    "theta_s": round(plan.theta_s, 3),
                }
                if flight_on:
                    context.plan["explain"] = plan.explain().splitlines()
            else:
                # A named algorithm skips the optimizer; the request
                # itself is the plan of record.
                context.plan = {
                    "algorithm": algorithm,
                    "k": num_partitions,
                    "requested": True,
                }
        baseline = self._registry.snapshot() if flight_on else None

        def attempt(backend: str):
            remaining = self._remaining(query)
            shard_timeout = self.shard_timeout
            if remaining is not None:
                shard_timeout = (
                    remaining if shard_timeout is None
                    else min(shard_timeout, remaining)
                )
            ticket.attempts += 1
            number = ticket.attempts
            if context is not None:
                context.event("attempt", number=number, backend=backend)
            span = None
            if tracer is not None:
                span = tracer.start("attempt", number=number, backend=backend)
            try:
                result = self.db.join(
                    r_name, s_name,
                    algorithm=algorithm,
                    num_partitions=num_partitions,
                    workers=self.workers,
                    backend=backend if self.workers > 1 else "serial",
                    shard_timeout=shard_timeout,
                    shard_hook=self.chaos,
                    tracer=tracer,
                    query_id=query.query_id,
                    **{k: v for k, v in params.items()
                       if k in ("signature_bits", "engine", "seed")},
                )
            except BaseException as error:
                if span is not None:
                    span.set(error=type(error).__name__)
                    tracer.finish(span)
                if context is not None:
                    context.event(
                        "attempt.failed", number=number, backend=backend,
                        error=type(error).__name__,
                    )
                raise
            if span is not None:
                tracer.finish(span)
            if context is not None:
                context.event("attempt.ok", number=number, backend=backend)
            return result

        def on_retry(attempt_number: int, error: BaseException) -> None:
            self._retries.inc()
            if context is not None:
                context.event(
                    "retry", after_attempt=attempt_number,
                    error=type(error).__name__,
                )

        root = None
        if tracer is not None:
            root = tracer.start("query", kind=query.kind, r=r_name, s=s_name)
        try:
            pairs, metrics = run_with_retries(
                attempt, self.retry_policy, ladder=self._ladder,
                deadline=query.deadline, clock=self._clock, sleep=self._sleep,
                rng=self._rng,
                on_retry=on_retry,
            )
        except BaseException as error:
            if root is not None:
                root.set(error=type(error).__name__)
            raise
        finally:
            # The trace must survive the failure path — a postmortem
            # without its span tree is half a postmortem.
            if tracer is not None:
                if root is not None:
                    tracer.finish(root)
                if flight_on:
                    context.spans = tracer.export()
                    context.registry_delta = self._condensed_delta(baseline)
                if self.trace_path is not None:
                    self._append_trace(tracer)
        if prediction is not None:
            self._record_drift(prediction, metrics)
        return pairs, metrics

    def _condensed_delta(self, baseline: dict) -> dict:
        """Registry movement during one query, condensed to values
        (counters/gauges) and ``{count, sum}`` pairs (histograms)."""
        out = {}
        for name, entry in self._registry.delta(baseline).items():
            if entry["kind"] == "histogram":
                out[name] = {"count": entry["count"], "sum": entry["sum"]}
            else:
                out[name] = entry["value"]
        return out

    def _plan_for(self, r_name: str, s_name: str):
        """Plan a join, reusing a cached plan when its statistics
        fingerprint matches the current relations and model."""
        drift_history = self._drift_history()
        if self._plan_cache is None:
            return self.db.plan(r_name, s_name, drift_history=drift_history)
        from ..core.optimizer import plan_from_statistics

        model = self.db.refresh_model()
        r_size, theta_r = self.db._statistics(r_name)
        s_size, theta_s = self.db._statistics(s_name, seed=1)
        key = (
            r_name, s_name, r_size, round(theta_r, 9), s_size,
            round(theta_s, 9), model.c1, model.c2, model.c3,
        )
        plan = self._plan_cache.lookup(key)
        if plan is None:
            plan = plan_from_statistics(
                r_size, s_size, theta_r, theta_s, model,
                drift_history=drift_history,
            )
            self._plan_cache.store(key, plan)
        return plan

    # ------------------------------------------------------------------
    # The closed loop under traffic
    # ------------------------------------------------------------------

    def _drift_history(self):
        import os

        if self.drift_path is None or not os.path.exists(self.drift_path):
            return None
        return self.drift_path

    def _record_drift(self, prediction: dict, metrics) -> None:
        from ..obs.drift import append_drift_jsonl, compute_drift, record_drift

        record = compute_drift(prediction, metrics)
        record_drift(record, registry=self._registry)
        append_drift_jsonl(record, self.drift_path)
        if self._current_context is not None:
            self._current_context.drift = record.to_dict()
        if self.recalibrate_every:
            self._joins_since_recalibration += 1
            if self._joins_since_recalibration >= self.recalibrate_every:
                self._joins_since_recalibration = 0
                self._maybe_recalibrate()

    def _maybe_recalibrate(self) -> None:
        from ..obs.adaptive import Recalibrator

        store = self.db.model_store
        if store is None:
            return
        recalibrator = Recalibrator(store=store, registry=self._registry)
        # Judge the active refit on its *post-fit* drift first; a
        # reverted model skips refitting this cycle, so one bad window
        # cannot be reinstated in the same breath it was rolled back.
        rollback = recalibrator.maybe_rollback(self.drift_path)
        if rollback.reverted:
            self._model_changed()
            return
        outcome = recalibrator.maybe_recalibrate(self.drift_path)
        if outcome.refit:
            self._model_changed()

    def _model_changed(self) -> None:
        self.db.refresh_model()
        if self._plan_cache is not None:
            self._plan_cache.clear()

    def _append_trace(self, tracer) -> None:
        import json

        from ..obs.export import span_records

        with self._trace_lock, open(self.trace_path, "a") as handle:
            for record in span_records(tracer):
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    # Event routing into the active query's timeline
    # ------------------------------------------------------------------

    def _breaker_event(self, backend: str, old: str, new: str) -> None:
        context = self._current_context
        if context is not None:
            context.event("breaker", backend=backend, old=old, new=new)

    def _chaos_event(self, kind: str, shard: "int | None") -> None:
        context = self._current_context
        if context is not None:
            context.event("chaos", fault=kind, shard=shard)

    # ------------------------------------------------------------------
    # Debug surfaces (HTTP GET /debug/*)
    # ------------------------------------------------------------------

    def debug_queries(self) -> "list[dict] | None":
        """Flight-recorder ring summaries, or ``None`` when disabled."""
        if self._flight is None:
            return None
        return self._flight.entries()

    def debug_query(self, query_id: int) -> "dict | None":
        """Full evidence (or postmortem) for one query id."""
        if self._flight is None:
            return None
        return self._flight.get(query_id)

    def profile_report(self, top: int = 15) -> "dict | None":
        """Sampling-profiler attribution, or ``None`` when disabled."""
        if self._profiler is None:
            return None
        return self._profiler.report(top=top)

    def debug_workload(self, top: int = 5) -> "dict | None":
        """Workload-ledger report (totals, reconciliation, heavy
        hitters), or ``None`` when the ledger is disabled."""
        if self._ledger is None:
            return None
        report = self._ledger.report(top=top)
        if self._capture is not None:
            report["capture"] = {"path": self._capture.path}
        return report

    def debug_slo(self) -> "dict | None":
        """SLO window states and burn rates, or ``None`` when no
        tracker is configured."""
        if self._slo is None:
            return None
        return self._slo.report()

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Service-level snapshot for ``/readyz`` and the CLI."""
        snapshot = {
            "state": self._state,
            "queue_depth": len(self._queue),
            "workers": self.workers,
            "preferred_backend": self.backend,
            "effective_backend": self._ladder.select(),
            "breakers": {
                name: breaker.state
                for name, breaker in self._ladder.breakers.items()
            },
        }
        if hasattr(self.db, "shard_ids"):
            snapshot["shards"] = len(self.db.shard_ids)
        if self._plan_cache is not None:
            snapshot["plan_cache"] = {
                "entries": len(self._plan_cache),
                "capacity": self._plan_cache.size,
                "hits": self._plan_cache.hits.value,
                "misses": self._plan_cache.misses.value,
            }
        if self._flight is not None:
            snapshot["flight_recorder"] = {
                "capacity": self._flight.capacity,
                "recorded": len(self._flight.entries()),
                "postmortems": len(self._flight.postmortems()),
            }
        if self._slo is not None:
            snapshot["slo"] = self._slo.report()
        if self._ledger is not None:
            snapshot["workload"] = {
                "queries": self._ledger.queries,
                "fingerprints": self._ledger.fingerprints,
            }
        if self._capture is not None:
            snapshot["capture"] = {"path": self._capture.path}
        if self._profiler is not None:
            snapshot["profiler"] = {
                "hz": self._profiler.hz,
                "samples": self._profiler.report(top=0)["samples"],
                "overhead": self._profiler.overhead,
            }
        return snapshot
