"""Load generator + correctness oracle for the query service.

Replays a mixed workload — full containment joins, point probes,
catalog churn — against a running :class:`~repro.service.core.QueryService`
at a configurable QPS, while a
:class:`~repro.service.chaos.ChaosInjector` (armed by the caller) kills
workers, delays shards and injects I/O faults underneath it.

The harness is an *oracle*, not just a traffic source: before the run it
computes the expected answer for every query shape through the same
service with chaos disarmed (joins and probes are deterministic, so one
clean pass pins the truth), then classifies every chaotic outcome:

* **ok** — answered, bit-identical to the expected answer;
* **wrong** — answered, *different* from the expected answer.  The
  paper's kernel plus the retry layer promise this is impossible;
  :meth:`LoadReport.assert_no_wrong_answers` is the chaos suite's core
  assertion;
* **shed / unavailable / deadline_exceeded / failed** — cleanly
  rejected with the corresponding typed error.  Acceptable under
  chaos; *unclassified* exceptions are not, and are re-raised.

Pacing and randomness are injectable (``clock``/``sleep``/``seed``) so
CI runs are deterministic and fast.

When the service under load was built with ``capture_path=...``, every
query the generator sends is also appended to the workload capture —
``repro replay`` can then re-execute the (chaos-free) run and diff
answers and deterministic resources, which is how the CI
``workload-replay`` job closes the loop.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..errors import (
    AdmissionRejected,
    ConfigurationError,
    DeadlineExceeded,
    ServiceUnavailable,
    SetJoinError,
)
from .core import QueryService

__all__ = ["WorkloadMix", "LoadReport", "LoadGenerator"]


@dataclass(frozen=True)
class WorkloadMix:
    """Relative weights of the query classes.

    ``reshard`` (default 0: off) only makes sense against a sharded
    database — it grows/shrinks the shard layout under traffic, so the
    chaos harness exercises rebalancing concurrently with joins.
    """

    join: float = 0.2
    probe: float = 0.7
    churn: float = 0.1
    reshard: float = 0.0

    def __post_init__(self):
        if min(self.join, self.probe, self.churn, self.reshard) < 0:
            raise ConfigurationError("workload weights must be >= 0")
        if self._total() <= 0:
            raise ConfigurationError("workload mix must have positive mass")

    def _total(self) -> float:
        return self.join + self.probe + self.churn + self.reshard

    def pick(self, rng: random.Random) -> str:
        roll = rng.random() * self._total()
        if roll < self.join:
            return "join"
        if roll < self.join + self.probe:
            return "probe"
        if roll < self.join + self.probe + self.churn:
            return "churn"
        return "reshard"


@dataclass
class LoadReport:
    """Tally of one load run, by outcome class."""

    submitted: int = 0
    ok: int = 0
    wrong: int = 0
    shed: int = 0
    unavailable: int = 0
    deadline_exceeded: int = 0
    failed: int = 0
    retried_queries: int = 0
    wrong_details: list = field(default_factory=list)

    @property
    def answered(self) -> int:
        return self.ok + self.wrong

    @property
    def accounted(self) -> int:
        """Every submitted query must land in exactly one bucket."""
        return (self.answered + self.shed + self.unavailable
                + self.deadline_exceeded + self.failed)

    def assert_no_wrong_answers(self) -> None:
        if self.wrong:
            raise AssertionError(
                f"{self.wrong} wrong answer(s) under chaos: "
                f"{self.wrong_details[:3]}"
            )
        if self.accounted != self.submitted:
            raise AssertionError(
                f"query accounting leak: {self.submitted} submitted but "
                f"{self.accounted} accounted for"
            )

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted, "ok": self.ok, "wrong": self.wrong,
            "shed": self.shed, "unavailable": self.unavailable,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed, "retried_queries": self.retried_queries,
        }


class LoadGenerator:
    """Drive a service with a seeded mixed workload and check every answer.

    ``r_name``/``s_name`` are the stored relations joined and probed.
    ``probe_count`` distinct probe queries are derived from ``s``'s
    stored sets (so most probes have non-empty answers).  Churn queries
    create then drop ``scratch_<n>`` relations with a known row count.

    Call :meth:`prepare` once while chaos is *disarmed* to pin expected
    answers, then :meth:`run` (any number of times) with chaos armed.
    """

    def __init__(
        self,
        service: QueryService,
        r_name: str,
        s_name: str,
        *,
        qps: float = 50.0,
        mix: WorkloadMix | None = None,
        probe_count: int = 8,
        deadline: float | None = None,
        seed: int = 0,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        if qps <= 0:
            raise ConfigurationError(f"qps must be positive, got {qps}")
        self.service = service
        self.r_name = r_name
        self.s_name = s_name
        self.qps = qps
        self.mix = mix if mix is not None else WorkloadMix()
        self.probe_count = probe_count
        self.deadline = deadline
        if self.mix.reshard > 0 and not hasattr(service.db, "reshard"):
            raise ConfigurationError(
                "a reshard workload weight requires a sharded database"
            )
        self.rng = random.Random(seed)
        self._clock = clock
        self._sleep = sleep
        self._scratch = 0
        self._base_shards = (
            len(service.db.shard_ids)
            if hasattr(service.db, "shard_ids") else 0
        )
        self._grow_next = True
        self.expected_pairs: "set[tuple[int, int]] | None" = None
        self.expected_probes: "list[tuple[list[int], list[int]]]" = []

    # ------------------------------------------------------------------

    def prepare(self) -> "LoadGenerator":
        """Pin expected answers with a clean pass (chaos must be off)."""
        pairs, __ = self.service.join(self.r_name, self.s_name)
        self.expected_pairs = set(pairs)
        self.expected_probes = []
        store = self.service.db.get_store(self.s_name)
        stored = [elements for __, elements, __ in store.scan()]
        for index in range(self.probe_count):
            if stored and index % 2 == 0:
                # Subset of a stored set: guaranteed at least one match.
                source = sorted(self.rng.choice(stored))
                size = max(1, len(source) // 2)
                elements = sorted(self.rng.sample(source, size))
            else:
                elements = sorted(
                    self.rng.sample(range(1, 5001), self.rng.randint(2, 6))
                )
            expected = self.service.probe(self.s_name, elements)
            self.expected_probes.append((elements, expected))
        return self

    # ------------------------------------------------------------------

    def run(self, queries: int) -> LoadReport:
        """Submit ``queries`` paced queries, wait, classify everything."""
        if self.expected_pairs is None:
            raise ConfigurationError(
                "call prepare() before run() to pin expected answers"
            )
        report = LoadReport()
        pending: "list[tuple[str, object, object]]" = []
        interval = 1.0 / self.qps
        for __ in range(queries):
            kind = self.mix.pick(self.rng)
            try:
                pending.append(self._submit(kind))
            except AdmissionRejected:
                report.shed += 1
            except ServiceUnavailable:
                report.unavailable += 1
            report.submitted += 1
            self._sleep(interval)
        for kind, expected, ticket in pending:
            self._classify(report, kind, expected, ticket)
        return report

    def _submit(self, kind: str):
        service = self.service
        if kind == "join":
            ticket = service.submit(
                "join", deadline=self.deadline,
                r=self.r_name, s=self.s_name,
            )
            return ("join", self.expected_pairs, ticket)
        if kind == "probe":
            elements, expected = self.rng.choice(self.expected_probes)
            ticket = service.submit(
                "probe", deadline=self.deadline,
                name=self.s_name, elements=list(elements),
            )
            return ("probe", expected, ticket)
        if kind == "reshard":
            # Alternate base ↔ base+1 so every reshard moves real rows
            # and the layout always ends within one shard of where it
            # started; the lane serializes it against in-flight joins.
            target = (
                self._base_shards + 1 if self._grow_next
                else self._base_shards
            )
            self._grow_next = not self._grow_next
            ticket = service.submit("reshard", shards=target)
            return ("reshard", target, ticket)
        # Churn: a create immediately chased by its drop; FIFO ordering
        # in the single lane guarantees the create lands first.
        self._scratch += 1
        name = f"scratch_{self._scratch}"
        rows = [(tid, [tid, tid + 1, tid + 2]) for tid in range(1, 6)]
        create = service.submit("create", name=name, rows=rows)
        drop = service.submit("drop", name=name)
        return ("churn", (create, len(rows)), drop)

    def _classify(self, report: LoadReport, kind: str, expected,
                  ticket) -> None:
        try:
            if kind == "churn":
                create_ticket, expected_count = expected
                count = create_ticket.result(timeout=60.0)
                ticket.result(timeout=60.0)  # the drop
                answer, expected = count, expected_count
            else:
                answer = ticket.result(timeout=60.0)
                if kind == "join":
                    answer = set(answer[0])  # (pairs, metrics)
        except AdmissionRejected:
            report.shed += 1
            return
        except DeadlineExceeded:
            report.deadline_exceeded += 1
            return
        except ServiceUnavailable:
            report.unavailable += 1
            return
        except SetJoinError:
            report.failed += 1
            return
        if getattr(ticket, "attempts", 0) > 1:
            report.retried_queries += 1
        if kind == "probe":
            answer = sorted(answer)
            expected = sorted(expected)
        if answer == expected:
            report.ok += 1
        else:
            report.wrong += 1
            report.wrong_details.append({
                "kind": kind,
                "query_id": ticket.query_id,
                "expected": _preview(expected),
                "answer": _preview(answer),
            })


def _preview(value, limit: int = 5):
    """Shorten huge answers in wrong-answer diagnostics."""
    if isinstance(value, (set, frozenset)):
        value = sorted(value)
    if isinstance(value, list) and len(value) > limit:
        return value[:limit] + [f"... {len(value) - limit} more"]
    return value
