"""Long-lived query service over the set-containment join engine.

The paper's algorithm ran as a one-shot experiment; this package makes
it a resident, failure-tolerant process:

* :mod:`.queue` — bounded admission with explicit shedding;
* :mod:`.core` — :class:`QueryService`: the execution lane, per-query
  deadlines propagated into shard timeouts, drift recording, graceful
  drain-then-close shutdown;
* :mod:`.retry` — exponential backoff with jitter plus a per-backend
  circuit breaker degrading ``process`` → ``thread`` → ``serial``;
* :mod:`.http` — stdlib HTTP front end (``/join``, ``/probe``,
  ``/readyz``, plus the inherited ``/metrics``/``/healthz``);
* :mod:`.chaos` — seeded fault injection at the shard hook (worker
  kills, stragglers, I/O faults);
* :mod:`.loadgen` — a paced mixed-workload harness that checks every
  answer against a pre-chaos oracle;
* :mod:`.capture` — workload capture (fingerprinted per-query records
  with resolved plans, resource ledgers, and answer digests) and
  deterministic replay (``repro replay``).

See ``docs/service.md`` for the operational model.
"""

from .capture import (
    ReplayReport,
    WorkloadCapture,
    WorkloadRecord,
    answer_digest,
    read_capture,
    replay_capture,
)
from .chaos import ChaosConfig, ChaosInjector
from .core import QueryService, ServiceState
from .http import ServiceServer
from .loadgen import LoadGenerator, LoadReport, WorkloadMix
from .queue import AdmissionQueue, Query, QueryTicket
from .retry import (
    DEGRADATION_ORDER,
    BackendLadder,
    CircuitBreaker,
    RetryPolicy,
    run_with_retries,
)

__all__ = [
    "QueryService",
    "ServiceState",
    "ServiceServer",
    "AdmissionQueue",
    "Query",
    "QueryTicket",
    "RetryPolicy",
    "CircuitBreaker",
    "BackendLadder",
    "DEGRADATION_ORDER",
    "run_with_retries",
    "ChaosConfig",
    "ChaosInjector",
    "LoadGenerator",
    "LoadReport",
    "WorkloadMix",
    "WorkloadCapture",
    "WorkloadRecord",
    "ReplayReport",
    "answer_digest",
    "read_capture",
    "replay_capture",
]
