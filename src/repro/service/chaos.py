"""Chaos injection for the query service.

:mod:`repro.storage.faults` proved the *disk substrate* survives torn
writes and bit rot; this module generalizes that discipline one level
up, to the *system*: workers that die mid-shard, shards that stall, and
I/O that fails under load.  A :class:`ChaosInjector` plugs into the
parallel engine's shard hook (every :class:`~repro.parallel.worker.ShardSpec`
passes through it just before dispatch) and, with configured
probabilities, arms one of three faults:

* **worker kill** — ``spec.chaos_kill``: a worker process hard-exits
  (``os._exit``), which the parent sees as a broken pool — exactly an
  OOM kill; on in-process backends the death is simulated with
  :class:`~repro.storage.faults.SimulatedWorkerDeath`.
* **shard delay** — ``spec.chaos_delay``: the shard sleeps before
  joining, modelling a straggler; with a shard timeout armed this is
  how deadline propagation is exercised.
* **I/O fault** — ``spec.fail_after``: the worker's own
  :class:`~repro.storage.faults.FaultInjectingDiskManager` fails after a
  budget of physical I/Os (file-backed shards only — an inline shard has
  no disk to fail, so the injector falls through to the other modes).

All randomness comes from one seeded generator, so a chaotic run is
*replayable*: the same seed over the same workload arms the same faults
in the same order.  Injection counts are published as
``setjoin_chaos_*_total`` counters and kept on the injector for the
load harness's report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["ChaosConfig", "ChaosInjector"]


@dataclass(frozen=True)
class ChaosConfig:
    """Per-shard fault probabilities (each in [0, 1]) and magnitudes.

    Rates are evaluated in order kill → delay → I/O fault per shard, at
    most one fault per shard, so the harness's error-rate bound is a
    simple function of the configured rates.
    """

    worker_kill_rate: float = 0.0
    shard_delay_rate: float = 0.0
    delay_seconds: float = 0.05
    io_fault_rate: float = 0.0
    io_fault_after: int = 0

    def __post_init__(self):
        for name in ("worker_kill_rate", "shard_delay_rate", "io_fault_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.delay_seconds < 0:
            raise ConfigurationError("delay_seconds must be >= 0")
        if self.io_fault_after < 0:
            raise ConfigurationError("io_fault_after must be >= 0")


class ChaosInjector:
    """Seeded, toggleable fault source; use as the engine's shard hook.

    Starts disarmed; :meth:`arm`/:meth:`disarm` toggle injection so the
    harness can take a clean baseline, wreak havoc, then verify a final
    clean pass through the same code path.
    """

    def __init__(self, config: ChaosConfig, seed: int = 0, registry=None):
        from ..obs.registry import get_registry

        self.config = config
        self.rng = random.Random(seed)
        self.armed = False
        registry = registry if registry is not None else get_registry()
        self._kill_counter = registry.counter(
            "setjoin_chaos_worker_kills_total",
            "Worker kills armed by the chaos injector",
        )
        self._delay_counter = registry.counter(
            "setjoin_chaos_shard_delays_total",
            "Shard delays armed by the chaos injector",
        )
        self._io_counter = registry.counter(
            "setjoin_chaos_io_faults_total",
            "Worker I/O faults armed by the chaos injector",
        )
        self.kills = 0
        self.delays = 0
        self.io_faults = 0
        #: optional ``callback(kind, shard_index)`` fired when a fault is
        #: armed (kinds: ``worker_kill``/``shard_delay``/``io_fault``);
        #: the service routes these into the active query's timeline so a
        #: postmortem shows which chaos hit which shard.
        self.on_event = None

    def arm(self) -> "ChaosInjector":
        self.armed = True
        return self

    def disarm(self) -> None:
        self.armed = False

    @property
    def injected(self) -> int:
        """Total faults armed so far (harness bookkeeping)."""
        return self.kills + self.delays + self.io_faults

    def __call__(self, spec) -> None:
        """The shard hook: maybe arm one fault on this spec."""
        if not self.armed:
            return
        config = self.config
        roll = self.rng.random()
        if roll < config.worker_kill_rate:
            spec.chaos_kill = True
            self.kills += 1
            self._kill_counter.inc()
            self._notify("worker_kill", spec)
            return
        roll -= config.worker_kill_rate
        if roll < config.shard_delay_rate:
            spec.chaos_delay = config.delay_seconds
            self.delays += 1
            self._delay_counter.inc()
            self._notify("shard_delay", spec)
            return
        roll -= config.shard_delay_rate
        if roll < config.io_fault_rate and spec.file_source is not None:
            # Only file-backed shards own a disk manager to fail; inline
            # shards fall through unharmed (the kill/delay modes still
            # cover them).
            spec.fail_after = config.io_fault_after
            self.io_faults += 1
            self._io_counter.inc()
            self._notify("io_fault", spec)

    def _notify(self, kind: str, spec) -> None:
        if self.on_event is not None:
            self.on_event(kind, getattr(spec, "index", None))
