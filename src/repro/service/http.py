"""HTTP front end for the query service.

Extends the metrics server (:mod:`repro.obs.serve`) — same stdlib
``ThreadingHTTPServer``, same restart-safe lifecycle, same bearer-token
gate on ``/metrics`` — with the service routes:

* ``POST /join`` — ``{"r": ..., "s": ..., "deadline": seconds?,
  "algorithm"?, "num_partitions"?}`` → ``{"pairs": [[r, s], ...],
  "metrics": {...}}``;
* ``POST /probe`` — ``{"name": ..., "elements": [...],
  "deadline"?}`` → ``{"tids": [...]}``;
* ``GET /readyz`` — 200 only while the service is READY; 503 with the
  lifecycle state otherwise, which is what flips a load balancer away
  during drain.  ``GET /healthz`` (inherited) stays 200 for the whole
  process lifetime — liveness and readiness are different questions.
* ``GET /debug/queries`` — flight-recorder ring summaries (newest
  first); ``GET /debug/query/<id>`` — one query's full evidence
  (timeline, plan, drift, span tree; the frozen postmortem for failed
  or objective-breaching queries); ``GET /debug/profile`` — the
  sampling profiler's phase attribution; ``GET /debug/workload`` —
  the workload ledger's heavy-hitter report (totals, reconciliation,
  top fingerprints by wall/pages/comparisons; ``?top=N`` widens it);
  ``GET /debug/slo`` — SLO window states and burn rates.  All debug
  routes are token-gated like ``/metrics`` (query evidence names
  relations and carries plans) and return 404 when the corresponding
  layer is disabled.

Typed service errors map onto transport status codes and every error
body carries the error class name, so a load generator can tally sheds
vs deadline misses vs real failures without string matching:

==============================  ====
:class:`AdmissionRejected`      429
:class:`ServiceUnavailable`     503
:class:`DeadlineExceeded`       504
:class:`ConfigurationError`     400
other :class:`SetJoinError`     500
==============================  ====
"""

from __future__ import annotations

import json

from ..errors import (
    AdmissionRejected,
    ConfigurationError,
    DeadlineExceeded,
    ServiceUnavailable,
    SetJoinError,
)
from ..obs.serve import MetricsServer, _Handler
from .core import QueryService

__all__ = ["ServiceServer", "STATUS_FOR_ERROR"]

#: Most-derived classes first; the handler walks this in order.
STATUS_FOR_ERROR = (
    (AdmissionRejected, 429),
    (ServiceUnavailable, 503),
    (DeadlineExceeded, 504),
    (ConfigurationError, 400),
    (SetJoinError, 500),
)

#: Upper bound on accepted request bodies (a probe or join request is
#: tiny; anything larger is a mistake or abuse).
_MAX_BODY = 1 << 20


class _ServiceHandler(_Handler):
    server_version = "setjoin-service/1.0"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        route = self.path.split("?", 1)[0]
        if route == "/readyz":
            service: QueryService = self.server.service
            stats = service.stats()
            status = 200 if service.ready else 503
            self._reply(
                status, "application/json",
                json.dumps(stats, sort_keys=True).encode(),
            )
        elif route in ("/debug/queries", "/debug/profile",
                       "/debug/workload", "/debug/slo") \
                or route.startswith("/debug/query/"):
            if not self._authorized():
                self._reply(401, "application/json",
                            json.dumps({"error": "unauthorized"}).encode())
                return
            try:
                status, body = self._handle_debug(route)
            except Exception as error:  # noqa: BLE001 — mapped to codes
                self._reply_error(error)
                return
            self._reply(status, "application/json",
                        json.dumps(body, sort_keys=True).encode())
        else:
            super().do_GET()

    def _handle_debug(self, route: str) -> "tuple[int, dict | list]":
        service: QueryService = self.server.service
        if route == "/debug/queries":
            entries = service.debug_queries()
            if entries is None:
                return 404, {"error": "flight recorder disabled"}
            return 200, {"queries": entries}
        if route == "/debug/profile":
            report = service.profile_report()
            if report is None:
                return 404, {"error": "profiler disabled"}
            return 200, report
        if route == "/debug/workload":
            top = 5
            query_string = self.path.partition("?")[2]
            for part in query_string.split("&"):
                if part.startswith("top="):
                    try:
                        top = int(part[len("top="):])
                    except ValueError:
                        raise ConfigurationError(
                            f"top must be an integer, got {part!r}"
                        ) from None
            report = service.debug_workload(top=top)
            if report is None:
                return 404, {"error": "workload ledger disabled"}
            return 200, report
        if route == "/debug/slo":
            report = service.debug_slo()
            if report is None:
                return 404, {"error": "slo tracker disabled"}
            return 200, report
        raw = route[len("/debug/query/"):]
        try:
            query_id = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"query id must be an integer, got {raw!r}"
            ) from None
        entry = service.debug_query(query_id)
        if entry is None:
            if service.debug_queries() is None:
                return 404, {"error": "flight recorder disabled"}
            return 404, {"error": f"query {query_id} not recorded"}
        return 200, entry

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        route = self.path.split("?", 1)[0]
        if route not in ("/join", "/probe"):
            self._reply(404, "application/json", json.dumps(
                {"error": "not found",
                 "endpoints": ["/join", "/probe", "/readyz", "/healthz",
                               "/metrics", "/debug/queries",
                               "/debug/query/<id>", "/debug/profile",
                               "/debug/workload", "/debug/slo"]}
            ).encode())
            return
        try:
            request = self._read_json()
            if route == "/join":
                body = self._handle_join(request)
            else:
                body = self._handle_probe(request)
        except Exception as error:  # noqa: BLE001 — mapped to status codes
            self._reply_error(error)
            return
        self._reply(200, "application/json",
                    json.dumps(body, sort_keys=True).encode())

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > _MAX_BODY:
            raise ConfigurationError(
                f"request body must be 1..{_MAX_BODY} bytes, got {length}"
            )
        try:
            request = json.loads(self.rfile.read(length))
        except ValueError as error:
            raise ConfigurationError(
                f"request body is not valid JSON: {error}"
            ) from error
        if not isinstance(request, dict):
            raise ConfigurationError("request body must be a JSON object")
        return request

    def _handle_join(self, request: dict) -> dict:
        service: QueryService = self.server.service
        params = {}
        for key in ("algorithm", "num_partitions", "signature_bits",
                    "engine", "seed"):
            if key in request:
                params[key] = request[key]
        pairs, metrics = service.join(
            self._required(request, "r"), self._required(request, "s"),
            deadline=request.get("deadline"), **params,
        )
        return {
            "pairs": sorted(list(pair) for pair in pairs),
            "metrics": {
                "algorithm": metrics.algorithm,
                "num_partitions": metrics.num_partitions,
                "signature_comparisons": metrics.signature_comparisons,
                "replicated_signatures": metrics.replicated_signatures,
                "total_seconds": metrics.total_seconds,
            },
        }

    def _handle_probe(self, request: dict) -> dict:
        service: QueryService = self.server.service
        elements = self._required(request, "elements")
        if not isinstance(elements, list):
            raise ConfigurationError("elements must be a JSON array")
        tids = service.probe(
            self._required(request, "name"), elements,
            deadline=request.get("deadline"),
        )
        return {"tids": tids}

    @staticmethod
    def _required(request: dict, key: str):
        if key not in request:
            raise ConfigurationError(f"request is missing {key!r}")
        return request[key]

    def _reply_error(self, error: Exception) -> None:
        status = 500
        for klass, code in STATUS_FOR_ERROR:
            if isinstance(error, klass):
                status = code
                break
        body = json.dumps({
            "error": type(error).__name__,
            "detail": str(error),
        }, sort_keys=True).encode()
        self._reply(status, "application/json", body)


class ServiceServer(MetricsServer):
    """The query service's HTTP endpoint.

    Wraps an already-constructed (not necessarily started)
    :class:`QueryService`; starting the server does *not* start the
    service — the CLI sequences ``service.start()`` then
    ``server.start()`` so ``/readyz`` can never be 200 before the
    execution lane exists.  Inherits ``/metrics`` (token-gated),
    ``/healthz``, restart-safe ``start()``/``stop()``.
    """

    handler_class = _ServiceHandler

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 9464, registry=None, token: str | None = None):
        super().__init__(host, port, registry=registry, token=token)
        self.service = service

    def _configure_server(self, httpd) -> None:
        httpd.service = self.service
