"""Shard construction: largest-partition-first (LPT) load balancing.

A partition pair ``(R_p, S_p)`` costs ``|R_p| · |S_p|`` signature
comparisons in the block-nested-loop join — known exactly before the
joining phase starts, because the partitioning phase has already counted
every partition's entries.  Scheduling with exact costs is the classic
minimum-makespan problem; LPT (sort pairs by descending cost, always
assign to the least-loaded shard) is the standard 4/3-approximation and
is effectively optimal here since partition costs are many and varied.

Empty pairs (either side has no entries) are dropped up front: the
serial operator skips them too, and shipping them to workers would only
add overhead.  Shard construction is fully deterministic — ties are
broken by partition index and shard index — so a given input always
yields the same shards, which keeps parallel runs reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["PartitionTask", "Shard", "build_shards", "estimate_pair_cost"]


def estimate_pair_cost(r_size: int, s_size: int) -> int:
    """Estimated cost of joining one partition pair.

    ``|R_p| · |S_p|`` is the exact number of signature comparisons the
    block-nested-loop kernel performs; the ``+ |R_p| + |S_p|`` term
    accounts for the linear scan/decode work so that pathological pairs
    (huge on one side, tiny on the other) are not costed at zero.
    """
    return r_size * s_size + r_size + s_size


@dataclass(frozen=True)
class PartitionTask:
    """One partition pair with its estimated cost."""

    partition: int
    r_size: int
    s_size: int

    @property
    def cost(self) -> int:
        return estimate_pair_cost(self.r_size, self.s_size)


@dataclass
class Shard:
    """A set of partition pairs assigned to one worker."""

    index: int
    partitions: list[int] = field(default_factory=list)
    cost: int = 0

    def add(self, task: PartitionTask) -> None:
        self.partitions.append(task.partition)
        self.cost += task.cost


def build_shards(
    r_sizes: list[int], s_sizes: list[int], num_shards: int
) -> list[Shard]:
    """Pack the non-empty partition pairs into at most ``num_shards``
    shards with LPT balancing.

    Returns only non-empty shards (fewer than ``num_shards`` when there
    are fewer non-empty pairs).  Each shard's partition list is sorted
    ascending so workers scan their B-tree ranges in key order.
    """
    if len(r_sizes) != len(s_sizes):
        raise ConfigurationError(
            f"partition size lists disagree: {len(r_sizes)} vs {len(s_sizes)}"
        )
    if num_shards < 1:
        raise ConfigurationError(f"need >= 1 shard, got {num_shards}")
    tasks = [
        PartitionTask(partition, r_size, s_size)
        for partition, (r_size, s_size) in enumerate(zip(r_sizes, s_sizes))
        if r_size and s_size
    ]
    # LPT: largest first, each onto the currently least-loaded shard.
    tasks.sort(key=lambda task: (-task.cost, task.partition))
    shards = [Shard(index) for index in range(min(num_shards, len(tasks)))]
    if not shards:
        return []
    heap = [(0, shard.index) for shard in shards]
    heapq.heapify(heap)
    for task in tasks:
        load, index = heapq.heappop(heap)
        shards[index].add(task)
        heapq.heappush(heap, (load + task.cost, index))
    for shard in shards:
        shard.partitions.sort()
    return shards
