"""Execution backends: one interface, three interchangeable engines.

``serial`` runs shards in-process in order; ``thread`` uses a
``ThreadPoolExecutor`` (useful when the numpy kernel dominates and
releases the GIL, and as a sanity backend with zero setup cost);
``process`` uses a ``ProcessPoolExecutor``, the backend that actually
scales CPU-bound signature comparison across cores.

Failures are normalized: a shard that exceeds its per-shard timeout, a
pool whose workers died, or a backend that cannot start on this platform
all surface as :class:`~repro.errors.ParallelExecutionError` (or fall
back to ``serial`` where that is safe), never as backend-specific
exceptions like ``BrokenProcessPool``.
"""

from __future__ import annotations

import concurrent.futures
import time
from typing import Sequence

from ..errors import ConfigurationError, ParallelExecutionError
from .worker import ShardResult, ShardSpec, run_shard

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
]

BACKENDS = ("serial", "thread", "process")


class ExecutionBackend:
    """Runs a batch of shard specs and returns their results in order."""

    name = "abstract"

    def available(self) -> bool:
        """Whether this backend can start on the current platform."""
        return True

    def run(
        self, specs: Sequence[ShardSpec], timeout: float | None = None
    ) -> list[ShardResult]:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process, sequential execution.

    The zero-dependency default: same shard kernel, no concurrency, no
    pickling.  Per-shard timeouts are not enforceable without preemption
    and are ignored here (documented behaviour).
    """

    name = "serial"

    def run(
        self, specs: Sequence[ShardSpec], timeout: float | None = None
    ) -> list[ShardResult]:
        return [run_shard(spec) for spec in specs]


class _PoolBackend(ExecutionBackend):
    """Shared submit/collect logic for the executor-pool backends."""

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ConfigurationError(
                f"need >= 1 worker, got {max_workers}"
            )
        self.max_workers = max_workers

    def _make_pool(self):
        raise NotImplementedError

    def run(
        self, specs: Sequence[ShardSpec], timeout: float | None = None
    ) -> list[ShardResult]:
        """Run all shards; ``timeout`` is a batch deadline in seconds.

        The deadline starts when the batch is dispatched and covers the
        whole batch (all shards run concurrently, so one budget bounds
        the caller's wait).  On expiry every not-yet-started future is
        cancelled and the pool is shut down with ``cancel_futures``;
        shards already running cannot be preempted and are *abandoned*
        — see :class:`~repro.errors.ParallelExecutionError` for the
        exact semantics per backend.
        """
        try:
            pool = self._make_pool()
        except Exception as error:  # noqa: BLE001 — platform-dependent startup
            raise ParallelExecutionError(
                f"could not start {self.name} backend: {error}",
                kind="startup",
            ) from error
        try:
            futures = [pool.submit(run_shard, spec) for spec in specs]
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            results = []
            for index, future in enumerate(futures):
                try:
                    remaining = None
                    if deadline is not None:
                        remaining = max(0.0, deadline - time.monotonic())
                    results.append(future.result(timeout=remaining))
                except concurrent.futures.TimeoutError:
                    cancelled = sum(
                        1 for pending in futures[index:] if pending.cancel()
                    )
                    abandoned = len(futures) - index - cancelled
                    raise ParallelExecutionError(
                        f"shard {index} exceeded its {timeout:.3f}s timeout "
                        f"on the {self.name} backend ({cancelled} queued "
                        f"shard(s) cancelled, {abandoned} running shard(s) "
                        "abandoned — they finish in the background but "
                        "their results are discarded)",
                        kind="timeout",
                    ) from None
                except concurrent.futures.process.BrokenProcessPool as error:
                    raise ParallelExecutionError(
                        f"{self.name} backend worker died: {error}",
                        kind="worker_death",
                    ) from error
                except concurrent.futures.BrokenExecutor as error:
                    raise ParallelExecutionError(
                        f"{self.name} backend pool broke: {error}",
                        kind="worker_death",
                    ) from error
            return results
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


class ThreadBackend(_PoolBackend):
    name = "thread"

    def _make_pool(self):
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="setjoins-shard",
        )


class ProcessBackend(_PoolBackend):
    """Worker processes via ``ProcessPoolExecutor``.

    Prefers the ``fork`` start method where the platform offers it (the
    children inherit ``sys.path`` and loaded modules, so shard dispatch
    is cheap); falls back to the platform default otherwise.
    """

    name = "process"

    @staticmethod
    def _context():
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def available(self) -> bool:
        # Sandboxes without a working semaphore implementation (no
        # /dev/shm, seccomp'd sem_open) fail at pool construction; probe
        # cheaply so callers can fall back to serial instead of dying.
        try:
            self._context().Semaphore(1)
            return True
        except Exception:  # noqa: BLE001 — any failure means "unavailable"
            return False

    def _make_pool(self):
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers, mp_context=self._context()
        )


def resolve_backend(
    name: str, workers: int
) -> tuple[ExecutionBackend, str | None]:
    """Instantiate the named backend, falling back to serial when it
    cannot run here.

    Returns ``(backend, fallback_reason)`` — ``fallback_reason`` is
    ``None`` when the requested backend was used, otherwise a short
    human-readable explanation of why serial was substituted.
    """
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown parallel backend {name!r}; expected one of {BACKENDS}"
        )
    if name == "serial" or workers <= 1:
        return SerialBackend(), None
    if name == "thread":
        return ThreadBackend(workers), None
    backend = ProcessBackend(workers)
    if backend.available():
        return backend, None
    return (
        SerialBackend(),
        "process backend unavailable on this platform "
        "(multiprocessing semaphores cannot be created); ran serially",
    )
