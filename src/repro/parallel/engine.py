"""Orchestration: shard, dispatch, merge — for one joining phase.

:func:`run_parallel_join` is called by
``SetContainmentJoin._parallel_join_phase`` between the (serial)
partitioning and verification phases.  It

1. reads the per-partition entry counts the partitioning phase already
   produced and builds LPT-balanced shards (:mod:`.scheduler`),
2. describes each shard as a self-contained :class:`~.worker.ShardSpec`
   — file-backed testbeds are described by path + meta page ids so each
   worker reopens its own read-only storage view; memory-backed
   testbeds (and memory-resident partitions) ship their entries inline,
3. dispatches the shards on the configured backend (:mod:`.executor`),
   falling back to serial execution when the backend cannot start here,
4. merges the per-worker results deterministically (:mod:`.merge`).

Worker failures are re-raised as
:class:`~repro.errors.ParallelExecutionError`; the operator's existing
failure path then drops the temporary partition stores, so an aborted
parallel join leaves no orphaned spill pages behind.
"""

from __future__ import annotations

from ..core.metrics import JoinMetrics
from ..errors import ParallelExecutionError
from ..obs.registry import get_registry
from ..obs.trace import current_tracer
from ..storage.pager import FileDiskManager
from .executor import resolve_backend
from .merge import merge_shard_pairs, merge_worker_metrics
from .scheduler import build_shards
from .worker import FileSource, ShardSpec

__all__ = ["run_parallel_join"]


def run_parallel_join(
    join, parts_r, parts_s
) -> tuple[list[tuple[int, int]], JoinMetrics]:
    """Run the joining phase of ``join`` across its configured workers.

    Returns ``(pairs, worker_metrics)``: the deduplicated candidate
    pairs sorted by tid, and the workers' aggregated metric shares
    (signature comparisons, worker-side page I/O, summed worker
    seconds).  Raises :class:`ParallelExecutionError` if any worker
    fails or times out.
    """
    k = join.partitioner.num_partitions
    r_sizes = [join._partition_size_r(parts_r, p) for p in range(k)]
    s_sizes = [join._partition_size_s(parts_s, p) for p in range(k)]
    template = JoinMetrics(
        algorithm=join.partitioner.name,
        num_partitions=k,
        r_size=len(join.testbed.relation_r),
        s_size=len(join.testbed.relation_s),
        signature_bits=join.signature_bits,
    )

    shards = build_shards(r_sizes, s_sizes, join.workers)
    join._parallel_fallback_reason = None
    if not shards:
        return [], template

    backend, fallback = resolve_backend(join.parallel_backend, len(shards))
    join._parallel_fallback_reason = fallback

    # Prefer the tracer the operator's run() installed over the ambient
    # global: under the coordinator's thread fanout several joins run
    # concurrently and the ambient slot is a shared race, while
    # ``join._run_tracer`` is unambiguous.
    tracer = getattr(join, "_run_tracer", None)
    if tracer is None:
        tracer = current_tracer()
    file_source = _describe_file_source(join, parts_r, parts_s)
    # Only process workers snapshot-and-ship registry deltas: serial and
    # thread workers share the parent's registry, so their increments
    # are already here and a merged delta would double-count.
    collect_metrics = backend.name == "process"
    specs = [
        _build_spec(join, parts_r, parts_s, shard, file_source,
                    collect_metrics, trace=tracer.enabled,
                    query_id=getattr(join, "query_id", None))
        for shard in shards
    ]
    # The chaos hook (see repro.service.chaos) gets one look at every
    # spec before dispatch; it may arm delays, I/O faults, or kills.
    shard_hook = getattr(join, "shard_hook", None)
    if shard_hook is not None:
        for spec in specs:
            shard_hook(spec)
    results = backend.run(specs, timeout=join.shard_timeout)

    for shard, result in zip(shards, results):
        if result.error is not None:
            raise ParallelExecutionError(
                f"join worker for shard {shard.index} "
                f"(partitions {shard.partitions}) failed with "
                f"{result.error_type}: {result.error}"
            )
    if collect_metrics:
        registry = get_registry()
        for result in sorted(results, key=lambda r: r.index):
            if result.registry_delta:
                registry.merge_delta(result.registry_delta)
    # Stitch the workers' serialized span trees under the parent's
    # current span (the joining phase), in shard order, so a k-way run
    # yields one coherent tree with true per-shard wall times.  Each
    # adopted shard span is annotated with the scheduler's predicted
    # comparison count (exact under block nested loop: Σ |R_p|·|S_p|)
    # so EXPLAIN ANALYZE can show per-shard predicted-vs-observed skew.
    if tracer.enabled:
        predicted = {
            shard.index: (
                sum(r_sizes[p] * s_sizes[p] for p in shard.partitions),
                shard.cost,
            )
            for shard in shards
        }
        for result in sorted(results, key=lambda r: r.index):
            for span in tracer.adopt(result.spans):
                if span.name == "shard" and span.attrs.get("index") in predicted:
                    comparisons, cost = predicted[span.attrs["index"]]
                    span.set(
                        predicted_comparisons=comparisons,
                        scheduled_cost=cost,
                    )
    return merge_shard_pairs(results), merge_worker_metrics(results, template)


def _describe_file_source(join, parts_r, parts_s) -> FileSource | None:
    """A file-backed testbed is described by reference, not by value."""
    disk = join.testbed.disk
    if not isinstance(disk, FileDiskManager):
        return None
    # The partitioning phase flushed the pool after sealing the stores,
    # and the joining phase performs no writes, so the on-disk image the
    # workers reopen is complete and stable.  Flush down to the OS as
    # well: workers read through their own file descriptors, which do
    # not see bytes still sitting in the parent's userspace file buffer.
    join.testbed.pool.flush_all()
    disk.flush()
    return FileSource(
        path=disk.path,
        page_size=disk.page_size,
        buffer_pages=join.testbed.pool.capacity,
        buffer_policy=join.testbed.pool.policy,
        r_meta_page=parts_r.meta_page_id,
        s_meta_page=parts_s.meta_page_id,
    )


def _build_spec(join, parts_r, parts_s, shard, file_source,
                collect_metrics=False, trace=False,
                query_id=None) -> ShardSpec:
    inline_r: dict[int, list[tuple[int, int]]] = {}
    inline_s: dict[int, list[tuple[int, int]]] = {}
    resident = join.resident_partitions
    for partition in shard.partitions:
        if partition < resident:
            # Memory-resident partitions exist only in the parent's
            # lists — ship them by value regardless of the source.
            inline_r[partition] = join._resident_r[partition]
            inline_s[partition] = join._resident_s[partition]
        elif file_source is None:
            inline_r[partition] = list(parts_r.scan_partition(partition))
            inline_s[partition] = list(parts_s.scan_partition(partition))
    import os

    return ShardSpec(
        partitions=list(shard.partitions),
        engine=join.engine,
        signature_bits=join.signature_bits,
        block_entries=join.block_entries,
        batch_portions=join.batch_portions,
        file_source=file_source,
        inline_r=inline_r,
        inline_s=inline_s,
        fail_after=join._worker_fault_after,
        parent_pid=os.getpid(),
        index=shard.index,
        trace=trace,
        collect_metrics=collect_metrics,
        query_id=query_id,
    )
