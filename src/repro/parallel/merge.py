"""Deterministic combination of per-worker shard results.

Two jobs, both order-insensitive so the output is identical for any
worker count and any shard completion order:

* :func:`merge_shard_pairs` unions the workers' candidate pairs and
  returns them **sorted by (r_tid, s_tid)**.  Sorting at the merge
  boundary is what makes the engine deterministic: the verification
  phase then fetches tuples in the same order the serial path would
  (the serial candidate sink also sorts), so results, I/O patterns and
  false-positive accounting all line up.  The union also deduplicates
  pairs that several workers found independently — possible when a
  partitioner (DCJ) replicates a tuple into partitions that landed in
  different shards.
* :func:`merge_worker_metrics` folds the workers' counter shares into
  one :class:`~repro.core.metrics.JoinMetrics` via ``JoinMetrics.merge``.
  The paper's ``x`` (signature comparisons) is additive by construction
  — each partition pair is joined by exactly one worker — so the merged
  count equals the serial count exactly; ``y`` (replicated signatures)
  is counted in the serial partitioning phase and is untouched by
  parallel execution.
"""

from __future__ import annotations

from typing import Sequence

from ..core.metrics import JoinMetrics, PhaseMetrics
from .worker import ShardResult

__all__ = ["merge_shard_pairs", "merge_worker_metrics"]


def merge_shard_pairs(results: Sequence[ShardResult]) -> list[tuple[int, int]]:
    """Union the workers' candidate pairs, sorted by (r_tid, s_tid)."""
    pairs: set[tuple[int, int]] = set()
    for result in results:
        pairs.update(result.pairs)
    return sorted(pairs)


def merge_worker_metrics(
    results: Sequence[ShardResult], template: JoinMetrics
) -> JoinMetrics:
    """Aggregate the workers' metric shares into one record.

    ``template`` supplies the header fields (algorithm, k, sizes,
    signature bits) every per-worker record carries, so
    :meth:`JoinMetrics.merge` can verify the shares belong to the same
    join.  The returned record's ``joining`` phase holds summed worker
    seconds (total CPU-side work) and summed worker I/O; the engine
    overwrites ``seconds`` with the parent's observed wall clock.  The
    per-shard shares themselves survive on ``shard_joining`` (in shard
    index order) instead of being discarded by the aggregation, so
    per-worker wall times and I/O stay inspectable after the merge.
    """
    shares = []
    for result in sorted(results, key=lambda r: r.index):
        share = JoinMetrics(
            algorithm=template.algorithm,
            num_partitions=template.num_partitions,
            r_size=template.r_size,
            s_size=template.s_size,
            signature_bits=template.signature_bits,
        )
        share.signature_comparisons = result.signature_comparisons
        share.candidates = len(result.pairs)
        share.buffer_hits = result.buffer_hits
        share.buffer_misses = result.buffer_misses
        share.joining = PhaseMetrics(
            result.seconds, result.page_reads, result.page_writes
        )
        shares.append(share)
    if not shares:
        return JoinMetrics(
            algorithm=template.algorithm,
            num_partitions=template.num_partitions,
            r_size=template.r_size,
            s_size=template.s_size,
            signature_bits=template.signature_bits,
        )
    merged = JoinMetrics.merge(shares)
    merged.shard_joining = [share.joining for share in shares]
    return merged
