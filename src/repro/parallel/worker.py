"""The per-shard join kernel executed by every backend.

A shard is a self-contained job description (:class:`ShardSpec`) plus a
pure function over it (:func:`run_shard`) — no closures, no shared
state — so the same code runs in-process (serial backend), on a thread,
or in a forked/spawned worker process.

Partition data reaches a worker one of two ways:

* **File source** — the testbed is file-backed, so the worker opens its
  *own* read-only :class:`~repro.storage.pager.FileDiskManager` and
  :class:`~repro.storage.buffer.BufferPool` over the testbed file and
  attaches :class:`~repro.storage.partition_store.PartitionStore` views
  at the sealed stores' meta pages.  Nothing mutable is shared between
  workers or with the parent; each worker's buffer pool keeps its shard
  of partition pages cache-resident, which is the locality argument for
  partition-parallel containment joins in the first place.
* **Inline entries** — the testbed is memory-backed (no file to reopen)
  or a partition is memory-resident, so its ``(signature, tid)`` entries
  are shipped in the spec.  The parent's page reads for materializing
  them are counted in the parent's joining-phase I/O.

Comparison semantics are shared with the serial operator through
:func:`repro.core.operator.compare_block`, so a shard performs bit-for-bit
the same signature comparisons the serial loop would for its partitions.

Fault injection: ``ShardSpec.fail_after`` arms a
:class:`~repro.storage.faults.FaultInjectingDiskManager` around the
worker's own disk manager (file source only).  The resulting
``InjectedIOError`` is reported through :attr:`ShardResult.error` rather
than raised, so a dying worker never surfaces as an opaque
``BrokenProcessPool`` in the parent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["FileSource", "ShardSpec", "ShardResult", "run_shard"]


@dataclass(frozen=True)
class FileSource:
    """Where and how to reopen the testbed file for read-only scanning."""

    path: str
    page_size: int
    buffer_pages: int
    buffer_policy: str
    r_meta_page: int
    s_meta_page: int


@dataclass
class ShardSpec:
    """Everything one worker needs to join its partition pairs.

    Plain data only (ints, strings, lists, dicts) so the spec pickles
    cleanly across process boundaries under any start method.
    """

    partitions: list[int]
    engine: str
    signature_bits: int
    block_entries: int
    batch_portions: int
    file_source: FileSource | None = None
    #: partition -> entries, for partitions not readable via file_source
    #: (memory-backed testbeds and memory-resident partitions).
    inline_r: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    inline_s: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    #: test hook: fail the worker's disk manager after N physical I/Os.
    fail_after: int | None = None
    #: chaos: sleep this long before joining (a "slow shard"; with a
    #: shard timeout armed this is how timeouts are provoked on demand).
    chaos_delay: float = 0.0
    #: chaos: die mid-shard.  In a worker *process* this is a hard
    #: ``os._exit`` (the parent sees a broken pool, exactly like an OOM
    #: kill); in the parent process (serial/thread backends) it raises
    #: :class:`~repro.storage.faults.SimulatedWorkerDeath` instead.
    chaos_kill: bool = False
    #: pid of the dispatching process, so ``chaos_kill`` can tell a real
    #: worker process from an in-process (serial/thread) shard.
    parent_pid: int = 0
    #: this shard's index in the schedule (labels spans and results).
    index: int = 0
    #: build a span tree in the worker and ship it back in the result.
    trace: bool = False
    #: snapshot the worker's metrics-registry delta into the result.
    #: The engine sets this for the *process* backend only: serial and
    #: thread workers share the parent's registry (their increments land
    #: directly), so shipping a delta too would double-count.
    collect_metrics: bool = False
    #: the service-level query this shard serves, stamped on the shard
    #: span so cross-process traces stitch back to one query tree.
    query_id: int | None = None


@dataclass
class ShardResult:
    """One worker's output: candidate pairs plus its share of the metrics."""

    pairs: list[tuple[int, int]] = field(default_factory=list)
    signature_comparisons: int = 0
    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    seconds: float = 0.0
    partitions: int = 0
    index: int = 0
    #: the worker's serialized span tree (plain dicts from
    #: :meth:`repro.obs.trace.Tracer.export`); empty when tracing is off.
    #: The parent stitches these under its joining-phase span.
    spans: list[dict] = field(default_factory=list)
    #: the worker's metrics-registry delta (plain dicts from
    #: :meth:`repro.obs.registry.MetricsRegistry.delta`); populated only
    #: when the spec asked for it.  The engine merges these into the
    #: parent registry, so ``/metrics`` totals are identical across
    #: serial, thread and process backends.
    registry_delta: dict = field(default_factory=dict)
    #: set instead of raising so the failure crosses process boundaries
    #: as data; the executor re-raises it as ParallelExecutionError.
    error: str | None = None
    error_type: str | None = None


def _iter_r_blocks(
    entries_or_store, partition: int, block_entries: int, batch_portions: int
) -> Iterator[list[tuple[int, int]]]:
    """Group a partition's R side into memory-bounded blocks, mirroring
    ``SetContainmentJoin._r_blocks`` exactly."""
    if isinstance(entries_or_store, list):
        for start in range(0, len(entries_or_store), block_entries):
            yield entries_or_store[start : start + block_entries]
        return
    block: list[tuple[int, int]] = []
    for batch in entries_or_store.scan_partition_batches(
        partition, batch_portions
    ):
        block.extend(batch)
        if len(block) >= block_entries:
            yield block
            block = []
    if block:
        yield block


def _iter_s_batches(
    entries_or_store, partition: int, batch_portions: int
) -> Iterable[list[tuple[int, int]]]:
    if isinstance(entries_or_store, list):
        yield entries_or_store
        return
    yield from entries_or_store.scan_partition_batches(partition, batch_portions)


def run_shard(spec: ShardSpec) -> ShardResult:
    """Join every partition pair of one shard; never raises.

    Any failure — injected I/O fault, corrupt page, bad spec — is
    captured into the result so it survives pickling back to the parent
    regardless of backend.
    """
    from ..core.operator import compare_block
    from ..obs.registry import get_registry
    from ..obs.trace import NULL_TRACER, Tracer, current_tracer, use_tracer

    result = ShardResult(partitions=len(spec.partitions), index=spec.index)
    registry = get_registry()
    # Process workers inherit a copy of the parent's registry (fork) or a
    # fresh one (spawn); baselining before any work makes the shipped
    # delta exactly this shard's contribution either way.
    baseline = registry.snapshot() if spec.collect_metrics else None
    started = time.perf_counter()
    disk = None
    pool = None
    if not spec.trace:
        tracer = NULL_TRACER
    else:
        # In-process backends (serial/thread) still see the parent's
        # ambient tracer: share its clocks so worker spans land on the
        # parent timeline and stay deterministic under injected clocks.
        # In a forked/spawned process the ambient tracer is the no-op
        # default and the worker falls back to real clocks.
        ambient = current_tracer()
        tracer = ambient.child() if isinstance(ambient, Tracer) else Tracer()
    span_attrs = {"index": spec.index, "partitions": len(spec.partitions)}
    if spec.query_id is not None:
        span_attrs["query_id"] = spec.query_id
    shard_span = tracer.start("shard", **span_attrs)
    try:
        with use_tracer(tracer):
            if spec.chaos_delay > 0:
                time.sleep(spec.chaos_delay)
            if spec.chaos_kill:
                _chaos_die(spec)
            parts_r = parts_s = None
            if spec.file_source is not None:
                disk, pool = _open_file_source(spec)
                parts_r, parts_s = _attach_stores(spec, pool)
            pairs: set[tuple[int, int]] = set()
            for partition in spec.partitions:
                r_side = spec.inline_r.get(partition, parts_r)
                s_side = spec.inline_s.get(partition, parts_s)
                if r_side is None or s_side is None:
                    raise ValueError(
                        f"partition {partition} has neither a file source nor "
                        "inline entries"
                    )
                with tracer.span(
                    "join.partition", partition=partition
                ) as partition_span:
                    comparisons_before = result.signature_comparisons
                    for block in _iter_r_blocks(
                        r_side, partition, spec.block_entries,
                        spec.batch_portions,
                    ):
                        result.signature_comparisons += compare_block(
                            spec.engine,
                            spec.signature_bits,
                            block,
                            _iter_s_batches(
                                s_side, partition, spec.batch_portions
                            ),
                            lambda r_tid, s_tid: pairs.add((r_tid, s_tid)),
                        )
                    partition_span.set(
                        comparisons=result.signature_comparisons
                        - comparisons_before
                    )
            result.pairs = sorted(pairs)
    except Exception as error:  # noqa: BLE001 — shipped to the parent as data
        result.error = str(error)
        result.error_type = type(error).__name__
        shard_span.set(error=str(error))
    finally:
        if pool is not None:
            result.buffer_hits = pool.stats.hits
            result.buffer_misses = pool.stats.misses
        if disk is not None:
            result.page_reads = disk.stats.page_reads
            result.page_writes = disk.stats.page_writes
            try:
                disk.close()
            except Exception:  # noqa: BLE001 — injected faults may outlive the job
                pass
    result.seconds = time.perf_counter() - started
    # Worker-side registry accounting goes through the ambient registry:
    # serial/thread workers increment the parent's metrics directly,
    # process workers increment their own copy and ship the delta below —
    # so the parent's totals come out backend-identical.
    registry.counter(
        "setjoin_worker_shards_total", "Shards executed by join workers"
    ).inc()
    registry.counter(
        "setjoin_worker_partitions_total",
        "Partition pairs joined by join workers",
    ).inc(result.partitions)
    registry.counter(
        "setjoin_worker_comparisons_total",
        "Signature comparisons performed inside join workers",
    ).inc(result.signature_comparisons)
    registry.counter(
        "setjoin_worker_seconds_total",
        "Wall-clock seconds spent inside join workers",
    ).inc(result.seconds)
    if baseline is not None:
        result.registry_delta = registry.delta(baseline)
    shard_span.set(
        pairs=len(result.pairs),
        comparisons=result.signature_comparisons,
        page_reads=result.page_reads,
        buffer_hits=result.buffer_hits,
        buffer_misses=result.buffer_misses,
    )
    tracer.finish(shard_span)
    result.spans = tracer.export()
    return result


def _chaos_die(spec: ShardSpec) -> None:
    """Kill this worker, the way the chaos layer asked for.

    Only a genuine worker *process* (pid differs from the dispatcher's)
    hard-exits; an in-process shard raises a typed error instead, so the
    serial and thread backends survive their own chaos.
    """
    import os

    from ..storage.faults import SimulatedWorkerDeath

    if spec.parent_pid and os.getpid() != spec.parent_pid:
        os._exit(86)  # noqa: SLF001 — a chaos kill must skip all cleanup
    raise SimulatedWorkerDeath(
        f"chaos killed the worker for shard {spec.index} "
        "(simulated in-process: serial/thread backend)"
    )


def _open_file_source(spec: ShardSpec):
    """Open this worker's private read-only storage view."""
    from ..storage.buffer import BufferPool
    from ..storage.pager import FileDiskManager

    source = spec.file_source
    disk = FileDiskManager(source.path, source.page_size, fsync=False)
    if spec.fail_after is not None:
        from ..storage.faults import FaultInjectingDiskManager

        disk = FaultInjectingDiskManager(disk).fail_after(spec.fail_after)
    pool = BufferPool(
        disk, capacity=source.buffer_pages, policy=source.buffer_policy
    )
    return disk, pool


def _attach_stores(spec: ShardSpec, pool):
    from ..storage.partition_store import PartitionStore

    signature_bytes = (spec.signature_bits + 7) // 8
    num_partitions = max(spec.partitions) + 1 if spec.partitions else 1
    parts_r = PartitionStore.attach(
        pool, spec.file_source.r_meta_page, signature_bytes, num_partitions
    )
    parts_s = PartitionStore.attach(
        pool, spec.file_source.s_meta_page, signature_bytes, num_partitions
    )
    return parts_r, parts_s
