"""Partition-parallel execution engine.

The DCJ/PSJ/LSJ partitioning algorithms reduce ``R ⋈⊆ S`` to independent
work over partition pairs ``R_p ⋈ S_p`` — exactly the shared-nothing
structure that parallelizes with near-optimal load when shards are
balanced by size (Ketsman, Suciu & Tao) and stays cache-resident per
worker (Bouros et al.).  This package runs the operator's joining phase
across a pool of workers while preserving the paper's measurement
semantics bit for bit:

* :mod:`~repro.parallel.scheduler` turns the partitioner's assignments
  into shards using largest-partition-first (LPT) load balancing with an
  estimated-cost model (|R_p|·|S_p| signature comparisons per pair).
* :mod:`~repro.parallel.executor` provides three interchangeable
  backends behind one interface — ``serial`` (in-process, the default),
  ``thread`` and ``process`` — with per-shard timeouts and a clean
  fallback to ``serial`` when a backend is unavailable.
* :mod:`~repro.parallel.worker` is the per-shard join kernel.  A process
  worker opens its *own* read-only ``FileDiskManager``/``BufferPool``
  view of the partition stores (nothing mutable is shared); when the
  testbed is memory-backed, the shard's partition entries are shipped
  to the worker instead.
* :mod:`~repro.parallel.merge` combines per-worker results
  deterministically (pairs sorted by tid, so output is identical for
  any worker count) and aggregates per-worker
  :class:`~repro.core.metrics.JoinMetrics` via ``JoinMetrics.merge``.
* :mod:`~repro.parallel.engine` orchestrates the above for
  :class:`~repro.core.operator.SetContainmentJoin`.

Entry points: ``run_disk_join(..., workers=4, backend="process")``,
``SetContainmentJoin(..., workers=, parallel_backend=)``, or the CLI's
``join --workers N --parallel-backend process``.
"""

from .engine import run_parallel_join
from .executor import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from .merge import merge_shard_pairs, merge_worker_metrics
from .scheduler import PartitionTask, Shard, build_shards, estimate_pair_cost
from .worker import FileSource, ShardResult, ShardSpec, run_shard

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "FileSource",
    "PartitionTask",
    "ProcessBackend",
    "SerialBackend",
    "Shard",
    "ShardResult",
    "ShardSpec",
    "ThreadBackend",
    "build_shards",
    "estimate_pair_cost",
    "merge_shard_pairs",
    "merge_worker_metrics",
    "resolve_backend",
    "run_parallel_join",
    "run_shard",
]
