"""setjoins — set containment joins, reproducing Melnik & Garcia-Molina (EDBT 2002).

A from-scratch implementation of the Divide-and-Conquer Set Join (DCJ) and
every system it is evaluated against in the paper: the PSJ and LSJ
partitioning algorithms, the main-memory SHJ baseline, a disk-based
testbed (paged storage, buffer pool, B-trees), the full analytical model
(Table 7 factors, selectivity, calibrated time model, optimizer), and
[GEBW94]-style synthetic data generation.

Quickstart::

    from repro import Relation, DCJPartitioner, run_disk_join

    r = Relation.from_sets([{1, 5}, {10, 13}, {1, 3}, {8, 19}], name="R")
    s = Relation.from_sets([{1, 5, 7}, {8, 10, 13}, {1, 3, 13}, {2, 3, 4}], name="S")
    dcj = DCJPartitioner.for_cardinalities(8, theta_r=2, theta_s=3)
    result, metrics = run_disk_join(r, s, dcj)
    # result == {(0, 0), (1, 1), (2, 2)}  — i.e. a⊆A, b⊆B, c⊆C
"""

from .core import (
    DCJPartitioner,
    JoinMetrics,
    JoinPlan,
    LSJPartitioner,
    PartitionAssignment,
    Partitioner,
    PSJPartitioner,
    Relation,
    SetContainmentJoin,
    SetTuple,
    Testbed,
    analyze_containment_join,
    bitwise_included,
    choose_plan,
    containment_join,
    containment_pairs_nested_loop,
    explain_containment_join,
    hybrid_join,
    naive_join,
    paper_example_family,
    run_disk_join,
    shj_join,
    signature_nested_loop_join,
    signature_of,
)
from .analysis import (
    comp_dcj,
    comp_lsj,
    comp_psj,
    expected_selectivity,
    repl_dcj,
    repl_lsj,
    repl_psj,
)
from .analysis.timemodel import PAPER_TIME_MODEL, TimeModel, calibrate
from .data import Workload, case_study, uniform_workload
from .database import SetJoinDatabase
from .errors import SetJoinError

__version__ = "1.0.0"

__all__ = [
    "DCJPartitioner",
    "JoinMetrics",
    "JoinPlan",
    "LSJPartitioner",
    "PartitionAssignment",
    "Partitioner",
    "PSJPartitioner",
    "Relation",
    "SetContainmentJoin",
    "SetTuple",
    "Testbed",
    "analyze_containment_join",
    "bitwise_included",
    "choose_plan",
    "containment_join",
    "containment_pairs_nested_loop",
    "explain_containment_join",
    "hybrid_join",
    "naive_join",
    "paper_example_family",
    "run_disk_join",
    "shj_join",
    "signature_nested_loop_join",
    "signature_of",
    "comp_dcj",
    "comp_lsj",
    "comp_psj",
    "expected_selectivity",
    "repl_dcj",
    "repl_lsj",
    "repl_psj",
    "PAPER_TIME_MODEL",
    "TimeModel",
    "calibrate",
    "SetJoinDatabase",
    "Workload",
    "case_study",
    "uniform_workload",
    "SetJoinError",
    "__version__",
]
