"""The distributed-join coordinator: N shards behind one database surface.

:class:`ShardedDatabase` mirrors the :class:`~repro.database.SetJoinDatabase`
API (create/drop/join/probe/explain/stats/verify), so the CLI, the query
service and the tests drive either interchangeably.  A distributed join
runs in four steps:

1. **Plan** — the paper's Section 5 optimizer over *exact* global
   statistics (sizes are catalog counts summed over shards; θ is the
   exact integer-sum mean cardinality, so the plan is identical at every
   shard count).  The chosen partitioner is made content-deterministic
   (:func:`~repro.dist.placement.deterministic_partitioner`) so the
   coordinator and every shard agree on each row's partitions.
2. **Summarize + place** — each shard digests its S slice
   (:class:`~repro.dist.placement.ShardSummary`), then the coordinator
   scans R once, computing each row's partitions (the logical y share)
   and its target shards through the
   :class:`~repro.dist.placement.ReplicationPlanner`.
3. **Fan out** — one :class:`~repro.dist.shard.ShardJoinRequest` per
   shard with work, executed serially or on a thread pool; inside each
   shard the ordinary operator runs, including the partition-parallel
   serial/thread/process backends.  Any shard failure (worker death,
   timeout, injected fault) surfaces as the same typed errors the
   single-database engine raises, so the service's retry ladder and
   circuit breakers apply unchanged.
4. **Merge** — pairs are disjoint across shards (each S row has one
   home), so the result is their sorted union; per-shard
   :class:`~repro.core.metrics.JoinMetrics` are aggregated through
   :meth:`JoinMetrics.merge`, with ``replicated_signatures`` restored to
   the *logical* count so the paper's x/y accounting is bit-identical
   to a single-shard run at any shard count (default prune mode).
   Process-backed shard workers ship their metrics-registry deltas
   through the engine's existing :meth:`MetricsRegistry.merge_delta`
   path, and the merged record is published via ``record_join``.
"""

from __future__ import annotations

import copy
import heapq
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator

from ..analysis.timemodel import PAPER_TIME_MODEL, TimeModel
from ..core.metrics import JoinMetrics, PhaseMetrics
from ..core.optimizer import JoinPlan, plan_from_statistics
from ..core.sets import Relation, SetTuple
from ..core.signatures import DEFAULT_SIGNATURE_BITS
from ..errors import ConfigurationError
from ..obs.trace import current_tracer, use_tracer
from .placement import (
    DEFAULT_PREFIX_BITS,
    PRUNE_MODES,
    PlacementReport,
    ReplicationPlanner,
    assign_shard,
    deterministic_partitioner,
    publish_placement,
)
from .shard import Shard, ShardJoinRequest

__all__ = ["ShardedDatabase"]

FANOUTS = ("serial", "thread")

_MANIFEST_SCHEMA = 1


def _manifest_path(path: str) -> str:
    return path + ".shards.json"


def _shard_path(path: "str | None", shard_id: int) -> "str | None":
    return None if path is None else f"{path}.shard{shard_id}"


class _MergedRelationView:
    """Read-only ``RelationStore``-shaped view over all shards' slices.

    Provides the ``scan``/``__len__`` surface callers (e.g. the load
    generator) use on ``db.get_store(name)``; rows come out in global
    tid order via a heap merge of the per-shard tid-ordered scans.
    """

    def __init__(self, name: str, shards: "list[Shard]"):
        self.name = name
        self._shards = shards

    def scan(self) -> Iterator[tuple[int, frozenset, bytes]]:
        scans = [shard.db.get_store(self.name).scan()
                 for shard in self._shards]
        return heapq.merge(*scans, key=lambda row: row[0])

    def __len__(self) -> int:
        return sum(
            shard.db.relation_size(self.name) for shard in self._shards
        )


class ShardedDatabase:
    """A coordinator plus N shared-nothing :class:`Shard` databases.

    ``path=None`` keeps every shard in memory; with a path, shard ``i``
    lives in ``<path>.shard<i>`` (each with its own WAL) and the shard-id
    set persists in ``<path>.shards.json`` so reopening without
    ``shards=`` resumes the existing layout.  ``fanout`` is the
    *coordinator-level* execution mode (``"serial"``/``"thread"``);
    intra-shard parallelism is the join call's ``workers``/``backend``.
    ``prune`` selects the R-replication mode (see
    :mod:`repro.dist.placement`): ``"partitions"`` (default) keeps the
    x/y accounting bit-identical to single-shard execution,
    ``"signature"`` trades that for fewer shipped rows and comparisons.
    """

    def __init__(
        self,
        shards: "list[Shard]",
        path: "str | None" = None,
        model: TimeModel = PAPER_TIME_MODEL,
        model_store=None,
        fanout: str = "thread",
        prune: str = "partitions",
        prefix_bits: int = DEFAULT_PREFIX_BITS,
    ):
        if not shards:
            raise ConfigurationError("a sharded database needs >= 1 shard")
        if fanout not in FANOUTS:
            raise ConfigurationError(
                f"fanout must be one of {FANOUTS}, got {fanout!r}"
            )
        if prune not in PRUNE_MODES:
            raise ConfigurationError(
                f"prune must be one of {PRUNE_MODES}, got {prune!r}"
            )
        self.shards = sorted(shards, key=lambda shard: shard.shard_id)
        self.path = path
        self.fanout = fanout
        self.prune = prune
        self.prefix_bits = prefix_bits
        self.model_store = None
        if model_store is not None:
            from ..obs.adaptive import ModelStore

            self.model_store = (
                model_store if isinstance(model_store, ModelStore)
                else ModelStore(model_store, base_model=model)
            )
            model = self.model_store.active
        self.model = model
        self.last_placement: "PlacementReport | None" = None
        self._closed = False

    # ------------------------------------------------------------------
    # Opening / lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: "str | None" = None,
        shards: "int | None" = None,
        *,
        fanout: str = "thread",
        prune: str = "partitions",
        prefix_bits: int = DEFAULT_PREFIX_BITS,
        model: TimeModel = PAPER_TIME_MODEL,
        model_store=None,
        **db_kwargs,
    ) -> "ShardedDatabase":
        """Open (creating if needed) a sharded database.

        For an existing on-disk layout the shard-id set comes from the
        manifest and ``shards`` may be omitted; passing a conflicting
        count is an error (use :meth:`reshard` to change the layout).
        ``db_kwargs`` are forwarded to every shard's
        :meth:`SetJoinDatabase.open`.
        """
        shard_ids: "list[int] | None" = None
        if path is not None and os.path.exists(_manifest_path(path)):
            with open(_manifest_path(path)) as handle:
                manifest = json.load(handle)
            if manifest.get("schema") != _MANIFEST_SCHEMA:
                raise ConfigurationError(
                    f"shard manifest {_manifest_path(path)!r} has schema "
                    f"{manifest.get('schema')!r}, expected {_MANIFEST_SCHEMA}"
                )
            shard_ids = [int(sid) for sid in manifest["shard_ids"]]
            if shards is not None and shards != len(shard_ids):
                raise ConfigurationError(
                    f"database at {path!r} has {len(shard_ids)} shards; "
                    f"open it without shards= and call reshard({shards})"
                )
        if shard_ids is None:
            if shards is None:
                raise ConfigurationError(
                    "shards=N is required when creating a sharded database"
                )
            if shards < 1:
                raise ConfigurationError(
                    f"shards must be >= 1, got {shards}"
                )
            shard_ids = list(range(shards))
        opened = [
            Shard.open(sid, _shard_path(path, sid), model=model, **db_kwargs)
            for sid in shard_ids
        ]
        db = cls(
            opened, path=path, model=model, model_store=model_store,
            fanout=fanout, prune=prune, prefix_bits=prefix_bits,
        )
        db._write_manifest()
        return db

    @property
    def shard_ids(self) -> "list[int]":
        return [shard.shard_id for shard in self.shards]

    def _write_manifest(self) -> None:
        if self.path is None:
            return
        document = {
            "schema": _MANIFEST_SCHEMA,
            "shard_ids": self.shard_ids,
        }
        tmp = _manifest_path(self.path) + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, _manifest_path(self.path))

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("database is closed")

    def close(self) -> None:
        if not self._closed:
            for shard in self.shards:
                shard.close()
            self._closed = True

    def kill(self) -> None:
        """Abandon every shard without flushing (crash simulation)."""
        if not self._closed:
            for shard in self.shards:
                shard.kill()
            self._closed = True

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Relation management
    # ------------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        rows: "Relation | Iterable[tuple[int, Iterable[int]]]",
    ) -> int:
        """Hash-place a relation's rows across the shards by tuple id.

        Every shard stores a (possibly empty) slice under the same name,
        so shard catalogs stay congruent and reopening finds the same
        layout everywhere.
        """
        self._check_open()
        if isinstance(rows, Relation):
            rows = ((row.tid, row.elements) for row in rows)
        ids = self.shard_ids
        buckets: "dict[int, list[tuple[int, frozenset]]]" = {
            sid: [] for sid in ids
        }
        for tid, elements in rows:
            buckets[assign_shard(tid, ids)].append(
                (tid, frozenset(elements))
            )
        return sum(
            shard.create_relation(name, buckets[shard.shard_id])
            for shard in self.shards
        )

    def drop_relation(self, name: str) -> None:
        self._check_open()
        for shard in self.shards:
            shard.drop_relation(name)

    def relation_names(self) -> "list[str]":
        self._check_open()
        return self.shards[0].db.relation_names()

    def relation_size(self, name: str) -> int:
        self._check_open()
        return sum(shard.db.relation_size(name) for shard in self.shards)

    def get_store(self, name: str) -> _MergedRelationView:
        """A read-only merged view with the ``scan()`` surface callers
        expect from ``SetJoinDatabase.get_store``."""
        self._check_open()
        self.relation_size(name)  # raises per shard if missing
        return _MergedRelationView(name, self.shards)

    def scan_relation(self, name: str):
        """Yield ``(tid, elements)`` across all shards in tid order."""
        for tid, elements, __ in self.get_store(name).scan():
            yield tid, elements

    def read_relation(self, name: str) -> Relation:
        relation = Relation(name=name)
        for tid, elements in self.scan_relation(name):
            relation.add(SetTuple(tid, elements))
        return relation

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _statistics(self, name: str, seed: int = 0) -> tuple[int, float]:
        """(size, exact mean cardinality) aggregated over all shards.

        Exact rather than sampled: the integer cardinality sum is
        order-independent, so statistics — and therefore the plan — are
        identical at every shard count.  ``seed`` is accepted for
        interface parity with ``SetJoinDatabase._statistics`` and
        ignored.
        """
        del seed
        self._check_open()
        size = self.relation_size(name)
        total = 0
        for shard in self.shards:
            for __, elements in shard.scan_relation(name):
                total += len(elements)
        return size, (total / size if size else 0.0)

    def refresh_model(self) -> TimeModel:
        if self.model_store is not None:
            self.model = self.model_store.active
        return self.model

    def plan(self, r_name: str, s_name: str, drift_history=None) -> JoinPlan:
        self._check_open()
        self.refresh_model()
        r_size, theta_r = self._statistics(r_name)
        s_size, theta_s = self._statistics(s_name)
        return plan_from_statistics(
            r_size, s_size, theta_r, theta_s, self.model,
            drift_history=drift_history,
        )

    def explain(self, r_name: str, s_name: str) -> str:
        """EXPLAIN text: the optimizer's decision plus the exact
        distribution section (replication factor, pruning, logical vs
        physical y) computed from a placement dry run — nothing joins."""
        plan = self.plan(r_name, s_name)
        partitioner = deterministic_partitioner(plan.build_partitioner())
        planner = self._place(r_name, s_name, partitioner)[0]
        report = planner.report()
        lines = [plan.explain(), ""]
        lines.extend(report.explain_lines())
        lines.append(f"  coordinator fan-out: {self.fanout}; "
                     f"shard ids {self.shard_ids}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # The distributed join
    # ------------------------------------------------------------------

    def _build_partitioner(
        self, r_name: str, s_name: str, algorithm: str,
        num_partitions: "int | None", seed: int,
    ):
        if algorithm == "auto":
            plan = self.plan(r_name, s_name)
            return deterministic_partitioner(
                plan.build_partitioner(seed=seed)
            )
        from ..core.modulo import dcj_with_any_k, lsj_with_any_k
        from ..core.psj import PSJPartitioner

        k = num_partitions or 32
        __, theta_r = self._statistics(r_name)
        __, theta_s = self._statistics(s_name)
        theta_r = max(theta_r, 1.0)
        theta_s = max(theta_s, 1.0)
        if algorithm == "PSJ":
            return deterministic_partitioner(PSJPartitioner(k, seed=seed))
        if algorithm == "DCJ":
            return dcj_with_any_k(k, theta_r, theta_s)
        if algorithm == "LSJ":
            return lsj_with_any_k(k, theta_r, theta_s)
        raise ConfigurationError(f"unknown algorithm {algorithm!r}")

    def _place(
        self, r_name: str, s_name: str, partitioner,
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
    ):
        """Summarize S per shard, then scan R and route every row.

        Returns ``(planner, rows_by_shard)``; the planner carries the
        exact logical/physical accounting of the scan.
        """
        summaries = [
            shard.summarize(
                s_name, copy.deepcopy(partitioner),
                signature_bits=signature_bits,
                prefix_bits=self.prefix_bits,
            )
            for shard in self.shards
        ]
        planner = ReplicationPlanner(
            summaries, mode=self.prune,
            signature_bits=signature_bits, prefix_bits=self.prefix_bits,
        )
        rows_by_shard: "dict[int, list[tuple[int, frozenset]]]" = {
            shard.shard_id: [] for shard in self.shards
        }
        for shard in self.shards:
            for tid, elements in shard.scan_relation(r_name):
                partitions = partitioner.assign_r(elements)
                for target in planner.targets(elements, partitions):
                    rows_by_shard[target].append((tid, elements))
        return planner, rows_by_shard

    def _dispatch(self, requests: "list[ShardJoinRequest]"):
        by_id = {shard.shard_id: shard for shard in self.shards}
        if self.fanout == "serial" or len(requests) <= 1:
            return [
                by_id[request.shard_id].execute_join(request)
                for request in requests
            ]
        with ThreadPoolExecutor(
            max_workers=len(requests), thread_name_prefix="setjoin-dist"
        ) as pool:
            futures = [
                pool.submit(by_id[request.shard_id].execute_join, request)
                for request in requests
            ]
            responses = []
            errors = []
            for future in futures:
                try:
                    responses.append(future.result())
                except BaseException as error:  # noqa: BLE001 — re-raised
                    errors.append(error)
        if errors:
            # Every shard has finished (the pool exited), so raising the
            # first failure leaves no thread still touching a shard; the
            # service's retry ladder sees the same typed errors the
            # single-database engine raises.
            raise errors[0]
        return responses

    def join(
        self,
        r_name: str,
        s_name: str,
        algorithm: str = "auto",
        num_partitions: "int | None" = None,
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        engine: str = "numpy",
        seed: int = 0,
        workers: int = 1,
        backend: str = "serial",
        shard_timeout: "float | None" = None,
        shard_hook=None,
        tracer=None,
        partitioner=None,
        query_id: "int | None" = None,
    ) -> tuple[set[tuple[int, int]], JoinMetrics]:
        """Distributed set containment join; same contract as
        :meth:`SetJoinDatabase.join`.

        ``partitioner`` overrides planning with a pre-built partitioner
        (``run_disk_join(shards=N)`` uses this); it is sanitized to a
        content-deterministic equivalent.  With the default
        ``prune="partitions"`` the returned pairs *and* the x/y
        accounting are bit-identical to single-shard execution.
        """
        self._check_open()
        if partitioner is None:
            partitioner = self._build_partitioner(
                r_name, s_name, algorithm, num_partitions, seed
            )
        else:
            partitioner = deterministic_partitioner(partitioner)
        tracer = tracer if tracer is not None else current_tracer()
        merge_started = None
        root_attrs = dict(
            shards=len(self.shards),
            algorithm=partitioner.name,
            k=partitioner.num_partitions,
            prune=self.prune,
            fanout=self.fanout,
        )
        if query_id is not None:
            root_attrs["query_id"] = query_id
        with use_tracer(tracer), tracer.span("dist.join", **root_attrs) as root:
            placement_started = time.perf_counter()
            planner, rows_by_shard = self._place(
                r_name, s_name, partitioner, signature_bits
            )
            report = planner.report()
            summaries = {s.shard_id: s for s in planner.summaries}
            requests = [
                ShardJoinRequest(
                    shard_id=sid,
                    s_name=s_name,
                    r_rows=rows,
                    partitioner=copy.deepcopy(partitioner),
                    signature_bits=signature_bits,
                    engine=engine,
                    workers=workers,
                    backend=backend,
                    shard_timeout=shard_timeout,
                    shard_hook=shard_hook,
                    trace=tracer.enabled,
                    query_id=query_id,
                )
                for sid, rows in sorted(rows_by_shard.items())
                if rows and summaries[sid].rows
            ]
            placement_seconds = time.perf_counter() - placement_started

            fanout_started = time.perf_counter()
            responses = sorted(
                self._dispatch(requests), key=lambda resp: resp.shard_id
            )
            fanout_seconds = time.perf_counter() - fanout_started
            if tracer.enabled:
                # Stitch each shard's span tree (built on the shard's own
                # tracer, see Shard.execute_join) under the fan-out root
                # in shard order — one coherent query tree regardless of
                # serial vs. thread fan-out.
                for response in responses:
                    if response.spans:
                        tracer.adopt(response.spans, parent=root)

            merge_started = time.perf_counter()
            pairs: "list[tuple[int, int]]" = []
            for response in responses:
                # Each S row lives on exactly one shard, so the shard
                # answers are disjoint and their sorted concatenation is
                # the deterministic global merge.
                pairs.extend(response.pairs)
            pairs.sort()
            metrics = self._merge_metrics(
                responses, planner, report, partitioner,
                signature_bits, placement_seconds, fanout_seconds,
                time.perf_counter() - merge_started,
            )
            self.last_placement = report
            publish_placement(report)
            from ..obs.registry import get_registry, record_join

            record_join(metrics)
            # Coordinator step attribution: these land inside the query
            # service's lane window, so the workload ledger can split a
            # distributed join's cost into placement / fan-out / merge
            # and see the shards' aggregate busy time vs the
            # coordinator's wall clock.
            registry = get_registry()
            registry.counter(
                "setjoin_dist_placement_seconds_total",
                "Coordinator wall seconds spent summarizing and placing R",
            ).inc(placement_seconds)
            registry.counter(
                "setjoin_dist_fanout_seconds_total",
                "Coordinator wall seconds spent in shard fan-out",
            ).inc(fanout_seconds)
            registry.counter(
                "setjoin_dist_merge_seconds_total",
                "Coordinator wall seconds spent merging shard answers",
            ).inc(time.perf_counter() - merge_started)
            registry.counter(
                "setjoin_dist_shard_joins_total",
                "Per-shard join executions dispatched by the coordinator",
            ).inc(len(responses))
            registry.counter(
                "setjoin_dist_shard_busy_seconds_total",
                "Summed per-shard join seconds (aggregate shard busy time)",
            ).inc(sum(r.metrics.total_seconds for r in responses))
            root.set(
                results=metrics.result_size,
                signature_comparisons=metrics.signature_comparisons,
                replicated_signatures=metrics.replicated_signatures,
                replicated_rows=report.physical_r_rows,
                replication_factor=round(report.replication_factor, 6),
                pruned_shard_visits=report.pruned_shard_visits,
            )
        return set(pairs), metrics

    def _merge_metrics(
        self, responses, planner, report, partitioner, signature_bits,
        placement_seconds, fanout_seconds, merge_seconds,
    ) -> JoinMetrics:
        header = dict(
            algorithm=partitioner.name,
            num_partitions=partitioner.num_partitions,
            r_size=report.r_rows,
            s_size=report.s_rows,
            signature_bits=signature_bits,
        )
        shares = []
        for response in responses:
            part = response.metrics
            share = JoinMetrics(**header)
            share.signature_comparisons = part.signature_comparisons
            share.replicated_signatures = part.replicated_signatures
            share.resident_signatures = part.resident_signatures
            share.candidates = part.candidates
            share.false_positives = part.false_positives
            share.result_size = part.result_size
            share.set_comparisons = part.set_comparisons
            share.buffer_hits = part.buffer_hits
            share.buffer_misses = part.buffer_misses
            share.partitioning = part.partitioning
            share.joining = part.joining
            share.verification = part.verification
            shares.append(share)
        merged = (
            JoinMetrics.merge(shares) if shares else JoinMetrics(**header)
        )
        # Restore the *logical* y: Σ|partitions(row)| counted once per
        # global row during summarize (S side) and placement (R side) —
        # identical to the single-shard partition phase's count.  The
        # physical entries actually shipped live in the placement report
        # and the setjoin_dist_* metrics instead.
        merged.replicated_signatures = report.logical_entries
        merged.result_size = sum(len(r.pairs) for r in responses)
        # Phase seconds: summed per-shard seconds would overstate a
        # concurrent fan-out, so keep the coordinator's observed wall
        # clock per step (placement / fan-out / merge) and preserve each
        # shard's true totals in shard_joining, as the parallel engine
        # does for workers.
        merged.partitioning.seconds = placement_seconds
        merged.joining.seconds = fanout_seconds
        merged.verification.seconds = merge_seconds
        merged.shard_joining = [
            PhaseMetrics(
                response.metrics.total_seconds,
                response.metrics.total_page_reads,
                response.metrics.total_page_writes,
            )
            for response in responses
        ]
        return merged

    # ------------------------------------------------------------------
    # Probes, stats, integrity
    # ------------------------------------------------------------------

    def probe(self, name: str, elements: "Iterable[int]") -> "list[int]":
        """Point containment probe fanned to every shard.

        Tids are unique across shards (each row has one home), so the
        sorted concatenation equals the single-database scan order.
        """
        self._check_open()
        query = list(elements)
        out: "list[int]" = []
        for shard in self.shards:
            out.extend(shard.db.probe(name, query))
        return sorted(out)

    def stats(self) -> dict:
        """Aggregated storage statistics plus the distribution state."""
        self._check_open()
        totals: "dict[str, float]" = {}
        for shard in self.shards:
            for key, value in shard.db.stats().items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        names = self.relation_names()
        totals["relations"] = len(names)
        totals["tuples"] = sum(self.relation_size(name) for name in names)
        totals["shards"] = len(self.shards)
        totals["shard_ids"] = self.shard_ids
        totals["fanout"] = self.fanout
        totals["prune"] = self.prune
        if self.last_placement is not None:
            totals["last_placement"] = self.last_placement.as_dict()
        return totals

    def verify_integrity(self) -> "dict[str, int]":
        self._check_open()
        out = {"relations": 0, "tuples": 0, "pages_read": 0, "shards": 0}
        for shard in self.shards:
            report = shard.db.verify_integrity()
            out["tuples"] += report["tuples"]
            out["pages_read"] += report["pages_read"]
            out["shards"] += 1
        out["relations"] = len(self.relation_names())
        return out

    # ------------------------------------------------------------------
    # Resharding (see repro.dist.rebalance)
    # ------------------------------------------------------------------

    def reshard(self, shards: int):
        """Grow or shrink to ``shards`` shards, consistently reassigning
        rows; returns the :class:`~repro.dist.rebalance.RebalanceReport`."""
        from .rebalance import reshard

        return reshard(self, shards)

    def add_shard(self):
        from .rebalance import reshard

        return reshard(self, len(self.shards) + 1)

    def remove_shard(self):
        from .rebalance import reshard

        return reshard(self, len(self.shards) - 1)
