"""One shard: a full :class:`~repro.database.SetJoinDatabase` behind a
message-style interface.

Each shard owns its complete storage stack — disk manager, WAL, buffer
pool, catalog — so shards share nothing and could be moved onto other
machines by serializing the request/response dataclasses below (every
field is plain data except the partitioner, which is reconstructible
from ``(algorithm, k, θ_R, θ_S, seed)``).  Today the coordinator calls
shards in-process (serial or thread fan-out); intra-shard parallelism
still goes through the partition-parallel engine's serial/thread/process
backends, so a distributed join with process-backed shards runs on real
cores.

The join path deliberately does *not* register the replicated R portion
in the shard's catalog: the portion is reconstructible coordinator
state, so — like the operator's temporary partition pages — it is
written without WAL logging and destroyed when the join finishes, and a
crash mid-join can cost at most leaked pages, never a corrupt shard
catalog.
"""

from __future__ import annotations

import os
from contextlib import suppress
from dataclasses import dataclass, field

from ..core.operator import SetContainmentJoin, Testbed
from ..core.signatures import DEFAULT_SIGNATURE_BITS
from ..database import SetJoinDatabase
from ..errors import SetJoinError
from ..storage.relation_store import RelationStore
from .placement import DEFAULT_PREFIX_BITS, ShardSummary, summarize_rows

__all__ = ["Shard", "ShardJoinRequest", "ShardJoinResponse"]


@dataclass
class ShardJoinRequest:
    """Everything a shard needs to run its slice of one distributed join.

    ``r_rows`` is the replicated R portion this shard must join against
    its local S slice; ``partitioner`` must be content-deterministic
    (see :func:`repro.dist.placement.deterministic_partitioner`) and is
    private to the shard — the coordinator sends each shard its own
    copy, never a shared instance.
    """

    shard_id: int
    s_name: str
    r_rows: "list[tuple[int, frozenset[int]]]"
    partitioner: object
    signature_bits: int = DEFAULT_SIGNATURE_BITS
    engine: str = "numpy"
    workers: int = 1
    backend: str = "serial"
    shard_timeout: "float | None" = None
    shard_hook: object = None
    #: build a span tree for this shard join and ship it back in the
    #: response (plain dicts, so the message stays serializable).
    trace: bool = False
    #: the service-level query this join serves; stamped on every span
    #: so cross-shard traces stitch into one query tree.
    query_id: "int | None" = None


@dataclass
class ShardJoinResponse:
    """One shard's answer: its pairs plus its full metrics record."""

    shard_id: int
    pairs: "list[tuple[int, int]]" = field(default_factory=list)
    metrics: object = None
    r_rows: int = 0
    s_rows: int = 0
    #: the shard's serialized span tree (from ``Tracer.export()``);
    #: empty when the request did not ask for tracing.  The coordinator
    #: adopts these under its fan-out span, mirroring how process
    #: workers ship spans on :class:`repro.parallel.worker.ShardResult`.
    spans: "list[dict]" = field(default_factory=list)


class Shard:
    """A shard id plus the database it owns."""

    def __init__(self, shard_id: int, db: SetJoinDatabase,
                 path: "str | None" = None):
        self.shard_id = shard_id
        self.db = db
        self.path = path

    @classmethod
    def open(cls, shard_id: int, path: "str | None" = None,
             **db_kwargs) -> "Shard":
        """Open (creating/recovering as needed) one shard database."""
        return cls(shard_id, SetJoinDatabase.open(path, **db_kwargs),
                   path=path)

    # ------------------------------------------------------------------
    # Catalog messages
    # ------------------------------------------------------------------

    def create_relation(self, name: str,
                        rows: "list[tuple[int, frozenset[int]]]") -> int:
        """Store this shard's slice of a relation (rows sorted by tid)."""
        return self.db.create_relation(name, sorted(rows))

    def drop_relation(self, name: str) -> None:
        self.db.drop_relation(name)

    def has_relation(self, name: str) -> bool:
        return name in self.db.relation_names()

    def scan_relation(self, name: str):
        """Yield ``(tid, elements)`` in tid order from local storage."""
        for tid, elements, __ in self.db.get_store(name).scan():
            yield tid, elements

    # ------------------------------------------------------------------
    # Join messages
    # ------------------------------------------------------------------

    def summarize(
        self,
        s_name: str,
        partitioner,
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        prefix_bits: int = DEFAULT_PREFIX_BITS,
    ) -> ShardSummary:
        """Digest the local S slice for the coordinator's placement."""
        return summarize_rows(
            self.shard_id, self.scan_relation(s_name), partitioner,
            signature_bits=signature_bits, prefix_bits=prefix_bits,
        )

    def execute_join(self, request: ShardJoinRequest) -> ShardJoinResponse:
        """Join the replicated R portion against the local S slice.

        The portion is bulk-loaded into an uncataloged temporary B-tree
        in this shard's own file/pool, joined with the same operator the
        single-database path uses (including the partition-parallel
        engine when ``workers > 1``), and destroyed afterwards — on the
        failure path too, so a retried shard join never accumulates
        stranded pages.
        """
        s_store = self.db.get_store(request.s_name)
        rows = sorted(request.r_rows)
        # The shard builds its *own* tracer rather than borrowing the
        # coordinator's: under thread fan-out a shared tracer's span
        # stack is a race, and a future remote shard could not share one
        # anyway.  The exported records ship back on the response and
        # the coordinator stitches them, exactly like process workers.
        tracer = None
        shard_span = None
        if request.trace:
            from ..obs.trace import Tracer

            tags = {"shard_id": self.shard_id}
            if request.query_id is not None:
                tags["query_id"] = request.query_id
            tracer = Tracer(tags=tags)
            shard_span = tracer.start(
                "dist.shard", shard_id=self.shard_id,
                r_rows=len(rows), s_rows=len(s_store),
            )
        portion = RelationStore.create_sorted(
            self.db.pool, iter(rows),
            name=f"__dist_r_portion_{self.shard_id}",
        )
        try:
            testbed = Testbed.from_components(
                self.db.disk, self.db.pool, portion, s_store
            )
            join = SetContainmentJoin(
                testbed,
                request.partitioner,
                signature_bits=request.signature_bits,
                engine=request.engine,
                workers=request.workers,
                parallel_backend=request.backend,
                shard_timeout=request.shard_timeout,
                shard_hook=request.shard_hook,
                tracer=tracer,
                query_id=request.query_id,
            )
            pairs, metrics = join.run(cold_cache=False)
        except BaseException as error:
            if shard_span is not None:
                shard_span.set(error=type(error).__name__)
                tracer.finish(shard_span)
            raise
        finally:
            from ..storage.btree import BTree

            with suppress(SetJoinError):
                BTree(self.db.pool, portion.meta_page_id).destroy()
        if shard_span is not None:
            shard_span.set(pairs=len(pairs))
            tracer.finish(shard_span)
        return ShardJoinResponse(
            shard_id=self.shard_id,
            pairs=sorted(pairs),
            metrics=metrics,
            r_rows=len(rows),
            s_rows=len(s_store),
            spans=tracer.export() if tracer is not None else [],
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self.db.close()

    def kill(self) -> None:
        self.db.kill()

    def destroy(self) -> None:
        """Close the shard and remove its on-disk files (rebalance path)."""
        self.close()
        if self.path is not None:
            for target in (self.path, self.path + ".wal"):
                with suppress(OSError):
                    os.remove(target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.path if self.path is not None else "memory"
        return f"Shard(id={self.shard_id}, path={where!r})"
