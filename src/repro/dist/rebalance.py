"""Shard add/remove with consistent reassignment.

Rendezvous hashing (:func:`~repro.dist.placement.assign_shard`) makes
resharding minimal by construction: growing the id set moves only the
rows the new shard now wins (an expected ``1/(N+1)`` fraction), and
shrinking moves only the removed shard's rows — every other row keeps
its home.  The report returned by :func:`rebalance` records the exact
moved fraction so tests (and the ``setjoin_dist_rows_moved_total``
counter) can hold that guarantee.

The move itself is stop-the-world and snapshot-based: relations are
read out shard-locally, shards are added/destroyed, and every relation
is rewritten under the new assignment.  That is the right trade for a
coordinator whose shards live in one process today; an online protocol
can replace the middle step without changing the placement math.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .placement import assign_shard
from .shard import Shard

__all__ = ["RebalanceReport", "rebalance", "reshard"]


@dataclass(frozen=True)
class RebalanceReport:
    """What one reshard did: id sets and exact per-relation movement."""

    old_shard_ids: "list[int]"
    new_shard_ids: "list[int]"
    #: relation → {"total": rows, "moved": rows whose home changed}
    relations: "dict[str, dict[str, int]]" = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return sum(entry["total"] for entry in self.relations.values())

    @property
    def moved_rows(self) -> int:
        return sum(entry["moved"] for entry in self.relations.values())

    @property
    def moved_fraction(self) -> float:
        total = self.total_rows
        return self.moved_rows / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "old_shard_ids": self.old_shard_ids,
            "new_shard_ids": self.new_shard_ids,
            "relations": self.relations,
            "total_rows": self.total_rows,
            "moved_rows": self.moved_rows,
            "moved_fraction": round(self.moved_fraction, 6),
        }


def reshard(db, shards: int) -> RebalanceReport:
    """Reshape ``db`` to exactly ``shards`` shards.

    Growing appends fresh ids past the current maximum; shrinking drops
    the highest ids.  A no-op request (same count) returns an empty
    report without touching data.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    old_ids = db.shard_ids
    if shards == len(old_ids):
        return RebalanceReport(old_shard_ids=old_ids, new_shard_ids=old_ids)
    if shards > len(old_ids):
        next_id = max(old_ids) + 1
        new_ids = old_ids + list(
            range(next_id, next_id + shards - len(old_ids))
        )
    else:
        new_ids = sorted(old_ids)[:shards]
    return rebalance(db, new_ids)


def rebalance(db, new_ids: "list[int]") -> RebalanceReport:
    """Move ``db`` onto exactly the shard-id set ``new_ids``."""
    db._check_open()
    new_ids = sorted(set(new_ids))
    if not new_ids:
        raise ConfigurationError("cannot rebalance onto zero shards")
    old_ids = db.shard_ids

    # Snapshot every relation (rows are small Python frozensets; a
    # stop-the-world copy is the honest baseline for in-process shards).
    names = db.relation_names()
    snapshots = {name: list(db.scan_relation(name)) for name in names}

    report_relations: "dict[str, dict[str, int]]" = {}
    for name, rows in snapshots.items():
        moved = sum(
            1 for tid, __ in rows
            if assign_shard(tid, old_ids) != assign_shard(tid, new_ids)
        )
        report_relations[name] = {"total": len(rows), "moved": moved}

    old_by_id = {shard.shard_id: shard for shard in db.shards}
    from .coordinator import _shard_path

    kept = [old_by_id[sid] for sid in new_ids if sid in old_by_id]
    added = [
        Shard.open(sid, _shard_path(db.path, sid), model=db.model)
        for sid in new_ids if sid not in old_by_id
    ]
    removed = [
        old_by_id[sid] for sid in old_ids if sid not in set(new_ids)
    ]

    for name in names:
        for shard in kept:
            shard.drop_relation(name)
    for shard in removed:
        shard.destroy()

    db.shards = sorted(kept + added, key=lambda shard: shard.shard_id)
    db._write_manifest()

    for name, rows in snapshots.items():
        db.create_relation(name, rows)

    report = RebalanceReport(
        old_shard_ids=old_ids,
        new_shard_ids=new_ids,
        relations=report_relations,
    )
    from ..obs.registry import get_registry

    registry = get_registry()
    registry.counter(
        "setjoin_dist_reshards_total", "Reshard operations executed"
    ).inc()
    registry.counter(
        "setjoin_dist_rows_moved_total",
        "Rows whose home shard changed during reshards",
    ).inc(report.moved_rows)
    return report
