"""Sharded multi-database execution.

``repro.dist`` distributes whole relations across N independent
:class:`~repro.database.SetJoinDatabase` shards (each with its own WAL,
buffer pool and catalog) and coordinates containment joins across them:
S rows are rendezvous-hashed to a single home shard, R rows are
replicated only to the shards whose partition occupancy (optionally
signature digest) says superset candidates may live there, and the
per-shard answers — provably disjoint — merge into a result that is
bit-identical to single-shard execution, x/y accounting included.

Entry points: :meth:`SetJoinDatabase.open_sharded`,
``run_disk_join(shards=N)``, ``setjoin join --shards`` /
``db --shards``, and the query service's ``--shards`` flag.  See
``docs/sharding.md`` for the placement math and the invariance
argument.
"""

from .coordinator import FANOUTS, ShardedDatabase
from .placement import (
    DEFAULT_PREFIX_BITS,
    PRUNE_MODES,
    PlacementReport,
    ReplicationPlanner,
    ShardSummary,
    assign_shard,
    deterministic_choice,
    deterministic_partitioner,
    publish_placement,
    summarize_rows,
)
from .rebalance import RebalanceReport, rebalance, reshard
from .shard import Shard, ShardJoinRequest, ShardJoinResponse

__all__ = [
    "ShardedDatabase",
    "FANOUTS",
    "Shard",
    "ShardJoinRequest",
    "ShardJoinResponse",
    "PRUNE_MODES",
    "DEFAULT_PREFIX_BITS",
    "PlacementReport",
    "ReplicationPlanner",
    "ShardSummary",
    "assign_shard",
    "deterministic_choice",
    "deterministic_partitioner",
    "publish_placement",
    "summarize_rows",
    "RebalanceReport",
    "rebalance",
    "reshard",
]
