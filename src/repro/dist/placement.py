"""Containment-aware placement: which shard holds (or receives) which set.

A set containment join cannot be naively hash-partitioned on set
identity: an R-set's supersets can live on any shard, so the *S* side is
hash-placed (each S row lives on exactly one shard, its **home**) and
the *R* side is **replicated** to every shard that may hold superset
candidates — the HyperCube-style distribution specialized to the ⊆
predicate.  This module owns the three placement decisions:

* **Row → home shard** (:func:`assign_shard`): rendezvous (highest-
  random-weight) hashing of the tuple id over the shard-id set, so
  adding a shard moves only the rows the new shard wins and removing
  one moves only that shard's rows (:mod:`repro.dist.rebalance` relies
  on this).
* **R row → target shards** (:class:`ReplicationPlanner`): which shards
  an R row must be shipped to.  Two pruning modes:

  - ``"partitions"`` (default) prunes at *partition-occupancy*
    granularity: ship r to shard j iff ``partitions(r) ∩ occupied(j)``
    is non-empty, where ``occupied(j)`` is the set of partitions with at
    least one local S entry.  This is exact for the paper's accounting:
    for every partition p with S entries on shard j the *entire* global
    R_p is present there, so the per-shard block-nested-loop comparison
    counts sum to exactly the single-shard x, and skipped shards would
    have contributed zero comparisons anyway.
  - ``"signature"`` additionally prunes with a per-shard signature
    digest: r is shipped only if ``prefix(sig(r)) ⊆ᵇ`` the OR of the
    shard's S-signature prefixes and ``|r| ≤`` the shard's maximum S
    cardinality.  Both tests are sound (``sig(r) ⊆ᵇ sig(s)`` implies
    prefix inclusion in the OR, and ``r ⊆ s`` implies ``|r| ≤ |s|``),
    so the *pairs* stay bit-identical — but comparisons that a
    single-shard run would have performed (and counted in x) are
    skipped, so x may shrink.  It is a performance mode, not the
    invariance default.

* **Deterministic partition assignment**
  (:func:`deterministic_choice`): PSJ's R-side routing draws from a
  per-call RNG, which would make the coordinator's occupancy
  computation disagree with the shards' local partitioning.  The dist
  layer pins PSJ's element choice to a pure function of the set
  (minimum under a 64-bit mix), making every assignment content-
  deterministic; DCJ/LSJ already are.

Replication accounting is exact and separated into *logical* entries
(the paper's y: Σ|partitions(row)|, identical at every shard count) and
*physical* placements (rows/entries actually shipped), exposed through
EXPLAIN and the ``setjoin_dist_*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.psj import PSJPartitioner, _mix
from ..core.signatures import DEFAULT_SIGNATURE_BITS, signature_of
from ..errors import ConfigurationError

__all__ = [
    "PRUNE_MODES",
    "assign_shard",
    "deterministic_choice",
    "deterministic_partitioner",
    "ShardSummary",
    "summarize_rows",
    "ReplicationPlanner",
    "PlacementReport",
    "publish_placement",
]

#: Supported R-replication pruning modes (see the module docstring).
PRUNE_MODES = ("partitions", "signature")

#: Width of the per-shard S-signature prefix digest (``"signature"``
#: mode).  64 bits keeps the digest a machine word while catching sets
#: whose low signature bits miss the shard entirely.
DEFAULT_PREFIX_BITS = 64

_SHARD_SALT = 0x9E3779B97F4A7C15


def _shard_weight(tid: int, shard_id: int) -> int:
    """Rendezvous weight of (row, shard): a 64-bit mixed hash."""
    return _mix(_mix(tid) ^ _mix(shard_id ^ _SHARD_SALT))


def assign_shard(tid: int, shard_ids: Sequence[int]) -> int:
    """Home shard of a row: the highest-random-weight (rendezvous) winner.

    Deterministic in ``(tid, set of shard ids)`` — the order of
    ``shard_ids`` does not matter.  Rendezvous hashing gives the
    rebalance guarantee: growing the id set only moves rows *to* the new
    shard, shrinking it only moves the removed shard's rows.
    """
    if not shard_ids:
        raise ConfigurationError("cannot place a row over zero shards")
    return max(shard_ids, key=lambda sid: (_shard_weight(tid, sid), sid))


def deterministic_choice(elements: "frozenset[int]") -> int:
    """Content-deterministic PSJ element choice: min under a 64-bit mix.

    ``_mix`` is a bijection on 64-bit integers, so distinct elements
    never tie; the choice is a pure function of the set, independent of
    scan order and of how many times the set is assigned.
    """
    return min(elements, key=_mix)


def deterministic_partitioner(partitioner):
    """Make a partitioner safe for distributed planning.

    DCJ/LSJ assignments are already pure functions of the set.  A PSJ
    partitioner routing R rows via its per-call RNG is rebuilt with
    :func:`deterministic_choice`, so the coordinator's placement scan
    and every shard's local partition phase agree on each row's
    partitions.  Partitioners are returned unchanged otherwise.
    """
    if isinstance(partitioner, PSJPartitioner) \
            and partitioner._choose_element is None:
        return PSJPartitioner(
            partitioner.num_partitions,
            hash_elements=partitioner.hash_elements,
            choose_element=deterministic_choice,
        )
    return partitioner


@dataclass(frozen=True)
class ShardSummary:
    """A shard's S-slice digest, as seen by the coordinator.

    Everything the replication planner needs to decide which R rows the
    shard must receive, plus the shard's exact share of the logical y
    accounting (``entries`` = Σ|partitions(s)| over local S rows).
    """

    shard_id: int
    rows: int
    entries: int
    occupied: "frozenset[int]"
    signature_prefix: int
    max_cardinality: int


def summarize_rows(
    shard_id: int,
    rows: "Iterable[tuple[int, frozenset[int]]]",
    partitioner,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
    prefix_bits: int = DEFAULT_PREFIX_BITS,
) -> ShardSummary:
    """Digest one shard's S rows (``(tid, elements)`` pairs)."""
    prefix_mask = (1 << prefix_bits) - 1
    count = 0
    entries = 0
    occupied: set[int] = set()
    prefix_or = 0
    max_cardinality = 0
    for __, elements in rows:
        count += 1
        partitions = partitioner.assign_s(elements)
        entries += len(partitions)
        occupied.update(partitions)
        prefix_or |= signature_of(elements, signature_bits) & prefix_mask
        if len(elements) > max_cardinality:
            max_cardinality = len(elements)
    return ShardSummary(
        shard_id=shard_id,
        rows=count,
        entries=entries,
        occupied=frozenset(occupied),
        signature_prefix=prefix_or,
        max_cardinality=max_cardinality,
    )


class ReplicationPlanner:
    """Decides, R row by R row, which shards must receive a copy.

    Stateful: every :meth:`targets` call updates the exact replication
    accounting, and :meth:`report` packages it once the R scan is done.
    """

    def __init__(
        self,
        summaries: "Sequence[ShardSummary]",
        mode: str = "partitions",
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        prefix_bits: int = DEFAULT_PREFIX_BITS,
    ):
        if mode not in PRUNE_MODES:
            raise ConfigurationError(
                f"prune mode must be one of {PRUNE_MODES}, got {mode!r}"
            )
        self.mode = mode
        self.signature_bits = signature_bits
        self.prefix_mask = (1 << prefix_bits) - 1
        self.summaries = sorted(summaries, key=lambda s: s.shard_id)
        self.rows = 0
        self.logical_entries = 0
        self.physical_rows = 0
        self.physical_entries = 0
        self.pruned_occupancy = 0
        self.pruned_signature = 0

    def targets(
        self, elements: "frozenset[int]", partitions: "Sequence[int]"
    ) -> "list[int]":
        """Shard ids that must receive this R row (sorted)."""
        self.rows += 1
        self.logical_entries += len(partitions)
        parts = set(partitions)
        prefix = None
        out: list[int] = []
        for summary in self.summaries:
            if not summary.rows or parts.isdisjoint(summary.occupied):
                self.pruned_occupancy += 1
                continue
            if self.mode == "signature":
                if len(elements) > summary.max_cardinality:
                    self.pruned_signature += 1
                    continue
                if prefix is None:
                    prefix = signature_of(
                        elements, self.signature_bits
                    ) & self.prefix_mask
                if prefix & ~summary.signature_prefix:
                    self.pruned_signature += 1
                    continue
            out.append(summary.shard_id)
        self.physical_rows += len(out)
        self.physical_entries += len(out) * len(partitions)
        return out

    def report(self) -> "PlacementReport":
        return PlacementReport(
            shards=len(self.summaries),
            mode=self.mode,
            r_rows=self.rows,
            s_rows=sum(s.rows for s in self.summaries),
            logical_r_entries=self.logical_entries,
            logical_s_entries=sum(s.entries for s in self.summaries),
            physical_r_rows=self.physical_rows,
            physical_r_entries=self.physical_entries,
            pruned_occupancy=self.pruned_occupancy,
            pruned_signature=self.pruned_signature,
        )


@dataclass(frozen=True)
class PlacementReport:
    """Exact replication accounting of one distributed join's placement."""

    shards: int
    mode: str
    r_rows: int
    s_rows: int
    #: the paper's y, split by side — identical at every shard count.
    logical_r_entries: int
    logical_s_entries: int
    #: what was actually shipped: R row copies and their partition entries.
    physical_r_rows: int
    physical_r_entries: int
    pruned_occupancy: int
    pruned_signature: int

    @property
    def logical_entries(self) -> int:
        """The paper's y = Σ|partitions(row)| over both relations."""
        return self.logical_r_entries + self.logical_s_entries

    @property
    def replication_factor(self) -> float:
        """Average shard copies per R row (1.0 = no replication,
        ``shards`` = full broadcast)."""
        return self.physical_r_rows / self.r_rows if self.r_rows else 0.0

    @property
    def pruned_shard_visits(self) -> int:
        return self.pruned_occupancy + self.pruned_signature

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "mode": self.mode,
            "r_rows": self.r_rows,
            "s_rows": self.s_rows,
            "logical_r_entries": self.logical_r_entries,
            "logical_s_entries": self.logical_s_entries,
            "physical_r_rows": self.physical_r_rows,
            "physical_r_entries": self.physical_r_entries,
            "replication_factor": round(self.replication_factor, 6),
            "pruned_occupancy": self.pruned_occupancy,
            "pruned_signature": self.pruned_signature,
        }

    def explain_lines(self) -> "list[str]":
        """The EXPLAIN section describing this placement."""
        return [
            f"distribution: {self.shards} shards (prune={self.mode})",
            f"  R replication: {self.physical_r_rows} placements for "
            f"{self.r_rows} rows → factor "
            f"{self.replication_factor:.3f} (bounds: 1.0 ≤ factor ≤ "
            f"{float(self.shards):.1f})",
            f"  logical y (paper accounting): {self.logical_entries} "
            f"= {self.logical_r_entries} R + "
            f"{self.logical_s_entries} S entries",
            f"  physical partition entries shipped: "
            f"{self.physical_r_entries} R + "
            f"{self.logical_s_entries} S",
            f"  pruned shard visits: {self.pruned_occupancy} by "
            f"partition occupancy, {self.pruned_signature} by "
            f"signature prefix / cardinality",
        ]


def publish_placement(report: PlacementReport, registry=None) -> None:
    """Publish one placement's accounting as ``setjoin_dist_*`` metrics."""
    from ..obs.registry import get_registry

    reg = registry if registry is not None else get_registry()
    reg.gauge(
        "setjoin_dist_shards", "Shard count of the last distributed join"
    ).set(report.shards)
    reg.counter(
        "setjoin_dist_joins_total", "Distributed joins coordinated"
    ).inc()
    reg.counter(
        "setjoin_dist_replicated_rows_total",
        "R-row shard placements shipped by the coordinator",
    ).inc(report.physical_r_rows)
    reg.counter(
        "setjoin_dist_replicated_entries_total",
        "Physical R partition entries shipped to shards",
    ).inc(report.physical_r_entries)
    reg.counter(
        "setjoin_dist_pruned_shard_visits_total",
        "R-row shard placements skipped by occupancy/signature pruning",
    ).inc(report.pruned_shard_visits)
    reg.gauge(
        "setjoin_dist_replication_factor",
        "Average shard copies per R row in the last distributed join",
    ).set(report.replication_factor)
