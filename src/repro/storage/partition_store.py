"""Partition data stored as portioned B-tree records.

The paper found that appending to one variable-size record per partition
degrades as partitions grow, and that the efficient layout is to "split
each partition into portions of equal sizes, while still keeping the
partition in a single B-tree, and to use the combination of the portion
number and partition index as the key of the B-tree."  This module
implements exactly that layout:

* One B-tree per relation holds all of its partitions.
* Key = (partition index u32, portion number u32), so a partition's
  portions are contiguous in key order and can be range-scanned in batches.
* Value = a packed run of fixed-width (signature, tid) entries.

A ``monolithic=True`` mode emulates the paper's rejected initial design
(one growing record per partition, rewritten on every append) so the
portioning optimization can be measured as an ablation.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import ConfigurationError
from ..obs.registry import get_registry
from .btree import BTree
from .buffer import BufferPool
from .serialization import (
    decode_partition_entry,
    encode_partition_entry,
    partition_entry_size,
)

__all__ = ["PartitionStore"]

_KEY_BYTES = 8


def _portion_key(partition: int, portion: int) -> bytes:
    return partition.to_bytes(4, "big") + portion.to_bytes(4, "big")


class PartitionStore:
    """Write-then-scan store of (signature, tid) partition entries."""

    def __init__(
        self,
        pool: BufferPool,
        signature_bytes: int,
        num_partitions: int,
        portion_entries: int | None = None,
        monolithic: bool = False,
    ):
        if num_partitions < 1:
            raise ConfigurationError(f"need >= 1 partition, got {num_partitions}")
        if signature_bytes < 1:
            raise ConfigurationError("signature must be at least one byte")
        self.pool = pool
        self.signature_bytes = signature_bytes
        self.num_partitions = num_partitions
        self.monolithic = monolithic
        self.entry_size = partition_entry_size(signature_bytes)
        max_value = self._max_value_bytes(pool)
        default = max(1, max_value // self.entry_size)
        self.portion_entries = portion_entries or default
        if self.portion_entries * self.entry_size > max_value:
            raise ConfigurationError(
                f"{self.portion_entries} entries of {self.entry_size} bytes "
                f"exceed the {max_value}-byte record limit"
            )
        self._tree = BTree.create(pool)
        # Cached handle: every portion flush is a spill of buffered
        # partition entries to temporary B-tree records — the ledger's
        # "spill bytes" resource.
        self._spill_counter = get_registry().counter(
            "setjoin_spill_bytes_total",
            "Partition-entry bytes spilled to temporary B-tree records",
        )
        self._buffers: list[bytearray] = [bytearray() for __ in range(num_partitions)]
        self._portion_counts = [0] * num_partitions
        self._entry_counts = [0] * num_partitions
        self._sealed = False
        self._dropped = False
        self._attached = False

    @staticmethod
    def _max_value_bytes(pool: BufferPool) -> int:
        # Must satisfy the B-tree's two-entries-per-node constraint.
        return (pool.disk.payload_size - 27) // 2 - 32

    # ------------------------------------------------------------------
    # Read-only reopen (the partition-parallel engine's worker path)
    # ------------------------------------------------------------------

    @property
    def meta_page_id(self) -> int:
        """Page id of the backing B-tree's meta page.

        Together with the disk file this fully identifies a sealed store,
        so another process can :meth:`attach` a read-only view of it.
        """
        return self._tree.meta_page_id

    @classmethod
    def attach(
        cls,
        pool: BufferPool,
        meta_page_id: int,
        signature_bytes: int,
        num_partitions: int,
        entry_counts: "list[int] | None" = None,
    ) -> "PartitionStore":
        """Open a read-only view of a sealed store through another pool.

        This is how parallel join workers see the partition data: each
        worker opens its own :class:`~repro.storage.pager.FileDiskManager`
        and :class:`BufferPool` over the same file and attaches at the
        store's :attr:`meta_page_id`, so no mutable state is shared with
        the parent or with sibling workers.  The view is born sealed;
        appending or dropping through it is rejected.
        """
        if signature_bytes < 1:
            raise ConfigurationError("signature must be at least one byte")
        if num_partitions < 1:
            raise ConfigurationError(f"need >= 1 partition, got {num_partitions}")
        store = cls.__new__(cls)
        store.pool = pool
        store.signature_bytes = signature_bytes
        store.num_partitions = num_partitions
        store.monolithic = False
        store.entry_size = partition_entry_size(signature_bytes)
        store.portion_entries = max(
            1, cls._max_value_bytes(pool) // store.entry_size
        )
        store._tree = BTree(pool, meta_page_id)
        store._buffers = []
        store._portion_counts = [0] * num_partitions
        store._entry_counts = (
            list(entry_counts) if entry_counts is not None
            else [0] * num_partitions
        )
        store._sealed = True
        store._dropped = False
        store._attached = True
        return store

    # ------------------------------------------------------------------
    # Write phase
    # ------------------------------------------------------------------

    def append(self, partition: int, signature: int, tid: int) -> None:
        """Append one (signature, tid) entry to a partition."""
        if self._sealed:
            raise ConfigurationError("partition store already sealed")
        if not 0 <= partition < self.num_partitions:
            raise ConfigurationError(
                f"partition {partition} out of range 0..{self.num_partitions - 1}"
            )
        entry = encode_partition_entry(signature, tid, self.signature_bytes)
        self._entry_counts[partition] += 1
        if self.monolithic:
            self._append_monolithic(partition, entry)
            return
        buffer = self._buffers[partition]
        buffer += entry
        if len(buffer) >= self.portion_entries * self.entry_size:
            self._flush_portion(partition)

    def _append_monolithic(self, partition: int, entry: bytes) -> None:
        # Rejected design from the paper: read-modify-write one record.
        key = _portion_key(partition, 0)
        existing = self._tree.get(key) or b""
        record = existing + entry
        if len(record) > self._max_value_bytes(self.pool):
            raise ConfigurationError(
                "monolithic partition record overflowed; use portioned mode "
                "for partitions of this size"
            )
        self._tree.insert(key, record)
        self._spill_counter.inc(len(entry))

    def _flush_portion(self, partition: int) -> None:
        buffer = self._buffers[partition]
        if not buffer:
            return
        key = _portion_key(partition, self._portion_counts[partition])
        self._tree.insert(key, bytes(buffer))
        self._spill_counter.inc(len(buffer))
        self._portion_counts[partition] += 1
        buffer.clear()

    def seal(self) -> None:
        """Flush all partial portions; the store becomes read-only."""
        if self._sealed:
            return
        if not self.monolithic:
            for partition in range(self.num_partitions):
                self._flush_portion(partition)
        self._sealed = True

    @property
    def dropped(self) -> bool:
        """Whether the store's pages have already been reclaimed."""
        return self._dropped

    def drop(self) -> int:
        """Free the store's pages (partitions are temporary); returns the
        number of pages reclaimed.  Idempotent; the store must not be
        written or scanned afterwards."""
        if self._attached:
            raise ConfigurationError(
                "a read-only attached view cannot drop the store; "
                "only the owning process reclaims partition pages"
            )
        if self._dropped:
            return 0
        self._sealed = True
        self._dropped = True
        return self._tree.destroy()

    # ------------------------------------------------------------------
    # Read phase
    # ------------------------------------------------------------------

    def partition_size(self, partition: int) -> int:
        """Number of entries appended to ``partition``."""
        return self._entry_counts[partition]

    @property
    def total_entries(self) -> int:
        """Total (signature, tid) entries across all partitions.

        This is the numerator of the paper's replication factor.
        """
        return sum(self._entry_counts)

    def scan_partition(self, partition: int) -> Iterator[tuple[int, int]]:
        """Yield all (signature, tid) entries of one partition in order."""
        for batch in self.scan_partition_batches(partition):
            yield from batch

    def scan_partition_batches(
        self, partition: int, batch_portions: int = 8
    ) -> Iterator[list[tuple[int, int]]]:
        """Yield a partition's entries in multi-portion batches.

        The join phase reads "portions of partitions ... in batches to avoid
        random I/O"; ``batch_portions`` controls how many portions are
        grouped into one returned batch.
        """
        if not self._sealed:
            raise ConfigurationError("seal() the store before scanning")
        start = _portion_key(partition, 0)
        end = _portion_key(partition + 1, 0)
        batch: list[tuple[int, int]] = []
        portions_in_batch = 0
        for __, record in self._tree.scan(start, end):
            offset = 0
            while offset < len(record):
                batch.append(
                    decode_partition_entry(record, offset, self.signature_bytes)
                )
                offset += self.entry_size
            portions_in_batch += 1
            if portions_in_batch >= batch_portions:
                yield batch
                batch = []
                portions_in_batch = 0
        if batch:
            yield batch
