"""Storage substrate: pages, buffer pool, B-trees and record stores.

This package is the reproduction's replacement for the Berkeley DB storage
manager used by the paper's Java testbed.  It provides file-backed (or
in-memory) paged storage with exact physical-I/O accounting, a buffer pool
with pluggable replacement policies, a B+tree access method, and the two
record layouts the testbed needs: tid-keyed relations and portioned
partition data.
"""

from .buffer import BufferPool, BufferStats, REPLACEMENT_POLICIES
from .catalog import CATALOG_META_PAGE, Catalog
from .btree import BTree
from .pager import (
    DEFAULT_PAGE_SIZE,
    DiskManager,
    FileDiskManager,
    InMemoryDiskManager,
    IOStats,
)
from .partition_store import PartitionStore
from .relation_store import DEFAULT_PAYLOAD_SIZE, RelationStore

__all__ = [
    "BufferPool",
    "BufferStats",
    "Catalog",
    "CATALOG_META_PAGE",
    "REPLACEMENT_POLICIES",
    "BTree",
    "DEFAULT_PAGE_SIZE",
    "DiskManager",
    "FileDiskManager",
    "InMemoryDiskManager",
    "IOStats",
    "PartitionStore",
    "DEFAULT_PAYLOAD_SIZE",
    "RelationStore",
]
