"""Storage substrate: pages, buffer pool, B-trees and record stores.

This package is the reproduction's replacement for the Berkeley DB storage
manager used by the paper's Java testbed.  It provides file-backed (or
in-memory) paged storage with exact physical-I/O accounting, checksummed
pages, write-ahead logging with crash recovery, a buffer pool with
pluggable replacement policies, a B+tree access method, the two record
layouts the testbed needs (tid-keyed relations and portioned partition
data), and a fault-injection subsystem for proving the reliability
properties.
"""

from .buffer import BufferPool, BufferStats, REPLACEMENT_POLICIES
from .catalog import CATALOG_META_PAGE, Catalog
from .btree import BTree
from .faults import (
    CrashSimulator,
    FaultInjectingDiskManager,
    InjectedIOError,
    SimulatedCrash,
    flip_bit,
)
from .pager import (
    DEFAULT_PAGE_SIZE,
    PAGE_HEADER_SIZE,
    DiskManager,
    FileDiskManager,
    InMemoryDiskManager,
    IOStats,
    decode_page,
    encode_page,
)
from .partition_store import PartitionStore
from .relation_store import DEFAULT_PAYLOAD_SIZE, RelationStore
from .wal import WALDiskManager, WriteAheadLog

__all__ = [
    "BufferPool",
    "BufferStats",
    "Catalog",
    "CATALOG_META_PAGE",
    "CrashSimulator",
    "REPLACEMENT_POLICIES",
    "BTree",
    "DEFAULT_PAGE_SIZE",
    "PAGE_HEADER_SIZE",
    "DiskManager",
    "FaultInjectingDiskManager",
    "FileDiskManager",
    "InjectedIOError",
    "InMemoryDiskManager",
    "IOStats",
    "PartitionStore",
    "DEFAULT_PAYLOAD_SIZE",
    "RelationStore",
    "SimulatedCrash",
    "WALDiskManager",
    "WriteAheadLog",
    "decode_page",
    "encode_page",
    "flip_bit",
]
