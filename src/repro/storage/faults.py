"""First-class fault injection for the storage substrate.

Promoted from an ad-hoc test helper into a subsystem: everything needed
to prove the reliability layer's claims lives here.

* :class:`FaultInjectingDiskManager` -- a :class:`DiskManager` wrapper
  operating at the *physical* page level (below checksumming), so an
  injected torn write or bit flip reaches the stored bytes exactly the
  way real disk corruption would, and must be caught by the page CRC.
  Fault modes compose: fail-after-N-I/Os, fail-on-specific-page, torn
  writes, bit flips, and crash points can all be armed on one manager.
* :class:`CrashSimulator` -- a kill-and-reopen harness that runs a
  database operation once per physical I/O index, "crashes" the process
  at that index, reopens the database (running WAL recovery) and asserts
  caller-supplied invariants.  Sweeping *every* index is the strongest
  crash-consistency check short of real power-pull testing.

The wrapper shares the wrapped manager's :class:`IOStats` object, so a
physical operation is counted exactly once no matter which layer
performed it (the old test helper double-counted).
"""

from __future__ import annotations

import os
import shutil
from typing import Callable, Iterable

from ..errors import StorageError
from .pager import DiskManager, FileDiskManager

__all__ = [
    "InjectedIOError",
    "SimulatedCrash",
    "SimulatedWorkerDeath",
    "FaultInjectingDiskManager",
    "CrashSimulator",
    "flip_bit",
]


class InjectedIOError(StorageError):
    """A transient or permanent I/O failure raised by fault injection."""


class SimulatedWorkerDeath(StorageError):
    """A parallel join worker killed by chaos injection.

    Raised inside a shard when the chaos layer
    (:class:`repro.service.chaos.ChaosInjector`) marks its spec with
    ``chaos_kill`` but the shard runs in the parent process (serial or
    thread backend), where a real ``os._exit`` would take the whole
    service down.  In a forked/spawned worker process the kill is real —
    the process hard-exits and the parent sees a broken pool — so both
    paths converge on a transient
    :class:`~repro.errors.ParallelExecutionError` the retry layer can
    handle.
    """


class SimulatedCrash(StorageError):
    """Process death at a chosen physical I/O.

    Unlike :class:`InjectedIOError` (a *survivable* fault the caller may
    handle), a simulated crash is terminal: once raised, every further
    I/O on the manager raises it too, like a dead disk under a dead
    process.  Test harnesses catch it, discard all in-memory state and
    reopen from the surviving files.
    """


def flip_bit(disk: DiskManager, page_id: int, bit_index: int = 0) -> None:
    """Flip one bit of a page's stored *physical* image in place.

    Operates below the checksum, so the next logical read of the page
    must raise :class:`~repro.errors.CorruptPageError` (unless the page
    was still all-zero and the flip merely made it non-zero garbage,
    which the CRC also rejects).
    """
    raw = bytearray(disk._read_physical(page_id))
    raw[bit_index // 8] ^= 1 << (bit_index % 8)
    disk._write_physical(page_id, bytes(raw))


class FaultInjectingDiskManager(DiskManager):
    """Wraps a disk manager, injecting faults at the physical page level.

    The wrapper *is* the disk manager its users see -- it owns the free
    list and checksumming (inherited from :class:`DiskManager`) and uses
    the wrapped manager purely as a physical page array.  All armed
    fault modes consult one monotonically increasing physical I/O index
    (reads, writes and growth each count one I/O), so a crash point
    identified in one run can be replayed exactly in the next.

    Typical arming::

        disk = FaultInjectingDiskManager(FileDiskManager(path))
        disk.fail_after(40)          # 40 I/Os succeed, then InjectedIOError
        disk.fail_on_page(7, "read") # reads of page 7 fail
        disk.crash_at(13)            # SimulatedCrash before the 13th I/O
        disk.torn_write_at(13)       # half the page hits disk, then crash
        disk.flip_bit(3, bit_index=100)  # immediate silent corruption
    """

    def __init__(self, inner: DiskManager):
        super().__init__(inner.page_size)
        self.inner = inner
        self.stats = inner.stats  # shared: each physical op counted once
        self.io_index = 0
        self.failing = False
        self.trace: list[tuple[str, int | None]] = []
        self.record_trace = False
        self._budget: int | None = None
        self._budget_ops: tuple[str, ...] = ()
        self._page_faults: dict[int, str] = {}
        self._crash_at: int | None = None
        self._torn_at: int | None = None
        self._torn_keep: int | None = None

    # ------------------------------------------------------------------
    # Arming and disarming faults
    # ------------------------------------------------------------------

    def fail_after(
        self, budget: int, ops: Iterable[str] = ("read", "write", "grow")
    ) -> "FaultInjectingDiskManager":
        """Let ``budget`` more matching I/Os succeed, then fail all I/O
        until :meth:`heal`."""
        self._budget = budget
        self._budget_ops = tuple(ops)
        return self

    def fail_on_page(
        self, page_id: int, op: str = "any"
    ) -> "FaultInjectingDiskManager":
        """Fail every ``op`` ("read", "write" or "any") touching a page."""
        self._page_faults[page_id] = op
        return self

    def crash_at(self, io_index: int) -> "FaultInjectingDiskManager":
        """Simulate process death just before physical I/O ``io_index``."""
        self._crash_at = io_index
        return self

    def torn_write_at(
        self, io_index: int, keep_bytes: int | None = None
    ) -> "FaultInjectingDiskManager":
        """At write index ``io_index``, persist only the first
        ``keep_bytes`` (default: half the page) and then crash -- the
        classic torn page."""
        self._torn_at = io_index
        self._torn_keep = keep_bytes
        return self

    def flip_bit(self, page_id: int, bit_index: int = 0) -> None:
        """Silently corrupt one stored bit right now (no I/O counted --
        this is the injector acting as cosmic ray, not the system)."""
        flip_bit(self.inner, page_id, bit_index)

    def heal(self) -> None:
        """Clear sticky failure state and disarm budget/page faults."""
        self.failing = False
        self._budget = None
        self._page_faults.clear()

    # ------------------------------------------------------------------
    # The shared fault clock
    # ------------------------------------------------------------------

    def _tick(self, op: str, page_id: int | None) -> None:
        index = self.io_index
        self.io_index += 1
        if self.record_trace:
            self.trace.append((op, page_id))
        if self._crash_at is not None and index >= self._crash_at:
            raise SimulatedCrash(
                f"simulated crash at physical I/O {index} ({op}"
                + (f" page {page_id}" if page_id is not None else "")
                + ")"
            )
        if self.failing:
            raise InjectedIOError("injected disk failure (disk is down)")
        if self._budget is not None and op in self._budget_ops:
            if self._budget <= 0:
                self.failing = True
                raise InjectedIOError("injected disk failure (budget exhausted)")
            self._budget -= 1
        if page_id is not None:
            mode = self._page_faults.get(page_id)
            if mode is not None and mode in ("any", op):
                raise InjectedIOError(
                    f"injected disk failure ({op} of page {page_id})"
                )

    def external_io(self, label: str = "external") -> None:
        """Advance the fault clock for I/O performed outside this manager
        (the write-ahead log passes this as its ``io_hook``)."""
        self._tick(label, None)

    # ------------------------------------------------------------------
    # Physical layer: delegate to the wrapped manager, faults first
    # ------------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    def _read_physical(self, page_id: int) -> bytes:
        self._tick("read", page_id)
        return self.inner._read_physical(page_id)

    def _write_physical(self, page_id: int, raw: bytes) -> None:
        self._tick("write", page_id)
        if self._torn_at is not None and self.io_index - 1 >= self._torn_at:
            keep = self._torn_keep
            if keep is None:
                keep = self.page_size // 2
            old = self.inner._read_physical(page_id)
            self.inner._write_physical(page_id, raw[:keep] + old[keep:])
            self._crash_at = self.io_index  # the process dies with the tear
            raise SimulatedCrash(
                f"torn write of page {page_id}: only {keep} of "
                f"{self.page_size} bytes persisted"
            )
        self.inner._write_physical(page_id, raw)

    def _grow_physical(self) -> int:
        self._tick("grow", None)
        # Grow through the inner *physical* layer so its allocation
        # counter is not bumped twice (the logical wrapper already counts
        # via the shared stats object).
        return self.inner._grow_physical()

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    def kill(self) -> None:
        self.inner.kill()


class CrashSimulator:
    """Kill-and-reopen harness for file-backed :class:`SetJoinDatabase`.

    :meth:`sweep` runs an operation once per physical I/O index k,
    crashing the "process" just before I/O k, then reopens the database
    (which runs WAL recovery) and hands it to a caller-supplied invariant
    check.  The database and WAL files are restored from a pristine seed
    before every iteration, so each crash point is tested independently.

    Crashes are injected into *all* physical I/O -- database page reads,
    writes, growth, WAL appends and WAL truncation -- including the I/O
    performed by recovery itself, so recovery is also proven restartable.

    ::

        sim = CrashSimulator(tmp_path)
        def prepare(db): db.create_relation("base", rows)
        def operation(db): db.create_relation("fresh", more_rows)
        def check(db, crashed):
            assert set(db.relation_names()) <= {"base", "fresh"}
        points = sim.sweep(prepare, operation, check)
    """

    def __init__(
        self,
        workdir: str | os.PathLike,
        page_size: int = 512,
        buffer_pages: int = 16,
    ):
        self.workdir = str(workdir)
        self.page_size = page_size
        self.buffer_pages = buffer_pages
        self._seed_dir = os.path.join(self.workdir, "crashsim-seed")
        self._live_dir = os.path.join(self.workdir, "crashsim-live")
        self._db_name = "crash.db"

    # ------------------------------------------------------------------

    def _db_path(self, directory: str) -> str:
        return os.path.join(directory, self._db_name)

    def _open_injected(self, crash_at: int | None):
        """Open the live database with a fault layer below WAL/checksums."""
        from ..database import SetJoinDatabase
        from .wal import WriteAheadLog

        path = self._db_path(self._live_dir)
        base = FileDiskManager(
            path, self.page_size, fsync=False, buffering=0
        )
        fault = FaultInjectingDiskManager(base)
        if crash_at is not None:
            fault.crash_at(crash_at)
        wal = WriteAheadLog(
            path + ".wal", self.page_size, fsync=False,
            io_hook=fault.external_io,
        )
        try:
            db = SetJoinDatabase(
                path=path,
                page_size=self.page_size,
                buffer_pages=self.buffer_pages,
                disk=fault,
                wal=wal,
            )
        except BaseException:
            base.kill()
            wal.kill()
            raise
        return db, fault

    def _open_clean(self, directory: str):
        from ..database import SetJoinDatabase

        return SetJoinDatabase.open(
            self._db_path(directory),
            page_size=self.page_size,
            buffer_pages=self.buffer_pages,
        )

    def _reset_live_from_seed(self) -> None:
        shutil.rmtree(self._live_dir, ignore_errors=True)
        shutil.copytree(self._seed_dir, self._live_dir)

    # ------------------------------------------------------------------

    def sweep(
        self,
        prepare: Callable | None,
        operation: Callable,
        check: Callable,
        max_points: int | None = None,
    ) -> int:
        """Crash ``operation`` at every physical I/O index and verify.

        ``prepare(db)`` seeds the database once, fault-free.
        ``operation(db)`` is the workload under test.
        ``check(db, crashed)`` receives the reopened database after each
        crash (``crashed=True``) and once after the uninterrupted run
        (``crashed=False``); it should assert recovery invariants.

        Returns the number of crash points exercised.  ``max_points``
        caps the sweep by striding evenly across the I/O range (the
        endpoints are always included).
        """
        os.makedirs(self.workdir, exist_ok=True)
        shutil.rmtree(self._seed_dir, ignore_errors=True)
        os.makedirs(self._seed_dir)
        seed_db = self._open_clean(self._seed_dir)
        try:
            if prepare is not None:
                prepare(seed_db)
        finally:
            seed_db.close()

        # Dry run: learn the operation's total physical I/O count.
        self._reset_live_from_seed()
        db, fault = self._open_injected(crash_at=None)
        try:
            operation(db)
        finally:
            db.close()
        total = fault.io_index

        indices = list(range(total))
        if max_points is not None and len(indices) > max_points:
            stride = max(1, len(indices) // max_points)
            indices = indices[::stride]
            if indices[-1] != total - 1:
                indices.append(total - 1)

        exercised = 0
        for crash_index in indices:
            self._reset_live_from_seed()
            crashed = False
            db = None
            try:
                db, fault = self._open_injected(crash_at=crash_index)
                operation(db)
            except SimulatedCrash:
                crashed = True
            finally:
                if db is not None:
                    if crashed:
                        db.kill()
                    else:
                        db.close()
            exercised += 1
            recovered = self._open_clean(self._live_dir)
            try:
                check(recovered, crashed)
            finally:
                recovered.close()

        # Uninterrupted control run through the same machinery.
        self._reset_live_from_seed()
        db, __ = self._open_injected(crash_at=None)
        try:
            operation(db)
        finally:
            db.close()
        final = self._open_clean(self._live_dir)
        try:
            check(final, False)
        finally:
            final.close()
        return exercised
