"""Physical-page write-ahead logging and crash recovery.

The paper's testbed inherited recovery from Berkeley DB; this module
provides the equivalent for the from-scratch substrate.  Two pieces:

* :class:`WriteAheadLog` -- an append-only log of page after-images plus
  commit records, each individually checksummed, with fsync barriers at
  the commit point.
* :class:`WALDiskManager` -- a transactional :class:`DiskManager` that
  buffers every page write made inside a transaction, logs the final
  image of each dirty page to the WAL at commit, and only then applies
  the images to the underlying database file (the checkpoint).

Protocol (standard redo-only WAL with no-steal buffering):

1. ``begin()`` opens a transaction.  Until commit, ``write_page`` and
   page allocation are buffered in memory; the database file is never
   touched, so an uncommitted transaction leaves no trace on disk.
2. ``commit()`` appends one FRAME record per dirty page, then a COMMIT
   record, then fsyncs the log -- the commit point.  It then applies the
   images to the database file, fsyncs it, and truncates the log (the
   checkpoint).  Replaying full page images is idempotent, so a crash
   anywhere inside the checkpoint is repaired by replaying the log.
3. ``rollback()`` (or any exception path) discards the buffered images;
   nothing was written, so nothing needs undoing.

Recovery on open scans the log: frames of a transaction whose COMMIT
record made it to disk are replayed into the database file (redo);
anything after the last durable COMMIT -- including torn, truncated or
bit-flipped records, detected by the per-record CRC -- is discarded
(rollback) and the log is reset.  A database file is therefore always
openable in either the pre- or post-transaction state, never in between.

Log file layout::

    header:  magic "SJWAL1\\x00\\n" | page_size u32 | crc u32
    FRAME:   0x01 | page_id u64 | lsn u64 | len u32 | payload | crc u32
    COMMIT:  0x02 | lsn u64 | crc u32

Every record CRC covers all preceding bytes of the record.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Callable

from ..errors import WALError
from ..obs.registry import get_registry
from ..obs.trace import current_tracer
from .pager import DiskManager

__all__ = ["WriteAheadLog", "WALDiskManager", "WAL_MAGIC"]

WAL_MAGIC = b"SJWAL1\x00\n"

_REC_FRAME = 0x01
_REC_COMMIT = 0x02

_HEADER = struct.Struct(">8sI")  # magic, page_size (+ trailing crc u32)
_FRAME_HEAD = struct.Struct(">BQQI")  # type, page_id, lsn, payload length
_COMMIT_HEAD = struct.Struct(">BQ")  # type, lsn


def _with_crc(body: bytes) -> bytes:
    return body + zlib.crc32(body).to_bytes(4, "big")


class WriteAheadLog:
    """Append-only, checksummed log of page images and commit records.

    ``path=None`` keeps the log in memory: transactions still get
    atomicity against exceptions, but nothing survives the process (used
    for in-memory databases, where durability is meaningless anyway).

    ``io_hook`` is called with a label before every physical log write;
    the crash simulator uses it to count (and interrupt) WAL I/O with the
    same clock as database-page I/O.
    """

    def __init__(
        self,
        path: str | None,
        page_size: int,
        fsync: bool = True,
        io_hook: Callable[[str], None] | None = None,
    ):
        self.path = path
        self.page_size = page_size
        self.fsync = fsync
        self._io_hook = io_hook
        # Cached registry handle: one dict lookup at construction, a
        # plain attribute increment per fsync.
        self._fsync_counter = get_registry().counter(
            "setjoin_wal_fsyncs_total", "WAL fsync barriers issued"
        )
        self._bytes_counter = get_registry().counter(
            "setjoin_wal_bytes_total", "Bytes appended to the WAL"
        )
        self._next_lsn = 1
        self._closed = False
        self._memory_log: list[bytes] | None = None
        self._file = None
        if path is None:
            self._memory_log = []
            return
        try:
            self._file = open(path, "r+b")
        except FileNotFoundError:
            self._file = open(path, "w+b")
        self._file.seek(0, os.SEEK_END)
        if self._file.tell() == 0:
            self._tick("wal-header")
            self._file.write(_with_crc(_HEADER.pack(WAL_MAGIC, page_size)))
            self._sync()

    # ------------------------------------------------------------------

    def _tick(self, label: str) -> None:
        if self._io_hook is not None:
            self._io_hook(label)

    def _sync(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
                self._fsync_counter.inc()

    @property
    def size_bytes(self) -> int:
        """Current log length (0 for a reset or in-memory log)."""
        if self._file is None:
            return sum(len(record) for record in (self._memory_log or []))
        self._file.seek(0, os.SEEK_END)
        return max(0, self._file.tell() - _HEADER.size - 4)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def log_transaction(self, frames: dict[int, bytes]) -> dict[int, int]:
        """Append all ``{page_id: payload}`` frames plus a COMMIT, then
        fsync (the commit point).  Returns the LSN stamped on each page.
        """
        if self._closed:
            raise WALError("write-ahead log is closed")
        lsns: dict[int, int] = {}
        for page_id in sorted(frames):
            payload = frames[page_id]
            lsn = self._next_lsn
            self._next_lsn += 1
            lsns[page_id] = lsn
            record = _with_crc(
                _FRAME_HEAD.pack(_REC_FRAME, page_id, lsn, len(payload)) + payload
            )
            self._append(record, f"wal-frame:{page_id}")
        commit_lsn = self._next_lsn
        self._next_lsn += 1
        self._append(_with_crc(_COMMIT_HEAD.pack(_REC_COMMIT, commit_lsn)),
                     "wal-commit")
        self._sync()
        return lsns

    def _append(self, record: bytes, label: str) -> None:
        self._tick(label)
        self._bytes_counter.inc(len(record))
        if self._file is None:
            assert self._memory_log is not None
            self._memory_log.append(record)
        else:
            self._file.seek(0, os.SEEK_END)
            self._file.write(record)

    def reset(self) -> None:
        """Discard all records (called after a successful checkpoint)."""
        if self._closed:
            raise WALError("write-ahead log is closed")
        if self._file is None:
            assert self._memory_log is not None
            self._memory_log.clear()
            return
        self._tick("wal-reset")
        self._file.truncate(_HEADER.size + 4)
        self._sync()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> dict[int, tuple[bytes, int]]:
        """Scan the log; return ``{page_id: (payload, lsn)}`` for every
        page image belonging to a *committed* transaction.

        The scan stops at the first truncated or corrupt record; frames
        not followed by a durable COMMIT are discarded.  ``next_lsn`` is
        advanced past everything seen so stamped LSNs stay monotonic.
        """
        if self._file is None:
            return {}
        self._file.seek(0, os.SEEK_END)
        end = self._file.tell()
        if end == 0:
            return {}
        self._file.seek(0)
        header = self._file.read(_HEADER.size + 4)
        if len(header) < _HEADER.size + 4:
            return {}
        magic, page_size = _HEADER.unpack(header[: _HEADER.size])
        if magic != WAL_MAGIC:
            raise WALError(f"bad WAL magic in {self.path!r}")
        if zlib.crc32(header[:-4]) != int.from_bytes(header[-4:], "big"):
            raise WALError(f"corrupt WAL header in {self.path!r}")
        if page_size != self.page_size:
            raise WALError(
                f"WAL page size {page_size} does not match database "
                f"page size {self.page_size}"
            )
        data = self._file.read()
        committed: dict[int, tuple[bytes, int]] = {}
        pending: dict[int, tuple[bytes, int]] = {}
        pos = 0
        while pos < len(data):
            kind = data[pos]
            if kind == _REC_FRAME:
                head_end = pos + _FRAME_HEAD.size
                if head_end > len(data):
                    break
                __, page_id, lsn, length = _FRAME_HEAD.unpack(
                    data[pos:head_end]
                )
                record_end = head_end + length + 4
                if length > len(data) - head_end or record_end > len(data):
                    break
                if zlib.crc32(data[pos : record_end - 4]) != int.from_bytes(
                    data[record_end - 4 : record_end], "big"
                ):
                    break
                pending[page_id] = (data[head_end : record_end - 4], lsn)
                self._next_lsn = max(self._next_lsn, lsn + 1)
                pos = record_end
            elif kind == _REC_COMMIT:
                record_end = pos + _COMMIT_HEAD.size + 4
                if record_end > len(data):
                    break
                if zlib.crc32(data[pos : record_end - 4]) != int.from_bytes(
                    data[record_end - 4 : record_end], "big"
                ):
                    break
                __, lsn = _COMMIT_HEAD.unpack(data[pos : record_end - 4])
                committed.update(pending)
                pending.clear()
                self._next_lsn = max(self._next_lsn, lsn + 1)
                pos = record_end
            else:
                break  # garbage type byte: torn tail
        return committed

    # ------------------------------------------------------------------

    def close(self) -> None:
        if not self._closed and self._file is not None:
            self._sync()
            self._file.close()
        self._closed = True

    def kill(self) -> None:
        """Close without flushing: simulates process death mid-write."""
        if not self._closed and self._file is not None:
            self._file.close()
        self._closed = True


class WALDiskManager(DiskManager):
    """Transactional disk manager layered over a plain one.

    Outside a transaction it is a transparent pass-through (temporary
    join-partition data keeps its write-through I/O profile).  Inside a
    transaction, writes and allocations are buffered and only reach the
    underlying store through the WAL commit protocol, so every
    transaction is all-or-nothing across crashes.

    The I/O counters are shared with the wrapped manager -- one physical
    operation is counted exactly once, whichever layer performs it.
    """

    def __init__(self, inner: DiskManager, wal: WriteAheadLog | None = None):
        super().__init__(inner.page_size)
        self.inner = inner
        self.wal = wal
        self.stats = inner.stats
        self._txn: dict[int, bytes] | None = None
        self._num_pages_local = inner.num_pages
        self._committed_num_pages = inner.num_pages
        self._free_snapshot: tuple[list[int], set[int]] | None = None
        self._wedged = False
        if wal is not None:
            self._recover()

    # ------------------------------------------------------------------
    # Recovery (runs on open)
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        assert self.wal is not None
        committed = self.wal.recover()
        if committed:
            for page_id in sorted(committed):
                payload, lsn = committed[page_id]
                self._extend_inner_to(page_id)
                self.inner.write_page(page_id, payload, lsn)
            self.inner.flush()
        if self.wal.size_bytes:
            self.wal.reset()
        self._num_pages_local = self.inner.num_pages
        self._committed_num_pages = self.inner.num_pages

    def _extend_inner_to(self, page_id: int) -> None:
        while self.inner.num_pages <= page_id:
            self.inner._grow()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    @property
    def wedged(self) -> bool:
        """True after a post-commit-point failure: the WAL holds a committed
        transaction the database file may only partially reflect.  The
        in-process manager refuses further work; reopening recovers."""
        return self._wedged

    def _check_wedged(self) -> None:
        if self._wedged:
            raise WALError(
                "disk manager wedged by a failed checkpoint; "
                "reopen the database to recover from the WAL"
            )

    def begin(self) -> None:
        """Start buffering writes; nothing reaches disk until commit."""
        self._check_wedged()
        if self._txn is not None:
            raise WALError("transaction already active")
        self._txn = {}
        self._committed_num_pages = self._num_pages_local
        self._free_snapshot = (list(self._free_pages), set(self._free_lookup))

    def commit(self) -> None:
        """Log all buffered images, fsync, apply them, truncate the log."""
        if self._txn is None:
            raise WALError("no active transaction")
        frames = self._txn
        if not frames:
            self._txn = None
            self._free_snapshot = None
            self._committed_num_pages = self._num_pages_local
            return
        tracer = current_tracer()
        with tracer.span(
            "wal.commit",
            pages=len(frames),
            payload_bytes=sum(len(image) for image in frames.values()),
        ):
            # Until the COMMIT record is durable, failure leaves the
            # transaction active and cleanly rollbackable.
            with tracer.span("wal.log", pages=len(frames)):
                if self.wal is not None:
                    lsns = self.wal.log_transaction(frames)  # the commit point
                else:
                    lsns = {page_id: 0 for page_id in frames}
            self._txn = None
            self._free_snapshot = None
            self._committed_num_pages = self._num_pages_local
            get_registry().counter(
                "setjoin_wal_commits_total", "Committed WAL transactions"
            ).inc()
            # Checkpoint: idempotent redo of full page images.  A failure past
            # the commit point wedges the manager -- the database file may be
            # half-updated, but the WAL retains everything needed to finish
            # the redo on the next open.
            try:
                with tracer.span("wal.checkpoint", pages=len(frames)):
                    for page_id in sorted(frames):
                        self._extend_inner_to(page_id)
                        self.inner.write_page(
                            page_id, frames[page_id], lsns[page_id]
                        )
                    self.inner.flush()
                    if self.wal is not None:
                        self.wal.reset()
            except BaseException:
                if self.wal is not None:
                    self._wedged = True
                raise

    def rollback(self) -> None:
        """Discard all buffered writes and allocations of the transaction."""
        if self._txn is None:
            raise WALError("no active transaction")
        self._txn = None
        self._num_pages_local = self._committed_num_pages
        if self._free_snapshot is not None:
            self._free_pages, self._free_lookup = self._free_snapshot
            self._free_snapshot = None

    # ------------------------------------------------------------------
    # DiskManager interface
    # ------------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self._num_pages_local

    def read_page(self, page_id: int) -> bytes:
        self._check_wedged()
        self._check_page_id(page_id)
        if self._txn is not None and page_id in self._txn:
            self.stats.page_reads += 1
            return self._txn[page_id]
        return self.inner.read_page(page_id)

    def write_page(self, page_id: int, data: bytes, lsn: int = 0) -> None:
        self._check_wedged()
        self._check_page_id(page_id)
        self._check_data(data)
        if self._txn is None:
            self.inner.write_page(page_id, data, lsn)
            return
        self._txn[page_id] = bytes(data)
        self.stats.page_writes += 1

    def page_lsn(self, page_id: int) -> int:
        self._check_page_id(page_id)
        if self._txn is not None and page_id in self._txn:
            return 0  # not yet stamped; assigned at commit
        return self.inner.page_lsn(page_id)

    def _grow(self) -> int:
        if self._txn is None:
            page_id = self.inner._grow()
            self._num_pages_local = self.inner.num_pages
            return page_id
        page_id = self._num_pages_local
        self._num_pages_local += 1
        # A grown page is all-zero until written; keeping the image in the
        # transaction buffer means reads never fall through to the inner
        # store, which has not grown yet.
        self._txn[page_id] = bytes(self.payload_size)
        self.stats.pages_allocated += 1
        return page_id

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        if self._txn is not None:
            self.rollback()
        self.inner.close()
        if self.wal is not None:
            self.wal.close()

    def kill(self) -> None:
        self._txn = None
        self.inner.kill()
        if self.wal is not None:
            self.wal.kill()
