"""Disk-resident relations keyed by tuple identifier.

Mirrors the paper's testbed layout: "The relations are stored as B-trees
with the tuple identifiers serving as keys."  Each record holds the
set-valued attribute plus a fixed-size payload standing in for the
relation's other attributes (100 bytes in the paper's experiments).

Records larger than a B-tree entry (the paper's motivating sets reach
thousands of elements — e.g. ~10000 active genes) are transparently split
into chunks keyed by ``(tid, chunk number)``, so arbitrarily large sets
round-trip; chunks of one tuple are adjacent in key order and read
sequentially.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .btree import BTree
from .buffer import BufferPool
from .serialization import decode_tuple_record, encode_tuple_record

__all__ = ["RelationStore", "DEFAULT_PAYLOAD_SIZE"]

DEFAULT_PAYLOAD_SIZE = 100


def _chunk_key(tid: int, chunk: int) -> bytes:
    return tid.to_bytes(8, "big") + chunk.to_bytes(4, "big")


class RelationStore:
    """One stored relation with a set-valued attribute.

    Tuples are ``(tid, frozenset[int], payload: bytes)``.  The store assigns
    no semantics to payloads; they exist so that fetching a tuple costs a
    realistic amount of I/O, as in the paper.
    """

    def __init__(self, pool: BufferPool, meta_page_id: int, name: str = ""):
        self.name = name
        self._pool = pool
        self._tree = BTree(pool, meta_page_id)
        self._count: int | None = None

    @classmethod
    def create(cls, pool: BufferPool, name: str = "") -> "RelationStore":
        store = cls.__new__(cls)
        store.name = name
        store._pool = pool
        store._tree = BTree.create(pool)
        store._count = 0
        return store

    @classmethod
    def create_sorted(
        cls,
        pool: BufferPool,
        tuples: Iterable[tuple[int, Iterable[int]]],
        payload_size: int = DEFAULT_PAYLOAD_SIZE,
        name: str = "",
    ) -> "RelationStore":
        """Create and load in one pass from tid-ascending ``(tid, elements)``.

        Uses the B-tree's bottom-up bulk loader — each page written once,
        no splits — which is how the testbed loads relations.  Raises if
        tids are not strictly increasing.
        """
        store = cls.__new__(cls)
        store.name = name
        store._pool = pool
        payload = bytes(payload_size)
        chunk_size = (pool.disk.payload_size - 27) // 2 - 64
        count = 0

        def entries():
            nonlocal count
            for tid, elements in tuples:
                record = encode_tuple_record(tid, elements, payload)
                count += 1
                for chunk, offset in enumerate(
                    range(0, len(record) or 1, chunk_size)
                ):
                    yield _chunk_key(tid, chunk), record[offset : offset + chunk_size]

        store._tree = BTree.bulk_create(pool, entries())
        store._count = count
        return store

    @property
    def meta_page_id(self) -> int:
        """Page id that re-opens this store via the constructor."""
        return self._tree.meta_page_id

    def _chunk_size(self) -> int:
        # Stay safely inside the B-tree's per-entry limit (key is 12 bytes).
        return (self._pool.disk.payload_size - 27) // 2 - 64

    def insert(self, tid: int, elements: Iterable[int], payload: bytes = b"") -> None:
        """Insert one tuple (overwrites an existing tid)."""
        record = encode_tuple_record(tid, elements, payload)
        existing = self._tree.get(_chunk_key(tid, 0))
        if existing is not None:
            self._delete_chunks(tid)
        elif self._count is not None:
            self._count += 1
        size = self._chunk_size()
        for chunk, offset in enumerate(range(0, len(record) or 1, size)):
            self._tree.insert(_chunk_key(tid, chunk), record[offset : offset + size])

    def _delete_chunks(self, tid: int) -> None:
        chunk = 0
        while self._tree.delete(_chunk_key(tid, chunk)):
            chunk += 1

    def bulk_load(
        self,
        tuples: Iterable[tuple[int, Iterable[int]]],
        payload_size: int = DEFAULT_PAYLOAD_SIZE,
    ) -> int:
        """Load ``(tid, elements)`` pairs with uniform zero payloads.

        Returns the number of tuples loaded.
        """
        payload = bytes(payload_size)
        loaded = 0
        for tid, elements in tuples:
            self.insert(tid, elements, payload)
            loaded += 1
        return loaded

    def fetch(self, tid: int) -> tuple[frozenset[int], bytes] | None:
        """Fetch the set and payload of one tuple, or ``None`` if absent."""
        chunks: list[bytes] = []
        for key, value in self._tree.scan(_chunk_key(tid, 0), _chunk_key(tid + 1, 0)):
            chunks.append(value)
        if not chunks:
            return None
        __, elements, payload = decode_tuple_record(b"".join(chunks))
        return elements, payload

    def fetch_set(self, tid: int) -> frozenset[int] | None:
        """Fetch just the set-valued attribute of one tuple."""
        result = self.fetch(tid)
        return None if result is None else result[0]

    def fetch_many(self, tids: Iterable[int]) -> dict[int, frozenset[int]]:
        """Fetch sets for many tids, ordered by tid to avoid random I/O.

        The paper sorts candidate tuple identifiers before fetching them;
        ordered B-tree probes touch each leaf at most once per batch.
        """
        result: dict[int, frozenset[int]] = {}
        for tid in sorted(set(tids)):
            elements = self.fetch_set(tid)
            if elements is not None:
                result[tid] = elements
        return result

    def scan(self) -> Iterator[tuple[int, frozenset[int], bytes]]:
        """Yield all tuples in tid order."""
        current_tid: int | None = None
        chunks: list[bytes] = []
        for key, value in self._tree.items():
            tid = int.from_bytes(key[:8], "big")
            if tid != current_tid:
                if current_tid is not None:
                    yield decode_tuple_record(b"".join(chunks))
                current_tid = tid
                chunks = []
            chunks.append(value)
        if current_tid is not None:
            yield decode_tuple_record(b"".join(chunks))

    def tids(self) -> Iterator[int]:
        """Yield all tuple identifiers in order."""
        previous: int | None = None
        for key, __ in self._tree.items():
            tid = int.from_bytes(key[:8], "big")
            if tid != previous:
                yield tid
                previous = tid

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for __ in self.tids())
        return self._count

    def __contains__(self, tid: int) -> bool:
        return _chunk_key(tid, 0) in self._tree
