"""A paged B+tree over the buffer pool.

This is the reproduction's stand-in for Berkeley DB's B-tree access method,
which the paper's testbed uses both for the input relations (keyed by tuple
identifier) and for the partition data (keyed by partition index and
portion number).

Design:

* Keys and values are arbitrary byte strings; keys are compared
  lexicographically, so fixed-width big-endian integer keys sort
  numerically.
* Every node occupies exactly one page and is (de)serialized through the
  buffer pool on access, so the pool's hit/miss counters and the disk
  manager's physical I/O counters faithfully reflect tree traffic.
* Leaves are chained left-to-right for range scans.
* Deletion is by tombstone-free removal from the leaf without rebalancing
  ("lazy deletion"); the tree never becomes incorrect, only possibly
  under-full -- the standard trade-off for write-once/scan-heavy workloads
  like join partitions.

Page layout::

    byte 0        node type: 0 = internal, 1 = leaf
    bytes 1..2    entry count (big-endian u16)
    bytes 3..10   leaf: next-leaf page id + 1 (0 = none); internal: unused
    bytes 11..    payload

    leaf payload:      repeated (klen uvarint, key, vlen uvarint, value)
    internal payload:  child0 (u64), repeated (klen uvarint, key, child u64)

An internal node with entries ``[(k1, c1), ..., (kn, cn)]`` and first child
``c0`` routes a lookup key ``k`` to ``c_i`` where ``i`` is the number of
separators ``<= k``.  Separator ``k_i`` is the smallest key in subtree
``c_i``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

from ..errors import BTreeError
from .buffer import BufferPool
from .serialization import decode_uvarint, encode_uvarint

__all__ = ["BTree"]

_INTERNAL = 0
_LEAF = 1
_HEADER_SIZE = 11
_NO_LEAF = 0
_MAX_DEPTH = 64  # guards descent against cycles from corrupted pages


class _Node:
    """In-memory image of one B+tree node."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, page_id: int, is_leaf: bool):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: list[bytes] = []
        # Leaves use ``values`` (bytes per key); internals use ``children``
        # (page ids, len(children) == len(keys) + 1).
        self.values: list[bytes] = []
        self.children: list[int] = []
        self.next_leaf: int | None = None

    def encoded_size(self) -> int:
        size = _HEADER_SIZE
        if self.is_leaf:
            for key, value in zip(self.keys, self.values):
                size += len(encode_uvarint(len(key))) + len(key)
                size += len(encode_uvarint(len(value))) + len(value)
        else:
            size += 8
            for key in self.keys:
                size += len(encode_uvarint(len(key))) + len(key) + 8
        return size


class BTree:
    """B+tree of byte keys and byte values.

    Create a new tree with :meth:`create` or reopen an existing one from its
    meta page with the constructor.  The meta page stores the root page id
    so a tree is fully identified by ``(pool, meta_page_id)``.
    """

    def __init__(self, pool: BufferPool, meta_page_id: int):
        self.pool = pool
        self.meta_page_id = meta_page_id
        self._root_id = self._read_meta()

    # ------------------------------------------------------------------
    # Construction and metadata
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, pool: BufferPool) -> "BTree":
        """Allocate an empty tree (meta page + empty root leaf)."""
        meta = pool.new_page()
        root = pool.new_page()
        node = _Node(root.page_id, is_leaf=True)
        cls._store_node_into(pool, node)
        pool.unpin(root.page_id, dirty=True)
        meta.data[0:8] = root.page_id.to_bytes(8, "big")
        pool.unpin(meta.page_id, dirty=True)
        return cls(pool, meta.page_id)

    @classmethod
    def bulk_create(
        cls,
        pool: BufferPool,
        items: "Iterator[tuple[bytes, bytes]] | list[tuple[bytes, bytes]]",
        fill_fraction: float = 0.9,
    ) -> "BTree":
        """Build a tree bottom-up from key-ordered ``(key, value)`` items.

        Packs leaves left-to-right to ``fill_fraction`` of the page, then
        builds each internal level over the one below — no splits, no
        rebalancing, each page written once.  This is how the testbed
        loads relations (tuples arrive in tid order); it is much faster
        than repeated :meth:`insert` and produces a compact tree.

        Keys must be strictly increasing; a violation raises
        :class:`BTreeError`.
        """
        if not 0.1 <= fill_fraction <= 1.0:
            raise BTreeError(f"fill fraction {fill_fraction} outside [0.1, 1]")
        tree = cls.create(pool)
        budget = int((pool.disk.payload_size - _HEADER_SIZE) * fill_fraction)

        # Level 0: pack leaves.
        leaves: list[tuple[bytes, int]] = []  # (first key, page id)
        current = tree._load_node(tree._root_id)  # the empty root leaf
        used = 0
        previous_key: bytes | None = None
        for key, value in items:
            if previous_key is not None and key <= previous_key:
                raise BTreeError(
                    "bulk_create requires strictly increasing keys; "
                    f"{key!r} after {previous_key!r}"
                )
            previous_key = key
            tree._check_entry(key, value)
            size = (
                len(encode_uvarint(len(key))) + len(key)
                + len(encode_uvarint(len(value))) + len(value)
            )
            if current.keys and used + size > budget:
                fresh = tree._new_node(is_leaf=True)
                current.next_leaf = fresh.page_id
                tree._store_node(current)
                leaves.append((bytes(current.keys[0]), current.page_id))
                current = fresh
                used = 0
            current.keys.append(key)
            current.values.append(value)
            used += size
        tree._store_node(current)
        leaves.append((bytes(current.keys[0]) if current.keys else b"",
                       current.page_id))

        # Upper levels: pack (separator, child) runs until one node remains.
        level = leaves
        while len(level) > 1:
            parent_budget = int(
                (pool.disk.payload_size - _HEADER_SIZE - 8) * fill_fraction
            )
            next_level: list[tuple[bytes, int]] = []
            node = tree._new_node(is_leaf=False)
            node.children.append(level[0][1])
            first_key = level[0][0]
            used = 0
            for separator, child in level[1:]:
                size = len(encode_uvarint(len(separator))) + len(separator) + 8
                if node.keys and used + size > parent_budget:
                    tree._store_node(node)
                    next_level.append((first_key, node.page_id))
                    node = tree._new_node(is_leaf=False)
                    node.children.append(child)
                    first_key = separator
                    used = 0
                    continue
                node.keys.append(separator)
                node.children.append(child)
                used += size
            tree._store_node(node)
            next_level.append((first_key, node.page_id))
            level = next_level
        tree._write_meta(level[0][1])
        return tree

    def _read_meta(self) -> int:
        frame = self.pool.fetch(self.meta_page_id)
        root_id = int.from_bytes(frame.data[0:8], "big")
        self.pool.unpin(self.meta_page_id)
        return root_id

    def _write_meta(self, root_id: int) -> None:
        frame = self.pool.fetch(self.meta_page_id)
        frame.data[0:8] = root_id.to_bytes(8, "big")
        self.pool.unpin(self.meta_page_id, dirty=True)
        self._root_id = root_id

    # ------------------------------------------------------------------
    # Node (de)serialization through the buffer pool
    # ------------------------------------------------------------------

    def _load_node(self, page_id: int) -> _Node:
        frame = self.pool.fetch(page_id)
        data = bytes(frame.data)
        self.pool.unpin(page_id)
        node_type = data[0]
        count = int.from_bytes(data[1:3], "big")
        node = _Node(page_id, is_leaf=(node_type == _LEAF))
        pos = _HEADER_SIZE
        if node.is_leaf:
            next_ref = int.from_bytes(data[3:11], "big")
            node.next_leaf = None if next_ref == _NO_LEAF else next_ref - 1
            for _ in range(count):
                klen, pos = decode_uvarint(data, pos)
                key = data[pos : pos + klen]
                pos += klen
                vlen, pos = decode_uvarint(data, pos)
                value = data[pos : pos + vlen]
                pos += vlen
                node.keys.append(key)
                node.values.append(value)
        else:
            node.children.append(int.from_bytes(data[pos : pos + 8], "big"))
            pos += 8
            for _ in range(count):
                klen, pos = decode_uvarint(data, pos)
                key = data[pos : pos + klen]
                pos += klen
                node.keys.append(key)
                node.children.append(int.from_bytes(data[pos : pos + 8], "big"))
                pos += 8
        return node

    @staticmethod
    def _store_node_into(pool: BufferPool, node: _Node) -> None:
        capacity = pool.disk.payload_size
        out = bytearray()
        out.append(_LEAF if node.is_leaf else _INTERNAL)
        out += len(node.keys).to_bytes(2, "big")
        if node.is_leaf:
            next_ref = _NO_LEAF if node.next_leaf is None else node.next_leaf + 1
            out += next_ref.to_bytes(8, "big")
            for key, value in zip(node.keys, node.values):
                out += encode_uvarint(len(key))
                out += key
                out += encode_uvarint(len(value))
                out += value
        else:
            out += bytes(8)
            out += node.children[0].to_bytes(8, "big")
            for key, child in zip(node.keys, node.children[1:]):
                out += encode_uvarint(len(key))
                out += key
                out += child.to_bytes(8, "big")
        if len(out) > capacity:
            raise BTreeError(
                f"node {node.page_id} serializes to {len(out)} bytes "
                f"> page payload capacity {capacity}"
            )
        frame = pool.fetch(node.page_id)
        frame.data[: len(out)] = out
        frame.data[len(out) :] = bytes(capacity - len(out))
        pool.unpin(node.page_id, dirty=True)

    def _store_node(self, node: _Node) -> None:
        self._store_node_into(self.pool, node)

    def _new_node(self, is_leaf: bool) -> _Node:
        frame = self.pool.new_page()
        self.pool.unpin(frame.page_id, dirty=True)
        return _Node(frame.page_id, is_leaf)

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Return the value stored under ``key``, or ``None``."""
        node = self._load_node(self._root_id)
        depth = 0
        while not node.is_leaf:
            depth += 1
            if depth > _MAX_DEPTH:
                raise BTreeError("descent exceeded max depth; tree corrupt?")
            index = bisect_right(node.keys, key)
            node = self._load_node(node.children[index])
        index = bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return bytes(node.values[index])
        return None

    def insert(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key`` with ``value``."""
        self._check_entry(key, value)
        promotions = self._insert_into(self._root_id, key, value)
        while promotions:
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [separator for separator, __ in promotions]
            new_root.children = [self._root_id] + [
                page_id for __, page_id in promotions
            ]
            # Store the new root before pointing the meta page at it: an
            # I/O fault in between must leave the tree readable (pointing
            # at the old root), never at an uninitialized page.
            promotions = self._store_or_split(new_root)
            self._write_meta(new_root.page_id)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present (lazy deletion)."""
        node = self._load_node(self._root_id)
        depth = 0
        while not node.is_leaf:
            depth += 1
            if depth > _MAX_DEPTH:
                raise BTreeError("descent exceeded max depth; tree corrupt?")
            index = bisect_right(node.keys, key)
            node = self._load_node(node.children[index])
        index = bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            del node.keys[index]
            del node.values[index]
            self._store_node(node)
            return True
        return False

    def scan(
        self,
        start_key: bytes | None = None,
        end_key: bytes | None = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(key, value)`` pairs with ``start_key <= key < end_key``.

        ``None`` bounds are open.  Scans follow the leaf chain, so a full
        scan reads each leaf exactly once.
        """
        node = self._load_node(self._root_id)
        depth = 0
        while not node.is_leaf:
            depth += 1
            if depth > _MAX_DEPTH:
                raise BTreeError("descent exceeded max depth; tree corrupt?")
            index = 0 if start_key is None else bisect_right(node.keys, start_key)
            node = self._load_node(node.children[index])
        index = 0 if start_key is None else bisect_left(node.keys, start_key)
        while True:
            while index < len(node.keys):
                key = node.keys[index]
                if end_key is not None and key >= end_key:
                    return
                yield bytes(key), bytes(node.values[index])
                index += 1
            if node.next_leaf is None:
                return
            node = self._load_node(node.next_leaf)
            index = 0

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Full ordered scan."""
        return self.scan()

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def destroy(self) -> int:
        """Free every page of the tree (nodes + meta); returns pages freed.

        The tree must not be used afterwards.  Join partitions are
        temporary — "stored on disk temporarily" in the paper — so the
        operator destroys their trees once the joining phase is done,
        returning the space for reuse.
        """
        freed = 0
        stack = [self._root_id]
        while stack:
            page_id = stack.pop()
            node = self._load_node(page_id)
            if not node.is_leaf:
                stack.extend(node.children)
            self.pool.free_page(page_id)
            freed += 1
        self.pool.free_page(self.meta_page_id)
        return freed + 1

    def height(self) -> int:
        """Number of levels from root to leaf (1 for a lone leaf)."""
        levels = 1
        node = self._load_node(self._root_id)
        while not node.is_leaf:
            levels += 1
            if levels > _MAX_DEPTH:
                raise BTreeError("descent exceeded max depth; tree corrupt?")
            node = self._load_node(node.children[0])
        return levels

    # ------------------------------------------------------------------
    # Insertion internals
    # ------------------------------------------------------------------

    def _check_entry(self, key: bytes, value: bytes) -> None:
        # An entry must leave room for at least two entries per node,
        # otherwise a split cannot reduce node size.
        limit = (self.pool.disk.payload_size - _HEADER_SIZE - 16) // 2
        entry_size = len(key) + len(value) + 10
        if entry_size > limit:
            raise BTreeError(
                f"entry of {entry_size} bytes exceeds per-entry limit {limit}"
            )

    def _insert_into(
        self, page_id: int, key: bytes, value: bytes
    ) -> list[tuple[bytes, int]]:
        """Recursive insert.

        Returns the (possibly empty) ordered list of
        ``(separator, new_right_page)`` promotions produced by splitting.
        A split can promote more than one separator because nodes split
        into as many page-sized chunks as their variable-size entries
        require.
        """
        node = self._load_node(page_id)
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
            else:
                node.keys.insert(index, key)
                node.values.insert(index, value)
            return self._store_or_split(node)
        index = bisect_right(node.keys, key)
        promotions = self._insert_into(node.children[index], key, value)
        # All promotions come from one child, so they slot in consecutively.
        node.keys[index:index] = [separator for separator, __ in promotions]
        node.children[index + 1 : index + 1] = [
            page_id for __, page_id in promotions
        ]
        return self._store_or_split(node)

    def _store_or_split(self, node: _Node) -> list[tuple[bytes, int]]:
        """Persist ``node``, splitting it into page-sized chunks if needed.

        Splitting is byte-budgeted, not count-based: entries are packed
        greedily into chunks that each fit a page, which stays correct for
        arbitrarily skewed entry sizes (portion records next to tiny keys).
        The first chunk reuses the node's page; every further chunk gets a
        new page and contributes one promoted separator.
        """
        if node.encoded_size() <= self.pool.disk.payload_size:
            self._store_node(node)
            return []
        if node.is_leaf:
            return self._split_leaf(node)
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> list[tuple[bytes, int]]:
        budget = self.pool.disk.payload_size - _HEADER_SIZE
        chunks: list[tuple[list[bytes], list[bytes]]] = []
        keys: list[bytes] = []
        values: list[bytes] = []
        used = 0
        for key, value in zip(node.keys, node.values):
            size = (
                len(encode_uvarint(len(key))) + len(key)
                + len(encode_uvarint(len(value))) + len(value)
            )
            if keys and used + size > budget:
                chunks.append((keys, values))
                keys, values, used = [], [], 0
            keys.append(key)
            values.append(value)
            used += size
        chunks.append((keys, values))

        tail = node.next_leaf
        new_nodes = [self._new_node(is_leaf=True) for __ in chunks[1:]]
        node.keys, node.values = chunks[0]
        siblings = [node] + new_nodes
        for left, right in zip(siblings, siblings[1:]):
            left.next_leaf = right.page_id
        siblings[-1].next_leaf = tail
        promotions = []
        for fresh, (chunk_keys, chunk_values) in zip(new_nodes, chunks[1:]):
            fresh.keys, fresh.values = chunk_keys, chunk_values
            promotions.append((bytes(chunk_keys[0]), fresh.page_id))
        for sibling in siblings:
            self._store_node(sibling)
        return promotions

    def _split_internal(self, node: _Node) -> list[tuple[bytes, int]]:
        budget = self.pool.disk.payload_size - _HEADER_SIZE - 8
        # Chunk the (key, child) pairs; the key at each cut moves up.
        pairs = list(zip(node.keys, node.children[1:]))
        chunks: list[tuple[int, list[tuple[bytes, int]]]] = []
        first_child = node.children[0]
        current: list[tuple[bytes, int]] = []
        used = 0
        cut_keys: list[bytes] = []
        for key, child in pairs:
            size = len(encode_uvarint(len(key))) + len(key) + 8
            if current and used + size > budget:
                chunks.append((first_child, current))
                cut_keys.append(bytes(key))
                first_child = child
                current, used = [], 0
                continue  # the cut key moves up; its child starts the chunk
            current.append((key, child))
            used += size
        chunks.append((first_child, current))

        new_nodes = [self._new_node(is_leaf=False) for __ in chunks[1:]]
        child0, first_pairs = chunks[0]
        node.keys = [key for key, __ in first_pairs]
        node.children = [child0] + [child for __, child in first_pairs]
        promotions = []
        for fresh, cut_key, (chunk_child0, chunk_pairs) in zip(
            new_nodes, cut_keys, chunks[1:]
        ):
            fresh.keys = [key for key, __ in chunk_pairs]
            fresh.children = [chunk_child0] + [child for __, child in chunk_pairs]
            promotions.append((cut_key, fresh.page_id))
        for fresh in [node] + new_nodes:
            self._store_node(fresh)
        return promotions
