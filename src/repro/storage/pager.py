"""Page-level disk management with checksums and physical I/O accounting.

The storage substrate is organized as an array of fixed-size pages, the
unit of transfer between "disk" and the buffer pool.  Two disk managers
are provided:

* :class:`FileDiskManager` -- pages live in a real file on disk.
* :class:`InMemoryDiskManager` -- pages live in process memory; used for
  fast tests and analytical simulations where only the *counters* matter.

Both count every physical page read and write, which is how the testbed
measures the I/O overhead that the paper's replication factor models.

Every page carries a small header so corruption is detected instead of
decoded as garbage::

    bytes 0..3    CRC32 (big-endian u32) over bytes 4..page_size
    bytes 4..11   page LSN (big-endian u64; 0 when not WAL-managed)
    bytes 12..15  reserved, must be zero
    bytes 16..    caller payload (``payload_size`` bytes)

``read_page`` verifies the checksum and raises
:class:`~repro.errors.CorruptPageError` on mismatch, which catches torn
writes and bit rot.  A page whose *physical* image is all zeroes is valid
and decodes to a zero payload (a freshly grown, never-written page).

Callers therefore see ``payload_size = page_size - PAGE_HEADER_SIZE``
usable bytes per page; ``page_size`` is the physical on-disk unit and the
file layout remains a plain concatenation of physical pages.

The split between the *logical* interface (``read_page``/``write_page``,
checksummed payloads) and the *physical* one (``_read_physical`` /
``_write_physical``, raw header-carrying bytes) is what lets
:mod:`repro.storage.faults` inject torn writes and bit flips below the
checksum, exactly where real disk corruption happens.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

from ..errors import CorruptPageError, PageError

DEFAULT_PAGE_SIZE = 4096

#: Bytes reserved at the start of every physical page (CRC + LSN + pad).
PAGE_HEADER_SIZE = 16

_MIN_PAGE_SIZE = 64

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "PAGE_HEADER_SIZE",
    "IOStats",
    "DiskManager",
    "FileDiskManager",
    "InMemoryDiskManager",
    "encode_page",
    "decode_page",
]


def encode_page(payload: bytes, page_size: int, lsn: int = 0) -> bytes:
    """Build the physical image of a page: checksummed header + payload."""
    if len(payload) != page_size - PAGE_HEADER_SIZE:
        raise PageError(
            f"payload of {len(payload)} bytes, expected "
            f"{page_size - PAGE_HEADER_SIZE}"
        )
    body = lsn.to_bytes(8, "big") + bytes(4) + payload
    return zlib.crc32(body).to_bytes(4, "big") + body


def decode_page(raw: bytes, page_id: int = -1,
                verify: bool = True) -> tuple[bytes, int]:
    """Verify and strip a physical page image; returns ``(payload, lsn)``.

    An all-zero image is a valid never-written page.  Anything else must
    carry a correct CRC or :class:`CorruptPageError` is raised.
    ``verify=False`` skips the CRC comparison (the checksum ablation's
    seam — corruption then decodes as garbage, exactly the failure mode
    the header exists to prevent).
    """
    if raw == bytes(len(raw)):
        return bytes(len(raw) - PAGE_HEADER_SIZE), 0
    if verify:
        stored = int.from_bytes(raw[:4], "big")
        actual = zlib.crc32(raw[4:])
        if stored != actual:
            raise CorruptPageError(
                f"page {page_id} checksum mismatch "
                f"(stored {stored:#010x}, computed {actual:#010x}); "
                "torn write or bit rot"
            )
    lsn = int.from_bytes(raw[4:12], "big")
    return raw[PAGE_HEADER_SIZE:], lsn


@dataclass
class IOStats:
    """Physical I/O counters maintained by a disk manager."""

    page_reads: int = 0
    page_writes: int = 0
    pages_allocated: int = 0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(self.page_reads, self.page_writes, self.pages_allocated)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Return the counter increments since ``earlier``."""
        return IOStats(
            self.page_reads - earlier.page_reads,
            self.page_writes - earlier.page_writes,
            self.pages_allocated - earlier.pages_allocated,
        )


class DiskManager:
    """Abstract page store: allocate, read and write fixed-size pages.

    Subclasses implement the physical layer (:meth:`_read_physical`,
    :meth:`_write_physical`, :meth:`_grow_physical`); this base class owns
    checksumming, the free list and the I/O counters.

    Freed pages go onto a free list and are reused by later allocations,
    so temporary structures (the join's partition B-trees) do not grow the
    store permanently.  The free list lives in memory: frees are reused
    within a session; a reopened file store conservatively treats all its
    pages as live (space is leaked across restarts, never corrupted).
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE,
                 verify_checksums: bool = True):
        if page_size < _MIN_PAGE_SIZE:
            raise PageError(f"page size {page_size} too small")
        self.page_size = page_size
        self.verify_checksums = verify_checksums
        self.stats = IOStats()
        self._free_pages: list[int] = []
        # Mirrors _free_pages for O(1) double-free detection.
        self._free_lookup: set[int] = set()

    @property
    def payload_size(self) -> int:
        """Usable bytes per page (page size minus the checksum header)."""
        return self.page_size - PAGE_HEADER_SIZE

    @property
    def num_pages(self) -> int:
        raise NotImplementedError

    @property
    def num_free_pages(self) -> int:
        return len(self._free_pages)

    @property
    def num_live_pages(self) -> int:
        """Pages allocated and not freed."""
        return self.num_pages - len(self._free_pages)

    def allocate_page(self) -> int:
        """Allocate a zeroed page, reusing a freed page when available."""
        if self._free_pages:
            page_id = self._free_pages.pop()
            self._free_lookup.discard(page_id)
            self.write_page(page_id, bytes(self.payload_size))
            return page_id
        return self._grow()

    def free_page(self, page_id: int) -> None:
        """Return a page to the free list for reuse."""
        self._check_page_id(page_id)
        if page_id in self._free_lookup:
            raise PageError(f"double free of page {page_id}")
        self._free_pages.append(page_id)
        self._free_lookup.add(page_id)

    def _grow(self) -> int:
        """Extend the store by one zeroed page; returns its id."""
        page_id = self._grow_physical()
        self.stats.pages_allocated += 1
        return page_id

    def read_page(self, page_id: int) -> bytes:
        """Read one page's payload; always exactly ``payload_size`` bytes.

        Raises :class:`CorruptPageError` if the stored image fails its
        checksum.
        """
        self._check_page_id(page_id)
        raw = self._read_physical(page_id)
        self.stats.page_reads += 1
        payload, __ = decode_page(raw, page_id, verify=self.verify_checksums)
        return payload

    def write_page(self, page_id: int, data: bytes, lsn: int = 0) -> None:
        """Write one full page payload (checksummed on the way down)."""
        self._check_page_id(page_id)
        self._check_data(data)
        self._write_physical(page_id, encode_page(bytes(data), self.page_size, lsn))
        self.stats.page_writes += 1

    def page_lsn(self, page_id: int) -> int:
        """The LSN stamped on a page's header (0 for non-WAL writes).

        Reads outside the I/O counters: this is recovery bookkeeping, not
        workload traffic.
        """
        self._check_page_id(page_id)
        __, lsn = decode_page(self._read_physical(page_id), page_id)
        return lsn

    # -- physical layer, implemented by subclasses ----------------------

    def _read_physical(self, page_id: int) -> bytes:
        """Read one raw physical page (header + payload)."""
        raise NotImplementedError

    def _write_physical(self, page_id: int, raw: bytes) -> None:
        """Write one raw physical page (header + payload)."""
        raise NotImplementedError

    def _grow_physical(self) -> int:
        """Extend the store by one all-zero physical page; returns its id."""
        raise NotImplementedError

    # -------------------------------------------------------------------

    def flush(self) -> None:
        """Force buffered writes down to durable storage (no-op default)."""

    def close(self) -> None:
        """Release underlying resources."""

    def kill(self) -> None:
        """Drop resources *without* flushing: simulates process death.

        Used by the crash-simulation harness; identical to :meth:`close`
        for managers that buffer nothing.
        """
        self.close()

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise PageError(
                f"page id {page_id} out of range (have {self.num_pages} pages)"
            )

    def _check_data(self, data: bytes) -> None:
        if len(data) != self.payload_size:
            raise PageError(
                f"page write of {len(data)} bytes, expected {self.payload_size}"
            )

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InMemoryDiskManager(DiskManager):
    """Disk manager keeping all pages in memory.

    Behaviourally identical to :class:`FileDiskManager` (including the I/O
    counters and checksums), just without touching the filesystem.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE,
                 verify_checksums: bool = True):
        super().__init__(page_size, verify_checksums=verify_checksums)
        self._pages: list[bytes] = []

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def _grow_physical(self) -> int:
        self._pages.append(bytes(self.page_size))
        return len(self._pages) - 1

    def _read_physical(self, page_id: int) -> bytes:
        return self._pages[page_id]

    def _write_physical(self, page_id: int, raw: bytes) -> None:
        self._pages[page_id] = bytes(raw)


class FileDiskManager(DiskManager):
    """Disk manager backed by a single file of concatenated pages.

    ``fsync=True`` (the default) makes :meth:`flush` and :meth:`close`
    call :func:`os.fsync`, so "durably written" means the data survives
    an OS crash, not just a process exit.  ``buffering=0`` opens the file
    unbuffered, which the crash simulator uses so every physical write is
    immediately visible to a reopening reader.
    """

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        fsync: bool = True,
        buffering: int = -1,
        verify_checksums: bool = True,
    ):
        super().__init__(page_size, verify_checksums=verify_checksums)
        self.path = path
        self.fsync = fsync
        # "r+b" honours seeks for writes ("a+b" would force appends);
        # fall back to "w+b" to create a missing file.
        try:
            self._file = open(path, "r+b", buffering=buffering)
        except FileNotFoundError:
            self._file = open(path, "w+b", buffering=buffering)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            raise PageError(
                f"existing file {path!r} size {size} is not a multiple of "
                f"page size {page_size}"
            )
        self._num_pages = size // page_size
        self._closed = False

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def _grow_physical(self) -> int:
        page_id = self._num_pages
        self._file.seek(page_id * self.page_size)
        self._file.write(bytes(self.page_size))
        self._num_pages += 1
        return page_id

    def _read_physical(self, page_id: int) -> bytes:
        self._file.seek(page_id * self.page_size)
        raw = self._file.read(self.page_size)
        if len(raw) != self.page_size:
            raise PageError(f"short read of page {page_id}")
        return raw

    def _write_physical(self, page_id: int, raw: bytes) -> None:
        self._file.seek(page_id * self.page_size)
        self._file.write(raw)

    def flush(self) -> None:
        """Force buffered writes to the operating system (and, with
        ``fsync``, to the device)."""
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._file.close()
            self._closed = True

    def kill(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True
