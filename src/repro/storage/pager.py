"""Page-level disk management with physical I/O accounting.

The storage substrate is organized as an array of fixed-size pages, the
unit of transfer between "disk" and the buffer pool.  Two disk managers
are provided:

* :class:`FileDiskManager` -- pages live in a real file on disk.
* :class:`InMemoryDiskManager` -- pages live in process memory; used for
  fast tests and analytical simulations where only the *counters* matter.

Both count every physical page read and write, which is how the testbed
measures the I/O overhead that the paper's replication factor models.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..errors import PageError

DEFAULT_PAGE_SIZE = 4096

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "IOStats",
    "DiskManager",
    "FileDiskManager",
    "InMemoryDiskManager",
]


@dataclass
class IOStats:
    """Physical I/O counters maintained by a disk manager."""

    page_reads: int = 0
    page_writes: int = 0
    pages_allocated: int = 0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(self.page_reads, self.page_writes, self.pages_allocated)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Return the counter increments since ``earlier``."""
        return IOStats(
            self.page_reads - earlier.page_reads,
            self.page_writes - earlier.page_writes,
            self.pages_allocated - earlier.pages_allocated,
        )


class DiskManager:
    """Abstract page store: allocate, read and write fixed-size pages.

    Freed pages go onto a free list and are reused by later allocations,
    so temporary structures (the join's partition B-trees) do not grow the
    store permanently.  The free list lives in memory: frees are reused
    within a session; a reopened file store conservatively treats all its
    pages as live (space is leaked across restarts, never corrupted).
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 64:
            raise PageError(f"page size {page_size} too small")
        self.page_size = page_size
        self.stats = IOStats()
        self._free_pages: list[int] = []

    @property
    def num_pages(self) -> int:
        raise NotImplementedError

    @property
    def num_free_pages(self) -> int:
        return len(self._free_pages)

    @property
    def num_live_pages(self) -> int:
        """Pages allocated and not freed."""
        return self.num_pages - len(self._free_pages)

    def allocate_page(self) -> int:
        """Allocate a zeroed page, reusing a freed page when available."""
        if self._free_pages:
            page_id = self._free_pages.pop()
            self.write_page(page_id, bytes(self.page_size))
            return page_id
        return self._grow()

    def free_page(self, page_id: int) -> None:
        """Return a page to the free list for reuse."""
        self._check_page_id(page_id)
        if page_id in self._free_set():
            raise PageError(f"double free of page {page_id}")
        self._free_pages.append(page_id)

    def _free_set(self) -> set[int]:
        return set(self._free_pages)

    def _grow(self) -> int:
        """Extend the store by one zeroed page; returns its id."""
        raise NotImplementedError

    def read_page(self, page_id: int) -> bytes:
        """Read one page; always exactly ``page_size`` bytes."""
        raise NotImplementedError

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one full page."""
        raise NotImplementedError

    def close(self) -> None:
        """Release underlying resources."""

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise PageError(
                f"page id {page_id} out of range (have {self.num_pages} pages)"
            )

    def _check_data(self, data: bytes) -> None:
        if len(data) != self.page_size:
            raise PageError(
                f"page write of {len(data)} bytes, expected {self.page_size}"
            )

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InMemoryDiskManager(DiskManager):
    """Disk manager keeping all pages in memory.

    Behaviourally identical to :class:`FileDiskManager` (including the I/O
    counters), just without touching the filesystem.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        super().__init__(page_size)
        self._pages: list[bytes] = []

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def _grow(self) -> int:
        self._pages.append(bytes(self.page_size))
        self.stats.pages_allocated += 1
        return len(self._pages) - 1

    def read_page(self, page_id: int) -> bytes:
        self._check_page_id(page_id)
        self.stats.page_reads += 1
        return self._pages[page_id]

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._check_data(data)
        self.stats.page_writes += 1
        self._pages[page_id] = bytes(data)


class FileDiskManager(DiskManager):
    """Disk manager backed by a single file of concatenated pages."""

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE):
        super().__init__(page_size)
        self.path = path
        # "r+b" honours seeks for writes ("a+b" would force appends);
        # fall back to "w+b" to create a missing file.
        try:
            self._file = open(path, "r+b")
        except FileNotFoundError:
            self._file = open(path, "w+b")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            raise PageError(
                f"existing file {path!r} size {size} is not a multiple of "
                f"page size {page_size}"
            )
        self._num_pages = size // page_size
        self._closed = False

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def _grow(self) -> int:
        page_id = self._num_pages
        self._file.seek(page_id * self.page_size)
        self._file.write(bytes(self.page_size))
        self._num_pages += 1
        self.stats.pages_allocated += 1
        return page_id

    def read_page(self, page_id: int) -> bytes:
        self._check_page_id(page_id)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise PageError(f"short read of page {page_id}")
        self.stats.page_reads += 1
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._check_data(data)
        self._file.seek(page_id * self.page_size)
        self._file.write(data)
        self.stats.page_writes += 1

    def flush(self) -> None:
        """Force buffered writes to the operating system."""
        self._file.flush()

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True
