"""Binary record encoding for the storage substrate.

The paper's testbed stores each tuple as ``(tuple identifier, set of
integers as a variable-size ordered list, fixed-size payload)`` and each
partition entry as ``(set signature, tuple identifier)``.  This module
provides the compact, deterministic byte encodings for both record kinds,
plus the low-level varint primitives they are built from.

Sets are delta-encoded: the elements are sorted and successive differences
are written as unsigned varints, which makes records for dense sets (the
common case for large set cardinalities) considerably smaller than
fixed-width encodings.
"""

from __future__ import annotations

from ..errors import SerializationError

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "encode_set",
    "decode_set",
    "encode_tuple_record",
    "decode_tuple_record",
    "encode_partition_entry",
    "decode_partition_entry",
    "partition_entry_size",
]


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 unsigned varint."""
    if value < 0:
        raise SerializationError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise SerializationError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise SerializationError("uvarint too long")


def encode_set(elements: frozenset[int] | set[int] | list[int]) -> bytes:
    """Encode a set of non-negative integers as a delta-coded varint list."""
    ordered = sorted(elements)
    if ordered and ordered[0] < 0:
        raise SerializationError("set elements must be non-negative integers")
    out = bytearray(encode_uvarint(len(ordered)))
    previous = 0
    for element in ordered:
        out += encode_uvarint(element - previous)
        previous = element
    return bytes(out)


def decode_set(data: bytes, offset: int = 0) -> tuple[frozenset[int], int]:
    """Decode a set encoded by :func:`encode_set`; returns ``(set, next_offset)``."""
    count, pos = decode_uvarint(data, offset)
    if count > len(data) - pos:
        # Each element costs at least one byte, so a count beyond the
        # remaining bytes is corrupt input, not just a large set; bail
        # out before looping billions of times on garbage.
        raise SerializationError(
            f"set claims {count} elements but only {len(data) - pos} "
            f"bytes remain"
        )
    elements = []
    current = 0
    for _ in range(count):
        delta, pos = decode_uvarint(data, pos)
        current += delta
        elements.append(current)
    return frozenset(elements), pos


def encode_tuple_record(tid: int, elements, payload: bytes) -> bytes:
    """Encode one relation tuple: tid, set, fixed payload.

    The payload length is stored explicitly so heterogeneous payload sizes
    round-trip correctly even though the paper uses a fixed 100-byte payload.
    """
    out = bytearray(encode_uvarint(tid))
    out += encode_set(elements)
    out += encode_uvarint(len(payload))
    out += payload
    return bytes(out)


def decode_tuple_record(data: bytes) -> tuple[int, frozenset[int], bytes]:
    """Decode a record produced by :func:`encode_tuple_record`."""
    tid, pos = decode_uvarint(data, 0)
    elements, pos = decode_set(data, pos)
    payload_len, pos = decode_uvarint(data, pos)
    end = pos + payload_len
    if end > len(data):
        raise SerializationError("truncated tuple record payload")
    return tid, elements, bytes(data[pos:end])


def partition_entry_size(signature_bytes: int) -> int:
    """Size in bytes of one fixed-width partition entry."""
    return signature_bytes + 8


def encode_partition_entry(signature: int, tid: int, signature_bytes: int) -> bytes:
    """Encode one (signature, tid) partition entry with fixed width.

    Fixed-width entries let the join phase slice portions without per-entry
    length bookkeeping, mirroring the paper's packed partition records.
    """
    try:
        sig = signature.to_bytes(signature_bytes, "big")
    except OverflowError as exc:
        raise SerializationError(
            f"signature does not fit in {signature_bytes} bytes"
        ) from exc
    return sig + tid.to_bytes(8, "big")


def decode_partition_entry(
    data: bytes, offset: int, signature_bytes: int
) -> tuple[int, int]:
    """Decode one entry written by :func:`encode_partition_entry`."""
    end = offset + signature_bytes + 8
    if end > len(data):
        raise SerializationError("truncated partition entry")
    signature = int.from_bytes(data[offset : offset + signature_bytes], "big")
    tid = int.from_bytes(data[offset + signature_bytes : end], "big")
    return signature, tid
