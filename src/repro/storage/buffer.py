"""Buffer pool: a bounded page cache between callers and the disk manager.

The paper's testbed relies on Berkeley DB's buffering; this module provides
the equivalent mechanism with explicit, inspectable behaviour.  Pages are
cached in frames, fetches pin frames (pinned frames are never evicted),
writes mark frames dirty, and evictions write dirty frames back.  Three
replacement policies are available -- LRU (default), Clock and FIFO -- so
the "buffer management policy of the database system" held constant across
algorithms in the paper can also be varied as an ablation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import BufferPoolError
from ..obs.trace import current_tracer
from .pager import DiskManager

__all__ = ["BufferStats", "Frame", "BufferPool", "REPLACEMENT_POLICIES"]

REPLACEMENT_POLICIES = ("lru", "clock", "fifo")


@dataclass
class BufferStats:
    """Cache behaviour counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> "BufferStats":
        """Return an independent copy of the current counters."""
        return BufferStats(
            self.hits, self.misses, self.evictions, self.dirty_writebacks
        )

    def delta(self, earlier: "BufferStats") -> "BufferStats":
        """Return the counter increments since ``earlier``."""
        return BufferStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
            self.dirty_writebacks - earlier.dirty_writebacks,
        )


class Frame:
    """One cached page: mutable data plus pin/dirty bookkeeping."""

    __slots__ = ("page_id", "data", "pin_count", "dirty", "referenced")

    def __init__(self, page_id: int, data: bytes):
        self.page_id = page_id
        self.data = bytearray(data)
        self.pin_count = 0
        self.dirty = False
        self.referenced = True  # for the clock policy


class BufferPool:
    """Bounded page cache with pin/unpin semantics.

    Typical usage::

        frame = pool.fetch(page_id)       # pinned on return
        ... read or mutate frame.data ...
        pool.unpin(page_id, dirty=True)   # eligible for eviction again

    The pool writes dirty pages back on eviction and on :meth:`flush_all`.
    """

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = 256,
        policy: str = "lru",
    ):
        if capacity < 1:
            raise BufferPoolError(f"buffer pool capacity must be >= 1, got {capacity}")
        if policy not in REPLACEMENT_POLICIES:
            raise BufferPoolError(
                f"unknown replacement policy {policy!r}; "
                f"expected one of {REPLACEMENT_POLICIES}"
            )
        self.disk = disk
        self.capacity = capacity
        self.policy = policy
        self.stats = BufferStats()
        # Insertion order doubles as FIFO order; LRU reorders on access.
        self._frames: OrderedDict[int, Frame] = OrderedDict()
        self._clock_hand = 0

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint of cached page data."""
        return len(self._frames) * self.disk.payload_size

    def new_page(self) -> Frame:
        """Allocate a page on disk and return its pinned, zeroed frame."""
        page_id = self.disk.allocate_page()
        self._make_room()
        frame = Frame(page_id, bytes(self.disk.payload_size))
        frame.pin_count = 1
        frame.dirty = True
        self._frames[page_id] = frame
        return frame

    def fetch(self, page_id: int) -> Frame:
        """Return the frame for ``page_id``, pinned; reads from disk on miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            frame.referenced = True
            if self.policy == "lru":
                self._frames.move_to_end(page_id)
        else:
            self.stats.misses += 1
            self._make_room()
            # A miss is the interesting event (it is the disk read); a
            # per-hit span would swamp any trace for no information.
            tracer = current_tracer()
            if tracer.enabled:
                with tracer.span("buffer.miss", page_id=page_id):
                    frame = Frame(page_id, self.disk.read_page(page_id))
            else:
                frame = Frame(page_id, self.disk.read_page(page_id))
            self._frames[page_id] = frame
        frame.pin_count += 1
        return frame

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; ``dirty=True`` schedules a writeback."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"unpin of page {page_id} not in pool")
        if frame.pin_count <= 0:
            raise BufferPoolError(f"unpin of unpinned page {page_id}")
        frame.pin_count -= 1
        if dirty:
            frame.dirty = True

    def free_page(self, page_id: int) -> None:
        """Drop any cached frame (discarding its contents) and return the
        page to the disk manager's free list.

        Used when tearing down temporary structures such as partition
        B-trees; the page's data is dead, so no writeback happens.
        """
        frame = self._frames.pop(page_id, None)
        if frame is not None and frame.pin_count:
            raise BufferPoolError(f"cannot free pinned page {page_id}")
        self.disk.free_page(page_id)

    def flush_page(self, page_id: int) -> None:
        """Write one dirty cached page back to disk (no-op if clean)."""
        frame = self._frames.get(page_id)
        if frame is not None and frame.dirty:
            self.disk.write_page(page_id, bytes(frame.data))
            frame.dirty = False

    def flush_all(self) -> None:
        """Write every dirty cached page back to disk."""
        for frame in self._frames.values():
            if frame.dirty:
                self.disk.write_page(frame.page_id, bytes(frame.data))
                frame.dirty = False

    def drop_all(self) -> None:
        """Flush everything and empty the cache (simulates a cold cache)."""
        self.flush_all()
        for frame in self._frames.values():
            if frame.pin_count:
                raise BufferPoolError(
                    f"cannot drop pool: page {frame.page_id} still pinned"
                )
        self._frames.clear()
        self._clock_hand = 0

    def invalidate(self) -> None:
        """Empty the cache, discarding dirty data and pins.

        This deliberately loses writes: it is the transaction-rollback
        path, where every cached frame may hold uncommitted data that
        must never reach disk.  Callers re-fetch everything afterwards.
        """
        self._frames.clear()
        self._clock_hand = 0

    def _make_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        victim_id = self._pick_victim()
        self._evict(victim_id)

    def _pick_victim(self) -> int:
        if self.policy in ("lru", "fifo"):
            for page_id, frame in self._frames.items():
                if frame.pin_count == 0:
                    return page_id
            raise BufferPoolError("all buffer frames are pinned")
        # Clock: sweep, clearing reference bits, until an unreferenced
        # unpinned frame is found.
        keys = list(self._frames.keys())
        passes = 0
        while passes < 2 * len(keys) + 1:
            self._clock_hand %= len(keys)
            page_id = keys[self._clock_hand]
            frame = self._frames[page_id]
            self._clock_hand += 1
            passes += 1
            if frame.pin_count:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            return page_id
        raise BufferPoolError("all buffer frames are pinned")

    def _evict(self, page_id: int) -> None:
        # Write back BEFORE dropping the frame: if the disk write fails the
        # dirty data must stay cached, otherwise a transient I/O error
        # would silently discard committed writes.
        frame = self._frames[page_id]
        if frame.dirty:
            self.disk.write_page(page_id, bytes(frame.data))
            self.stats.dirty_writebacks += 1
        del self._frames[page_id]
        self.stats.evictions += 1
