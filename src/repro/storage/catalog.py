"""The database catalog: named relations persisted in one page store.

A catalog is itself a B-tree whose meta page sits at a fixed, well-known
page id (the first two pages of a fresh store), mapping relation names to
the meta page ids of their :class:`~repro.storage.relation_store.RelationStore`
trees.  That makes a whole multi-relation database addressable by just a
file path: open the file, read the catalog, look up relations by name.

The catalog itself carries no crash-safety machinery: every page it
touches flows through the buffer pool to the disk manager, so when the
database wraps its disk in a :class:`~repro.storage.wal.WALDiskManager`,
catalog registration and removal become atomic for free.  The one
structural requirement is that :data:`CATALOG_META_PAGE` is a fixed page
id, so recovery never needs a separate pointer to find the catalog.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import ConfigurationError, StorageError
from .btree import BTree
from .buffer import BufferPool
from .serialization import decode_uvarint, encode_uvarint

__all__ = ["Catalog", "CATALOG_META_PAGE"]

#: BTree.create allocates (meta, root) in order, so a catalog created on a
#: fresh store always has its meta at page 0.
CATALOG_META_PAGE = 0


class Catalog:
    """Name → relation-store meta page mapping, stored in a B-tree."""

    def __init__(self, pool: BufferPool):
        self.pool = pool
        if pool.disk.num_pages == 0:
            tree = BTree.create(pool)
            if tree.meta_page_id != CATALOG_META_PAGE:
                raise StorageError(
                    "catalog must own the store's first page; "
                    f"got meta page {tree.meta_page_id}"
                )
            self._tree = tree
        else:
            self._tree = BTree(pool, CATALOG_META_PAGE)

    @staticmethod
    def _encode(meta_page_id: int, size: int) -> bytes:
        return encode_uvarint(meta_page_id) + encode_uvarint(size)

    @staticmethod
    def _decode(record: bytes) -> tuple[int, int]:
        meta_page_id, offset = decode_uvarint(record, 0)
        size, __ = decode_uvarint(record, offset)
        return meta_page_id, size

    def register(self, name: str, meta_page_id: int, size: int) -> None:
        """Add or update one relation entry."""
        if not name:
            raise ConfigurationError("relation name must be non-empty")
        self._tree.insert(name.encode(), self._encode(meta_page_id, size))

    def lookup(self, name: str) -> tuple[int, int] | None:
        """Return (meta_page_id, tuple_count) or ``None``."""
        record = self._tree.get(name.encode())
        return None if record is None else self._decode(record)

    def unregister(self, name: str) -> bool:
        """Remove one entry; returns whether it existed."""
        return self._tree.delete(name.encode())

    def names(self) -> Iterator[str]:
        for key, __ in self._tree.items():
            yield key.decode()

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def __len__(self) -> int:
        return sum(1 for __ in self.names())
