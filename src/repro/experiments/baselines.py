"""Baseline lineage: SQL-unnested → SHJ → PSJ → DCJ on one workload.

The paper's introduction compresses a decade of prior work: SQL over the
unnested representation is "very expensive" [RPNK00], SHJ fixed that in
main memory [HM97], PSJ took it to disk [RPNK00], and DCJ is the paper's
contribution.  This experiment runs the whole lineage on one workload so
the orders-of-magnitude structure is visible in a single table.
"""

from __future__ import annotations

from ..analysis.simulate import make_partitioner
from ..core.nested_loop import naive_join, signature_nested_loop_join
from ..core.operator import run_disk_join
from ..core.shj import shj_join
from ..core.unnested import sql_unnested_join
from ..data.workloads import uniform_workload
from .base import ExperimentResult, register

__all__ = ["run"]


@register("baselines")
def run(size: int = 400, theta_r: int = 20, theta_s: int = 40,
        k: int = 32, seed: int = 19) -> ExperimentResult:
    lhs, rhs = uniform_workload(
        size, size, theta_r, theta_s, domain_size=1_000, seed=seed,
        planted_pairs=4,
    ).materialize()

    result = ExperimentResult(
        experiment_id="baselines",
        title=f"Algorithm lineage on one workload (|R|=|S|={size}, "
        f"θ_R={theta_r}, θ_S={theta_s})",
        columns=["algorithm", "t_total_s", "work_measure", "work",
                 "candidates", "results"],
    )

    def add(name, metrics, work_measure, work):
        result.rows.append(
            {
                "algorithm": name,
                "t_total_s": metrics.total_seconds,
                "work_measure": work_measure,
                "work": work,
                "candidates": metrics.candidates,
                "results": metrics.result_size,
            }
        )

    reference, naive_metrics = naive_join(lhs, rhs)
    add("NaiveNL", naive_metrics, "set comparisons",
        naive_metrics.set_comparisons)

    pairs, metrics = sql_unnested_join(lhs, rhs)
    assert pairs == reference
    add("SQL-unnested", metrics, "element-join rows",
        metrics.signature_comparisons)

    pairs, metrics = signature_nested_loop_join(lhs, rhs)
    assert pairs == reference
    add("SigNL", metrics, "signature comparisons",
        metrics.signature_comparisons)

    pairs, metrics = shj_join(lhs, rhs, signature_bits=10)
    assert pairs == reference
    add("SHJ", metrics, "probe hits", metrics.signature_comparisons)

    for algorithm in ("PSJ", "DCJ"):
        partitioner = make_partitioner(algorithm, k, theta_r, theta_s,
                                       seed=seed)
        pairs, metrics = run_disk_join(lhs, rhs, partitioner)
        assert pairs == reference
        add(algorithm, metrics, "signature comparisons",
            metrics.signature_comparisons)

    result.check("all six algorithms return the identical result",
                 len({row["results"] for row in result.rows}) == 1)
    by_name = {row["algorithm"]: row for row in result.rows}
    result.check(
        "the SQL-unnested plan's intermediate dwarfs its output",
        by_name["SQL-unnested"]["work"]
        > 10 * max(1, by_name["SQL-unnested"]["results"]),
    )
    result.paper_claims = [
        "\"Naive or standard-SQL approaches to computing set containment "
        "queries are very expensive\" [HM97, RPNK00]: the SQL-unnested "
        "plan's element-level join materializes far more rows than the "
        "partitioned algorithms compare signatures.",
        "All algorithms return identical results (asserted).",
    ]
    return result
