"""Figure 10: when to use DCJ instead of PSJ.

Computes the breakeven frontier — for each relation size |R| = |S|, the
set cardinality θ_R at which the two algorithms' best predicted times are
equal — for λ = 1 (solid curve) and λ = 2 (dotted curve).  DCJ wins above
each curve (larger sets), PSJ below.

With the paper's published time-model constants (the default), the λ = 2
curve passes exactly through the breakeven point the paper quotes:
θ_R = 50, θ_S = 100 at |R| = |S| = 128000.  Substituting a locally
calibrated model (``use_paper_model=False``) moves the curves, as the
paper warns ("the graphs ... may have different shapes for other
systems").
"""

from __future__ import annotations

from ..analysis.breakeven import best_operating_point, breakeven_frontier
from ..analysis.timemodel import PAPER_TIME_MODEL, TimeModel
from .base import ExperimentResult, register

__all__ = ["run"]

DEFAULT_SIZES = (5_000, 10_000, 25_000, 50_000, 100_000, 128_000, 250_000,
                 500_000, 1_000_000)


@register("fig10")
def run(
    sizes=DEFAULT_SIZES,
    model: TimeModel | None = None,
    use_paper_model: bool = True,
    calibration_seed: int = 11,
) -> ExperimentResult:
    if model is None:
        if use_paper_model:
            model = PAPER_TIME_MODEL
        else:
            from .calibration import fitted_model

            model = fitted_model(seed=calibration_seed)

    frontier_1 = dict(breakeven_frontier(model, sizes, lam=1.0))
    frontier_2 = dict(breakeven_frontier(model, sizes, lam=2.0))

    result = ExperimentResult(
        experiment_id="fig10",
        title="DCJ-vs-PSJ breakeven frontier: θ_R where best times are "
        "equal (DCJ wins above)",
        columns=["|R|=|S|", "breakeven_θR(λ=1)", "breakeven_θR(λ=2)"],
    )
    for size in sizes:
        result.rows.append(
            {
                "|R|=|S|": size,
                "breakeven_θR(λ=1)": frontier_1[size],
                "breakeven_θR(λ=2)": frontier_2[size],
            }
        )

    # The paper's example decisions.
    sample_dcj = best_operating_point("DCJ", model, 100_000, 100_000, 50, 50)
    sample_psj = best_operating_point("PSJ", model, 100_000, 100_000, 50, 50)
    small_dcj = best_operating_point("DCJ", model, 100_000, 100_000, 10, 10)
    small_psj = best_operating_point("PSJ", model, 100_000, 100_000, 10, 10)
    at_128k = frontier_2.get(128_000)
    if at_128k is not None and model is PAPER_TIME_MODEL:
        result.check("λ=2 frontier passes θ_R ≈ 50 at |R|=128000",
                     abs(at_128k - 50) < 1.0)
    lam1_values = [row["breakeven_θR(λ=1)"] for row in result.rows]
    result.check("frontier rises with relation size",
                 all(v is not None for v in lam1_values)
                 and lam1_values == sorted(lam1_values))
    result.check("λ=2 curve lies above λ=1",
                 all(row["breakeven_θR(λ=2)"] > row["breakeven_θR(λ=1)"]
                     for row in result.rows
                     if row["breakeven_θR(λ=1)"] is not None
                     and row["breakeven_θR(λ=2)"] is not None))
    result.check("θ=50 at 100k → DCJ", sample_dcj.seconds < sample_psj.seconds)
    result.check("θ=10 at 100k → PSJ", small_psj.seconds < small_dcj.seconds)
    result.paper_claims = [
        "Breakeven point θ_R=50, θ_S=100 at |R|=|S|=128000 "
        f"[this model: λ=2 frontier at 128000 → θ_R = {at_128k}]",
        "θ_R=θ_S=50, |R|=|S|=100000: DCJ is clearly the algorithm of "
        f"choice [predicted DCJ {sample_dcj.seconds:.1f}s vs PSJ "
        f"{sample_psj.seconds:.1f}s]",
        "θ_R=θ_S=10: go for PSJ "
        f"[predicted DCJ {small_dcj.seconds:.1f}s vs PSJ {small_psj.seconds:.1f}s]",
        "The frontier rises with relation size and the λ=2 curve lies "
        "above λ=1 (larger supersets make both algorithms costlier, PSJ "
        "less so per R-set)",
    ]
    result.notes = [
        "θ found by bisection over best-of-k predicted times; None means "
        "PSJ wins up to θ_R = 2000 at that size.",
    ]
    return result
