"""Figure 4: comparison factor vs. number of partitions k.

Analytical curves for θ_R = θ_S ∈ {10, 100, 1000}.  DCJ depends only on
the ratio λ = 1, so its three curves coincide; PSJ degrades as set
cardinalities grow (comp_PSJ ≈ 1 for θ = 1000 at practical k).
"""

from __future__ import annotations

from ..analysis.factors import comp_dcj, comp_psj
from .base import ExperimentResult, register

__all__ = ["run"]

DEFAULT_K_VALUES = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
DEFAULT_THETAS = (10, 100, 1000)


@register("fig4")
def run(k_values=DEFAULT_K_VALUES, thetas=DEFAULT_THETAS) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="Comparison factor vs k (θ_R = θ_S, λ = 1)",
        columns=["k", "comp_DCJ"] + [f"comp_PSJ(θ={theta})" for theta in thetas],
    )
    for k in k_values:
        row = {"k": k, "comp_DCJ": comp_dcj(k, thetas[0], thetas[0])}
        for theta in thetas:
            row[f"comp_PSJ(θ={theta})"] = comp_psj(k, theta)
        result.rows.append(row)

    ratio_at_128 = comp_psj(128, 1000) / comp_dcj(128, 1000, 1000)
    # Table 7's comp_DCJ extends continuously in k, which is how the paper
    # reads the crossover off the plot.
    crossover_theta10 = next(
        (k for k in range(2, 4096) if comp_psj(k, 10) <= comp_dcj(k, 10, 10)),
        None,
    )
    result.check("PSJ/DCJ comparison ratio ≈ 7.5 at k=128, θ=1000",
                 abs(ratio_at_128 - 7.5) < 0.2)
    result.check("θ=10 crossover near k ≈ 40",
                 crossover_theta10 is not None and 30 <= crossover_theta10 <= 55)
    result.check(
        "θ=1000 comparison breakeven between 2^17 and 2^18 (paper: ≈135000)",
        comp_psj(2**17, 1000) > comp_dcj(2**17, 1000, 1000)
        and comp_psj(2**18, 1000) < comp_dcj(2**18, 1000, 1000),
    )
    result.paper_claims = [
        "k=128, θ=1000: PSJ needs ≈7.5x more comparisons "
        f"(comp_PSJ≈1, comp_DCJ≈0.13)  [measured ratio {ratio_at_128:.2f}]",
        "θ=10: PSJ outperforms DCJ in comparisons starting with k ≈ 40 "
        f"[measured crossover k ≈ {crossover_theta10}]",
        "θ=1000 breakeven comp_PSJ = comp_DCJ at k ≈ 135000 "
        f"[measured: at k=2^17 PSJ {comp_psj(2**17, 1000):.5f} vs "
        f"DCJ {comp_dcj(2**17, 1000, 1000):.5f}]",
    ]
    return result
