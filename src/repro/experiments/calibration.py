"""Calibration of the time model (Section 5, "Predicting execution times").

Runs PSJ and DCJ over a grid of synthetic relations and partition counts,
records (x, y, k, time) per run, fits ``time(x, y, k) = c1·x + c2·y·k^c3``
by least squares, and reports the constants and the average prediction
error (the paper: 114 points, 15.4% error, c1 = 5.12686e-7,
c2 = 8.28197e-7, c3 = 0.691485 on its hardware).
"""

from __future__ import annotations

from ..analysis.simulate import make_partitioner
from ..analysis.timemodel import CalibrationSample, TimeModel, calibrate
from ..core.operator import run_disk_join
from ..data.workloads import uniform_workload
from .base import ExperimentResult, register

__all__ = ["collect_samples", "run"]

DEFAULT_GRID = (
    # (r_size, s_size, theta_r, theta_s)
    (400, 400, 20, 40),
    (800, 800, 20, 40),
    (400, 400, 50, 100),
    (800, 800, 50, 100),
    (400, 800, 30, 60),
    (800, 400, 30, 30),
)
DEFAULT_K_VALUES = (4, 16, 64)
DEFAULT_ALGORITHMS = ("DCJ", "PSJ")


def collect_samples(
    grid=DEFAULT_GRID,
    k_values=DEFAULT_K_VALUES,
    algorithms=DEFAULT_ALGORITHMS,
    seed: int = 11,
    engine: str = "python",
) -> list[CalibrationSample]:
    """Measure the calibration data points ("calibration of hardware")."""
    samples = []
    for r_size, s_size, theta_r, theta_s in grid:
        workload = uniform_workload(
            r_size, s_size, theta_r, theta_s, domain_size=10_000, seed=seed
        )
        lhs, rhs = workload.materialize()
        for algorithm in algorithms:
            for k in k_values:
                partitioner = make_partitioner(
                    algorithm, k, theta_r, theta_s, seed=seed
                )
                __, metrics = run_disk_join(lhs, rhs, partitioner, engine=engine)
                samples.append(CalibrationSample.from_metrics(metrics))
    return samples


@register("calibration")
def run(grid=DEFAULT_GRID, k_values=DEFAULT_K_VALUES, seed: int = 11,
        engine: str = "python") -> ExperimentResult:
    samples = collect_samples(grid, k_values, seed=seed, engine=engine)
    model = calibrate(samples)
    error = model.mean_prediction_error(samples)

    result = ExperimentResult(
        experiment_id="calibration",
        title="Time-model calibration: time(x, y, k) = c1·x + c2·y·k^c3",
        columns=["constant", "fitted", "paper (their hardware)"],
        rows=[
            {"constant": "c1", "fitted": model.c1, "paper (their hardware)": 5.12686e-7},
            {"constant": "c2", "fitted": model.c2, "paper (their hardware)": 8.28197e-7},
            {"constant": "c3", "fitted": model.c3, "paper (their hardware)": 0.691485},
            {"constant": "samples", "fitted": len(samples), "paper (their hardware)": 114},
            {"constant": "mean error", "fitted": error, "paper (their hardware)": 0.154},
        ],
    )
    result.check("fit converges with a usable error (≤ 40%)", error <= 0.40)
    result.check("all constants non-negative",
                 model.c1 >= 0 and model.c2 >= 0 and model.c3 >= 0)
    result.paper_claims = [
        "time(x,y,k) = c1·x + c2·y·k^c3 gave the smallest average "
        "prediction error among the candidate function shapes",
        "Average prediction error 15.4% over 114 points "
        f"[measured {error:.1%} over {len(samples)} points]",
    ]
    from ..obs.drift import calibration_residuals

    signed = [
        row["relative_error"]
        for row in calibration_residuals(model, samples)
        if row["relative_error"] is not None
    ]
    bias = sum(signed) / len(signed)
    result.check(
        "residuals are centred (|mean signed error| ≤ 15%): the relative "
        "least-squares fit should not systematically under- or over-predict",
        abs(bias) <= 0.15,
    )
    result.notes = [
        "Constants are hardware-specific by design; only the functional "
        "form and the achievable error transfer between systems.",
        f"Residual drift at calibration time: bias {bias:+.1%} (mean "
        f"signed error), worst point {max(abs(e) for e in signed):.1%}; "
        "per-point residuals via repro.obs.drift.calibration_residuals().",
    ]
    return result


def fitted_model(seed: int = 11, engine: str = "python") -> TimeModel:
    """Convenience: calibrate on the default grid and return the model."""
    return calibrate(collect_samples(seed=seed, engine=engine))
