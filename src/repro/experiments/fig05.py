"""Figure 5: comparison factor vs. θ_S for fixed θ_R = 100, k = 128.

Varying θ_S from 10 to 1000 corresponds to varying λ from 0.1 to 10.
For θ_S < θ_R the join is known to be empty (paper footnote 3); the model
formulas apply the symmetric ratio there, matching the paper's plot.
"""

from __future__ import annotations

from ..analysis.factors import comp_dcj, comp_psj
from .base import ExperimentResult, register

__all__ = ["run"]

DEFAULT_THETA_S = (10, 25, 50, 100, 150, 200, 300, 400, 600, 800, 1000)


@register("fig5")
def run(theta_r: int = 100, k: int = 128,
        theta_s_values=DEFAULT_THETA_S) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig5",
        title=f"Comparison factor vs θ_S (θ_R = {theta_r}, k = {k})",
        columns=["theta_S", "lambda", "comp_DCJ", "comp_PSJ"],
    )
    for theta_s in theta_s_values:
        result.rows.append(
            {
                "theta_S": theta_s,
                "lambda": theta_s / theta_r,
                "comp_DCJ": comp_dcj(k, theta_r, theta_s),
                "comp_PSJ": comp_psj(k, theta_s),
            }
        )

    dominated = all(
        row["comp_DCJ"] <= row["comp_PSJ"]
        for row in result.rows
        if row["theta_S"] >= theta_r
    )
    catch_up = comp_dcj(64, 10, 110)
    result.check("comp_DCJ ≤ comp_PSJ for all sampled θ_S ≥ θ_R", dominated)
    result.check("catch-up at θ_S ≈ 110 gives factor ≈ 0.82",
                 abs(catch_up - 0.82) < 0.01)
    result.paper_claims = [
        "comp_DCJ stays below comp_PSJ as θ_S grows "
        f"[measured: DCJ ≤ PSJ for all θ_S ≥ θ_R: {dominated}]",
        "θ_R=10, k=64: DCJ catches PSJ at θ_S ≈ 110, comparison factor "
        f"≈ 0.82 [measured comp_DCJ(64, 10, 110) = {catch_up:.3f}, "
        f"comp_PSJ(64, 110) = {comp_psj(64, 110):.3f}]",
    ]
    return result
