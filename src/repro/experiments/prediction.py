"""Out-of-sample time prediction (Section 5's two-step approach).

The paper's procedure: (1) estimate comparison/replication factors from
the Table 7 formulas — machine-independent; (2) plug them into the
calibrated time equation — machine-specific.  The crucial property is
that one calibration generalizes across workloads and algorithms: "it can
be applied for both partitioning algorithms used on the same system".

This experiment tests exactly that: the model is calibrated on a grid of
*other* workloads, then predicts the case-study sweep (different size,
different cardinalities) for both DCJ and PSJ; predictions are compared
against fresh measurements per k.
"""

from __future__ import annotations

from ..analysis.factors import comparison_factor, replication_factor
from ..analysis.timemodel import calibrate
from .base import ExperimentResult, register
from .calibration import collect_samples
from .case_study import THETA_R, THETA_S, sweep_partition_counts

__all__ = ["run"]

CALIBRATION_GRID = (
    # deliberately excludes the case-study configuration
    (300, 300, 20, 40),
    (600, 600, 20, 40),
    (300, 600, 30, 60),
    (600, 300, 40, 40),
)
K_VALUES = (4, 16, 64)
SWEEP_K = (8, 32, 128)


@register("prediction")
def run(scale: float = 0.15, seed: int = 37,
        engine: str = "python") -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="prediction",
        title="Out-of-sample execution-time prediction "
        f"(case study at scale {scale:g}, model calibrated elsewhere)",
        columns=["algorithm", "k", "t_measured_s", "t_predicted_s",
                 "rel_error"],
    )
    model = calibrate(
        collect_samples(CALIBRATION_GRID, K_VALUES, seed=seed, engine=engine)
    )
    from ..obs.drift import DriftRecord, record_drift

    size = max(16, int(10_000 * scale))
    rho = 1.0
    errors = []
    signed_errors = []
    for algorithm in ("DCJ", "PSJ"):
        rows = sweep_partition_counts(
            algorithm, SWEEP_K, scale=scale, seed=seed, engine=engine
        )
        for row in rows:
            k = row["k"]
            comp = comparison_factor(algorithm, k, THETA_R, THETA_S)
            repl = replication_factor(algorithm, k, THETA_R, THETA_S, rho)
            predicted = model.predict_factors(comp, repl, size, size, k)
            measured = row["t_total_s"]
            relative = abs(predicted - measured) / measured
            errors.append(relative)
            signed = (measured - predicted) / measured
            signed_errors.append(signed)
            # Publish each out-of-sample point into the drift layer, so
            # running this experiment populates the setjoin_drift_* series
            # the same way ANALYZE does for ad-hoc joins.
            record_drift(DriftRecord(
                timestamp=0.0, algorithm=algorithm, k=k,
                r_size=size, s_size=size,
                predicted={"seconds": predicted},
                observed={"seconds": measured},
                errors={"seconds": signed},
            ))
            result.rows.append(
                {
                    "algorithm": algorithm,
                    "k": k,
                    "t_measured_s": measured,
                    "t_predicted_s": predicted,
                    "rel_error": relative,
                }
            )
    mean_error = sum(errors) / len(errors)
    bias = sum(signed_errors) / len(signed_errors)
    result.check(
        "one calibration predicts BOTH algorithms on an unseen workload "
        "with usable accuracy (mean relative error ≤ 50%)",
        mean_error <= 0.50,
    )
    dcj_rows = [row for row in result.rows if row["algorithm"] == "DCJ"]
    psj_rows = [row for row in result.rows if row["algorithm"] == "PSJ"]
    result.check(
        "predictions rank the algorithms correctly at every shared k",
        all(
            (d["t_predicted_s"] < p["t_predicted_s"])
            == (d["t_measured_s"] < p["t_measured_s"])
            for d, p in zip(dcj_rows, psj_rows)
        ),
    )
    result.paper_claims = [
        "The time equation is system-dependent but \"can be applied for "
        "both partitioning algorithms used on the same system\"; the "
        "paper's own average prediction error was 15.4% "
        f"[measured out-of-sample mean error here: {mean_error:.1%}]",
    ]
    result.notes = [
        "Calibrated on four workloads that exclude the case-study "
        "configuration; predictions are genuinely out of sample.",
        f"Out-of-sample drift: bias {bias:+.1%} (mean signed error; "
        "positive = runs slower than predicted); every point also "
        "published to the setjoin_drift_* metrics.",
    ]
    return result
