"""Run experiments from the command line: ``python -m repro.experiments fig8``."""

from __future__ import annotations

import argparse
import sys

from . import experiment_ids, get_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a figure/table from the paper.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--scale", type=float, default=None,
        help="relation-size scale for testbed experiments "
        "(fig8/fig9/parallel)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write <id>.txt and <id>.tsv files into DIR",
    )
    arguments = parser.parse_args(argv)

    if arguments.list:
        print("\n".join(experiment_ids()))
        return 0
    if arguments.all:
        for experiment_id in experiment_ids():
            result = get_experiment(experiment_id)()
            print(result.render())
            print()
            if arguments.out:
                result.save(arguments.out)
        return 0
    if not arguments.experiment:
        parser.print_help()
        return 2
    run = get_experiment(arguments.experiment)
    kwargs = {}
    if arguments.scale is not None and arguments.experiment in (
            "fig8", "fig9", "parallel"):
        kwargs["scale"] = arguments.scale
    result = run(**kwargs)
    print(result.render())
    if arguments.out:
        txt_path, tsv_path = result.save(arguments.out)
        print(f"\nwrote {txt_path} and {tsv_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
