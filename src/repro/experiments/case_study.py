"""The Section 5 case study: Figures 8 and 9.

Runs the disk-based operator on the paper's workload (|R| = |S| = 10000,
θ_R = 50, θ_S = 100, element domain 10000, uniform cardinality bands
45..55 and 90..110) over a sweep of partition counts, reporting the
partitioning/joining/verification time split.

``scale`` shrinks the relation sizes (default 0.2 → 2000 tuples each) so
the sweep finishes quickly in pure Python; run with ``scale=1.0`` for the
paper's exact sizes.  ``repeats`` averages multiple cold-cache runs, as
the paper averages five.

The default comparison engine is the pure-Python loop: its per-comparison
cost relative to page I/O approximates the paper's 600 MHz testbed, which
is what gives Figures 8/9 their shape (an interior optimal k for DCJ,
PSJ dominated by partitioning overhead).  The vectorized ``"numpy"``
engine is faster but makes comparisons nearly free, compressing the
CPU side of the trade-off.
"""

from __future__ import annotations

from ..analysis.simulate import make_partitioner
from ..core.operator import run_disk_join
from ..data.workloads import case_study as case_study_workload
from .base import ExperimentResult, register

__all__ = ["sweep_partition_counts", "run_fig8", "run_fig9"]

DCJ_K_VALUES = (2, 4, 8, 16, 32, 64, 128, 256)
PSJ_K_VALUES = (2, 4, 8, 16, 32, 64, 128, 256)
THETA_R, THETA_S = 50, 100


def sweep_partition_counts(
    algorithm: str,
    k_values,
    scale: float = 0.2,
    repeats: int = 1,
    seed: int = 7,
    engine: str = "python",
    buffer_pages: int = 256,
) -> list[dict]:
    """Execute the case-study join for each k; returns metric rows."""
    workload = case_study_workload(scale=scale, seed=seed)
    lhs, rhs = workload.materialize()
    rows = []
    for k in k_values:
        totals = {"partition": 0.0, "join": 0.0, "verify": 0.0}
        last_metrics = None
        for repeat in range(repeats):
            partitioner = make_partitioner(
                algorithm, k, THETA_R, THETA_S, seed=seed + repeat
            )
            __, metrics = run_disk_join(
                lhs, rhs, partitioner, engine=engine, buffer_pages=buffer_pages
            )
            totals["partition"] += metrics.partitioning.seconds
            totals["join"] += metrics.joining.seconds
            totals["verify"] += metrics.verification.seconds
            last_metrics = metrics
        assert last_metrics is not None
        rows.append(
            {
                "k": k,
                "t_partition_s": totals["partition"] / repeats,
                "t_join_s": totals["join"] / repeats,
                "t_verify_s": totals["verify"] / repeats,
                "t_total_s": sum(totals.values()) / repeats,
                "comparisons": last_metrics.signature_comparisons,
                "comp_factor": last_metrics.comparison_factor,
                "replicated": last_metrics.replicated_signatures,
                "repl_factor": last_metrics.replication_factor,
                "page_reads": last_metrics.total_page_reads,
                "page_writes": last_metrics.total_page_writes,
                "results": last_metrics.result_size,
            }
        )
    return rows


_COLUMNS = [
    "k", "t_partition_s", "t_join_s", "t_verify_s", "t_total_s",
    "comp_factor", "repl_factor", "page_reads", "page_writes", "results",
]


@register("fig8")
def run_fig8(scale: float = 0.2, repeats: int = 1, seed: int = 7,
             engine: str = "python") -> ExperimentResult:
    """DCJ execution time vs k — the U-shaped curve with an interior optimum."""
    rows = sweep_partition_counts("DCJ", DCJ_K_VALUES, scale, repeats, seed, engine)
    best = min(rows, key=lambda row: row["t_total_s"])
    result = ExperimentResult(
        experiment_id="fig8",
        title=f"DCJ time vs k — case study at scale {scale:g}",
        columns=_COLUMNS,
        rows=rows,
    )
    comparisons = [row["comparisons"] for row in rows]
    replicated = [row["replicated"] for row in rows]
    result.check("comparisons fall monotonically with k",
                 comparisons == sorted(comparisons, reverse=True))
    result.check("replication rises monotonically with k",
                 replicated == sorted(replicated))
    result.check("optimal k is interior (not the sweep's extremes)",
                 best["k"] not in (rows[0]["k"], rows[-1]["k"]))
    mid = [row["t_total_s"] for row in rows if row["k"] in (16, 32, 64)]
    # "Roughly similar" (paper): single cold runs jitter, so allow 60% —
    # still far tighter than PSJ's ~3x spread over the same k range.
    result.check("times at k = 16/32/64 roughly similar (within 60%)",
                 bool(mid) and max(mid) <= 1.6 * min(mid))
    result.paper_claims = [
        "At |R|=|S|=10000 on the paper's hardware the optimum is k = 32 "
        "(24 s); the curve is U-shaped: partitioning overhead eventually "
        f"outweighs comparison savings [measured optimum k = {best['k']}, "
        f"{best['t_total_s']:.2f} s at scale {scale:g}]",
        "Execution times are roughly similar for k = 16, 32, 64 (the "
        "power-of-two restriction is not critical)",
    ]
    return result


@register("fig9")
def run_fig9(scale: float = 0.2, repeats: int = 1, seed: int = 7,
             engine: str = "python") -> ExperimentResult:
    """PSJ on the same workload — I/O-bound, never catches DCJ's best."""
    rows = sweep_partition_counts("PSJ", PSJ_K_VALUES, scale, repeats, seed, engine)
    dcj_rows = sweep_partition_counts(
        "DCJ", (16, 32, 64, 128), scale, repeats, seed, engine
    )
    best_psj = min(rows, key=lambda row: row["t_total_s"])
    best_dcj = min(dcj_rows, key=lambda row: row["t_total_s"])
    result = ExperimentResult(
        experiment_id="fig9",
        title=f"PSJ time vs k — case study at scale {scale:g}",
        columns=_COLUMNS,
        rows=rows,
    )
    replicated = [row["replicated"] for row in rows]
    result.check("PSJ replication explodes monotonically with k",
                 replicated == sorted(replicated))
    result.check("increasing k does not pay off (time at max k > time at min k)",
                 rows[-1]["t_total_s"] > rows[0]["t_total_s"])
    result.check("best PSJ does not beat best DCJ",
                 best_psj["t_total_s"] >= 0.95 * best_dcj["t_total_s"])
    comp_at_32 = next(row["comp_factor"] for row in rows if row["k"] == 32)
    result.check("comp_PSJ ≈ 0.95 at k = 32", abs(comp_at_32 - 0.95) < 0.03)
    result.paper_claims = [
        "Increasing k does not help PSJ here: by the time the comparison "
        "factor drops (k ≳ 32, comp_PSJ ≈ 0.95) PSJ is dominated by "
        "partitioning I/O; its best time (48 s) is ≈2x DCJ's (24 s) "
        f"[measured best PSJ {best_psj['t_total_s']:.2f} s (k={best_psj['k']}) "
        f"vs best DCJ {best_dcj['t_total_s']:.2f} s (k={best_dcj['k']})]",
    ]
    return result
