"""Scaling study: DCJ's advantage over PSJ grows with relation size.

Not a numbered figure, but the paper's central claim distilled: DCJ's
comparison savings scale with |R|·|S| while its extra replication scales
only with |R|+|S|, so for large-cardinality inputs its lead over PSJ
widens as the relations grow (the mechanism behind Figure 10's frontier).
This experiment measures both algorithms end to end over a size sweep at
the case study's cardinalities.
"""

from __future__ import annotations

from ..analysis.simulate import make_partitioner
from ..core.operator import run_disk_join
from ..data.workloads import uniform_workload
from .base import ExperimentResult, register

__all__ = ["run"]

DEFAULT_SIZES = (250, 500, 1000, 2000)
THETA_R, THETA_S = 50, 100
K = 32


@register("scaling")
def run(sizes=DEFAULT_SIZES, seed: int = 23,
        engine: str = "python") -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="scaling",
        title=f"DCJ vs PSJ over relation sizes (θ_R={THETA_R}, "
        f"θ_S={THETA_S}, k={K})",
        columns=["|R|=|S|", "t_DCJ_s", "t_PSJ_s", "PSJ/DCJ",
                 "comparisons_DCJ", "comparisons_PSJ"],
    )
    ratios = []
    for size in sizes:
        lhs, rhs = uniform_workload(
            size, size, THETA_R, THETA_S, domain_size=10_000,
            seed=seed, planted_pairs=3,
        ).materialize()
        times = {}
        comparisons = {}
        for algorithm in ("DCJ", "PSJ"):
            partitioner = make_partitioner(algorithm, K, THETA_R, THETA_S,
                                           seed=seed)
            __, metrics = run_disk_join(lhs, rhs, partitioner, engine=engine)
            times[algorithm] = metrics.total_seconds
            comparisons[algorithm] = metrics.signature_comparisons
        ratio = times["PSJ"] / times["DCJ"]
        ratios.append(ratio)
        result.rows.append(
            {
                "|R|=|S|": size,
                "t_DCJ_s": times["DCJ"],
                "t_PSJ_s": times["PSJ"],
                "PSJ/DCJ": ratio,
                "comparisons_DCJ": comparisons["DCJ"],
                "comparisons_PSJ": comparisons["PSJ"],
            }
        )
    result.check("PSJ/DCJ time ratio grows from smallest to largest size",
                 ratios[-1] > ratios[0])
    result.paper_claims = [
        "DCJ's savings scale with |R|·|S|, its replication overhead with "
        "|R|+|S|; PSJ/DCJ time ratio should therefore grow with size "
        f"[measured ratios {['%.2f' % value for value in ratios]}]",
    ]
    return result
