"""The reproduction scorecard: run everything, verify every claim.

Runs each registered experiment (at its default, scaled-down parameters),
collects the machine-checkable claim verdicts each one records, and
reports one PASS/FAIL table — the one-command answer to "does this
repository reproduce the paper?".

    python -m repro.experiments scorecard

Timing-based checks on the testbed experiments (fig8/fig9) can be noisy
at small scale; ``skip_slow=True`` (the default for automated runs) skips
those two and the calibration sweep, keeping the scorecard deterministic
and fast.  Run with ``skip_slow=False`` for the full sweep.
"""

from __future__ import annotations

from .base import EXPERIMENTS, ExperimentResult, register

__all__ = ["run"]

SLOW_EXPERIMENTS = ("fig8", "fig9", "calibration", "scaling", "prediction")


@register("scorecard")
def run(skip_slow: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="scorecard",
        title="Reproduction scorecard — every machine-checkable claim",
        columns=["experiment", "checks", "passed", "status"],
    )
    total_checks = 0
    total_passed = 0
    for experiment_id in sorted(EXPERIMENTS):
        if experiment_id == "scorecard":
            continue
        if skip_slow and experiment_id in SLOW_EXPERIMENTS:
            result.rows.append(
                {"experiment": experiment_id, "checks": "-", "passed": "-",
                 "status": "skipped (slow)"}
            )
            continue
        sub_result = EXPERIMENTS[experiment_id]()
        passed = sum(1 for __, ok in sub_result.checks if ok)
        count = len(sub_result.checks)
        total_checks += count
        total_passed += passed
        status = "PASS" if passed == count else "FAIL"
        if count == 0:
            status = "no checks"
        result.rows.append(
            {"experiment": experiment_id, "checks": count, "passed": passed,
             "status": status}
        )
        for description, ok in sub_result.checks:
            if not ok:
                result.notes.append(f"FAILED {experiment_id}: {description}")
    result.check(
        f"all {total_checks} claim checks pass", total_passed == total_checks
    )
    result.paper_claims = [
        "Aggregates the [PASS]/[FAIL] verdicts every experiment records "
        "for the quantitative claims in the paper's prose.",
    ]
    return result
