"""The 5-step algorithm-selection procedure end to end (Section 5).

Plans joins for inputs on both sides of the paper's decision boundary and
verifies that running the chosen plan beats the alternative.
"""

from __future__ import annotations

from ..analysis.timemodel import PAPER_TIME_MODEL, TimeModel
from ..core.optimizer import choose_plan
from ..data.workloads import uniform_workload
from .base import ExperimentResult, register

__all__ = ["run"]

SCENARIOS = (
    # (label, r_size, s_size, theta_r, theta_s, paper_expected)
    # The PSJ recommendation is size-dependent: the paper's "go for PSJ"
    # example is θ_R = θ_S = 10 at |R| = |S| = 100000 (Figure 10).
    ("large sets", 2000, 2000, 50, 100, "DCJ"),
    ("equal large sets", 2000, 2000, 50, 50, "DCJ"),
    ("small sets, large relations", 100_000, 100_000, 10, 10, "PSJ"),
    ("asymmetric sizes", 1000, 4000, 30, 60, "DCJ"),
)


@register("optimizer")
def run(model: TimeModel | None = None, seed: int = 3) -> ExperimentResult:
    model = model or PAPER_TIME_MODEL
    result = ExperimentResult(
        experiment_id="optimizer",
        title="Choosing the best algorithm (5-step procedure)",
        columns=[
            "scenario", "theta_R", "theta_S", "chosen", "k",
            "predicted_s", "paper_expected",
        ],
    )
    for label, r_size, s_size, theta_r, theta_s, expected in SCENARIOS:
        workload = uniform_workload(
            r_size, s_size, theta_r, theta_s, domain_size=50_000, seed=seed
        )
        lhs, rhs = workload.materialize()
        plan = choose_plan(lhs, rhs, model)
        result.rows.append(
            {
                "scenario": label,
                "theta_R": theta_r,
                "theta_S": theta_s,
                "chosen": plan.algorithm,
                "k": plan.k,
                "predicted_s": plan.predicted_seconds,
                "paper_expected": expected,
            }
        )
    for row in result.rows:
        result.check(
            f"{row['scenario']}: optimizer picks {row['paper_expected']}",
            row["chosen"] == row["paper_expected"],
        )
    result.paper_claims = [
        "Given θ_R=θ_S=50 and large relations, DCJ is the algorithm of "
        "choice; for θ_R=θ_S=10, go for PSJ (Figure 10 discussion)",
    ]
    result.notes = [
        "Predictions use the paper's published constants by default; "
        "substitute a locally calibrated model via the `model` argument.",
    ]
    return result
