"""Figure 7: replication factor vs. θ_S for fixed θ_R = 100, k = 128.

As λ grows, repl_DCJ approaches repl_LSJ but never catches up — the basis
for the paper's claim that DCJ always outperforms LSJ.
"""

from __future__ import annotations

from ..analysis.factors import repl_dcj, repl_lsj, repl_psj
from .base import ExperimentResult, register

__all__ = ["run"]

DEFAULT_THETA_S = (10, 25, 50, 100, 150, 200, 300, 400, 600, 800, 1000)


@register("fig7")
def run(theta_r: int = 100, k: int = 128, rho: float = 1.0,
        theta_s_values=DEFAULT_THETA_S) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig7",
        title=f"Replication factor vs θ_S (θ_R = {theta_r}, k = {k}, ρ = {rho:g})",
        columns=["theta_S", "lambda", "repl_DCJ", "repl_LSJ", "repl_PSJ"],
    )
    for theta_s in theta_s_values:
        result.rows.append(
            {
                "theta_S": theta_s,
                "lambda": theta_s / theta_r,
                "repl_DCJ": repl_dcj(k, theta_r, theta_s, rho),
                "repl_LSJ": repl_lsj(k, theta_r, theta_s, rho),
                "repl_PSJ": repl_psj(k, theta_s, rho),
            }
        )
    always_below = all(row["repl_DCJ"] < row["repl_LSJ"] for row in result.rows)
    result.check("repl_DCJ < repl_LSJ over the full θ_S sweep (k=128)",
                 always_below)
    gaps = [row["repl_LSJ"] - row["repl_DCJ"] for row in result.rows]
    result.check("gap narrows as λ grows (approaches, never catches up)",
                 gaps[-1] < max(gaps))
    result.paper_claims = [
        "repl_DCJ approaches repl_LSJ with increasing λ but never catches "
        f"up; hence DCJ always outperforms LSJ [measured: DCJ < LSJ on "
        f"every sampled point: {always_below}]",
    ]
    return result
