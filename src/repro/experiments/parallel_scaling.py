"""Partition-parallel speedup curve: join-phase time vs worker count.

Not a figure from the paper — the paper's testbed is strictly serial —
but the natural extension its partitioned structure invites: DCJ/PSJ/LSJ
reduce the join to independent partition pairs, so the joining phase
should scale with workers while the x/y accounting stays *identical* to
the serial run (each pair is joined by exactly one worker).

The experiment runs DCJ and PSJ over the case-study workload (scaled)
for workers ∈ {1, 2, 4} on a file-backed testbed, verifies result-set
and comparison-count invariance, and reports the join-phase speedup
relative to workers=1.  Actual speedup is hardware-dependent (bounded
by physical cores and, for the thread backend, the GIL); the invariance
checks are what must always hold.
"""

from __future__ import annotations

import os
import tempfile

from ..analysis.simulate import make_partitioner
from ..core.operator import run_disk_join
from ..data.workloads import case_study
from .base import ExperimentResult, register

__all__ = ["run"]

WORKER_COUNTS = (1, 2, 4)
THETA_R, THETA_S = 50, 100
K = 32


@register("parallel")
def run(
    scale: float = 0.05,
    seed: int = 7,
    backend: str = "process",
    engine: str = "numpy",
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="parallel",
        title=f"Partition-parallel join speedup ({backend} backend, "
        f"k={K}, scale {scale})",
        columns=["algorithm", "workers", "t_join_s", "speedup",
                 "comparisons", "results"],
    )
    lhs, rhs = case_study(scale=scale, seed=seed).materialize()
    with tempfile.TemporaryDirectory(prefix="setjoins-parallel-") as tmpdir:
        for algorithm in ("DCJ", "PSJ"):
            baseline = None
            baseline_join_seconds = None
            for workers in WORKER_COUNTS:
                # Fresh partitioner per run: PSJ draws from its RNG per
                # tuple, so a reused instance would partition each run
                # differently and the invariance checks would be vacuous.
                partitioner = make_partitioner(algorithm, K, THETA_R,
                                               THETA_S, seed=seed)
                path = os.path.join(tmpdir, f"{algorithm}-{workers}.db")
                pairs, metrics = run_disk_join(
                    lhs, rhs, partitioner, engine=engine, path=path,
                    workers=workers, backend=backend,
                )
                if baseline is None:
                    baseline = (pairs, metrics.signature_comparisons,
                                metrics.replicated_signatures)
                    baseline_join_seconds = metrics.joining.seconds
                else:
                    result.check(
                        f"{algorithm}: workers={workers} result set and "
                        "x/y counts identical to workers=1",
                        pairs == baseline[0]
                        and metrics.signature_comparisons == baseline[1]
                        and metrics.replicated_signatures == baseline[2],
                    )
                speedup = (
                    baseline_join_seconds / metrics.joining.seconds
                    if metrics.joining.seconds else 0.0
                )
                result.rows.append(
                    {
                        "algorithm": algorithm,
                        "workers": workers,
                        "t_join_s": metrics.joining.seconds,
                        "speedup": round(speedup, 3),
                        "comparisons": metrics.signature_comparisons,
                        "results": len(pairs),
                    }
                )
    cores = os.cpu_count() or 1
    result.notes.append(
        f"measured on {cores} core(s); join-phase speedup is bounded by "
        "physical parallelism, while the invariance checks hold on any "
        "machine"
    )
    result.paper_claims = [
        "The partitioned join structure is shared-nothing over partition "
        "pairs, so the joining phase parallelizes without changing the "
        "x/y accounting the paper's time model is calibrated on.",
    ]
    return result
